//! Campus mobility: a laptop roaming between access points (periodic IP
//! changes) downloads a large file — once with the stock client, once
//! with the full wP2P suite. The wP2P client retains its peer-id (keeping
//! its tit-for-tat standing), fetches mobility-aware, paces uploads with
//! LIHD, and re-dials its stored peers the moment connectivity returns.
//!
//! ```sh
//! cargo run --release --example campus_mobility
//! ```

use bittorrent::client::ClientConfig;
use bittorrent::metainfo::Metainfo;
use media_model::playable_fraction;
use p2p_simulation::flow::{Access, FlowConfig, FlowWorld, TaskSpec, TorrentSpec};
use simnet::mobility::MobilityProcess;
use simnet::time::{SimDuration, SimTime};
use wp2p::config::WP2pConfig;

struct Outcome {
    downloaded_mb: f64,
    playable_pct: f64,
    connections: usize,
}

fn roam(wp2p: bool) -> Outcome {
    let capacity = 250_000.0;
    let meta = Metainfo::synthetic("dataset.tar", "tr", 256 * 1024, 128 * 1024 * 1024, 3);
    let torrent = TorrentSpec::from_metainfo(&meta, 256 * 1024);

    let mut cfg = FlowConfig::default();
    cfg.tracker.announce_interval = SimDuration::from_mins(5);
    let mut world = FlowWorld::new(cfg, 99);

    // A modest swarm: one seed, six home leeches competing for it.
    let seed_node = world.add_node(Access::Wired {
        up: 150_000.0,
        down: 500_000.0,
    });
    world.add_task(TaskSpec::default_client(seed_node, torrent, true));
    for _ in 0..6 {
        let n = world.add_node(Access::residential());
        world.add_task(TaskSpec::default_client(n, torrent, false));
    }

    // The roaming laptop: hand-off every 90 s with an 8 s outage.
    let laptop = world.add_node(Access::Wireless { capacity });
    let task = world.add_task(TaskSpec {
        node: laptop,
        torrent,
        start_complete: false,
        start_fraction: None,
        start_at: SimTime::ZERO,
        make_config: Box::new(ClientConfig::default),
        wp2p: if wp2p {
            WP2pConfig::full(capacity)
        } else {
            WP2pConfig::default_client()
        },
    });
    world.set_mobility(
        laptop,
        MobilityProcess::with_jitter(SimDuration::from_secs(90), SimDuration::from_secs(8), 0.1),
    );

    world.start();
    world.run_until(SimTime::from_secs(15 * 60), |_| {});

    let playable = world.with_progress(task, |p| {
        playable_fraction(p.have(), meta.info.piece_length, meta.info.length)
    });
    Outcome {
        downloaded_mb: world.downloaded_bytes(task) as f64 / (1024.0 * 1024.0),
        playable_pct: playable * 100.0,
        connections: world.connection_count(task),
    }
}

fn main() {
    println!("15 virtual minutes of roaming (hand-off every ~90 s)…\n");
    let stock = roam(false);
    let enhanced = roam(true);
    println!("                       stock client    wP2P client");
    println!(
        "downloaded             {:>8.1} MB    {:>8.1} MB",
        stock.downloaded_mb, enhanced.downloaded_mb
    );
    println!(
        "playable prefix        {:>8.1} %     {:>8.1} %",
        stock.playable_pct, enhanced.playable_pct
    );
    println!(
        "live connections       {:>8}        {:>8}",
        stock.connections, enhanced.connections
    );
    println!();
    println!(
        "wP2P vs stock: {:+.0}% data, playable prefix ×{:.1}",
        (enhanced.downloaded_mb / stock.downloaded_mb - 1.0) * 100.0,
        if stock.playable_pct > 0.0 {
            enhanced.playable_pct / stock.playable_pct
        } else {
            f64::INFINITY
        }
    );
}
