//! Wireless TCP lab: watch bi-directional TCP behave over a lossy shared
//! channel, with and without wP2P's age-based manipulation filter.
//!
//! This is a packet-level view — every segment, piggybacked ACK, DUPACK
//! and retransmission crosses a wireless channel with configurable BER.
//!
//! ```sh
//! cargo run --release --example wireless_tcp_lab
//! ```

use p2p_simulation::packet::{PacketConfig, PacketWorld};
use simnet::time::{SimDuration, SimTime};
use simnet::wireless::{Direction, WirelessConfig};
use wp2p::am::AmConfig;

fn channel(ber: f64) -> WirelessConfig {
    WirelessConfig {
        bandwidth_bps: 50_000 * 8,
        prop_delay: SimDuration::from_millis(2),
        queue_frames: 50,
        ber,
        per_frame_overhead: SimDuration::ZERO,
    }
}

fn experiment(ber: f64, bidirectional: bool, am: bool) -> (f64, u64, u64) {
    let mut cfg = PacketConfig::default();
    cfg.tcp.recv_window = 32 * 1024;
    let mut w = PacketWorld::new(cfg, 7);
    let mobile = w.add_node(Some(channel(ber)));
    let fixed = w.add_node(None);
    if am {
        w.set_am(mobile, AmConfig::default());
    }
    let conn = w.open_tcp(mobile, fixed);
    let duration = SimDuration::from_secs(60);
    w.tcp_write(conn, false, 10_000_000); // download direction
    if bidirectional {
        w.tcp_write(conn, true, 10_000_000);
    }
    w.run_until(SimTime::ZERO + duration, |_| {});
    let downloaded = w.tcp_delivered(conn, true);
    let remote = w.endpoint(conn, false).expect("endpoint");
    (
        downloaded as f64 / duration.as_secs_f64() / 1024.0,
        remote.stats().retransmissions,
        w.channel_stats(mobile, Direction::Up).accepted,
    )
}

fn main() {
    println!("60 s transfers over a 50 KB/s wireless leg\n");
    println!(
        "{:>8}  {:>14}  {:>10}  {:>7}  {:>9}",
        "BER", "mode", "down KB/s", "rtx", "up frames"
    );
    for &ber in &[0.0, 5e-6, 1.5e-5] {
        for (label, bi, am) in [
            ("uni", false, false),
            ("bi", true, false),
            ("bi + wP2P AM", true, true),
        ] {
            let (kbps, rtx, up) = experiment(ber, bi, am);
            println!("{ber:>8.0e}  {label:>14}  {kbps:>10.1}  {rtx:>7}  {up:>9}");
        }
        println!();
    }
    println!("Things to notice:");
    println!(" * bi-TCP always trails uni-TCP: its ACKs ride on 1500-byte frames");
    println!("   that contend for (and die on) the same channel;");
    println!(" * retransmissions climb with BER for every variant;");
    println!(" * the AM filter protects young windows by decoupling fresh ACK");
    println!("   information onto 40-byte frames (see the up-frame counts).");
}
