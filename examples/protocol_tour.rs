//! Protocol tour: the byte-level BitTorrent building blocks, end to end
//! with real bytes — no simulation, just the protocol stack.
//!
//! ```sh
//! cargo run --release --example protocol_tour
//! ```

use bittorrent::magnet::MagnetLink;
use bittorrent::metainfo::Metainfo;
use bittorrent::peer_id::PeerId;
use bittorrent::sha1::Sha1;
use bittorrent::wire::{
    decode_handshake, encode, encode_handshake, BlockRef, Message, MessageReader,
};

fn main() {
    // 1. Content → .torrent. Make a little "file" and hash it into
    //    metainfo with 4 KB pieces.
    let content: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
    let meta = Metainfo::from_content("tour.bin", "sim-tracker", 4096, &content);
    println!(
        "torrent: {} — {} bytes, {} pieces of {} B",
        meta.info.name,
        meta.info.length,
        meta.info.num_pieces(),
        meta.info.piece_length
    );

    // 2. The .torrent file is canonical bencode; the SHA-1 of its `info`
    //    dict names the swarm.
    let torrent_bytes = meta.to_bytes();
    println!("  .torrent size: {} bytes (bencode)", torrent_bytes.len());
    let reparsed = Metainfo::from_bytes(&torrent_bytes).expect("round-trips");
    let info_hash = reparsed.info.info_hash();
    println!("  info-hash: {}", info_hash.to_hex());

    // 3. Share it as a magnet link and parse it back.
    let magnet = MagnetLink {
        info_hash,
        name: Some(meta.info.name.clone()),
        trackers: vec![meta.announce.clone()],
    };
    let uri = magnet.to_uri();
    println!("  magnet: {uri}");
    assert_eq!(MagnetLink::parse(&uri).unwrap().info_hash, info_hash);

    // 4. Two peers shake hands on the wire.
    let alice = PeerId(*b"-WP0100-alice0000000");
    let bob = PeerId(*b"-WP0100-bob000000000");
    let hs = encode_handshake(info_hash, alice);
    let (got_hash, got_id) = decode_handshake(&hs).expect("valid handshake");
    assert_eq!(got_hash, info_hash);
    println!("handshake: 68 bytes, peer {got_id}");

    // 5. Bob streams Alice a piece: request + piece messages over a
    //    "TCP" byte stream, reassembled with MessageReader.
    let block = BlockRef {
        piece: 2,
        offset: 0,
        len: meta.info.piece_size(2),
    };
    let piece_data = &content[2 * 4096..3 * 4096];
    let mut wire = Vec::new();
    encode(&Message::Interested, None, &mut wire);
    encode(&Message::Request(block), None, &mut wire);
    encode(&Message::Piece(block), Some(piece_data), &mut wire);
    println!(
        "wire: interested + request + piece = {} bytes total",
        wire.len()
    );

    let mut reader = MessageReader::new(meta.info.num_pieces());
    // Deliver in awkward 7-byte chunks, as TCP might.
    let mut received_piece = None;
    for chunk in wire.chunks(7) {
        reader.feed(chunk);
        while let Some((msg, payload)) = reader.next_message().expect("clean stream") {
            println!("  ← {msg}");
            if let Message::Piece(b) = msg {
                received_piece = Some((b, payload.expect("piece carries data")));
            }
        }
    }

    // 6. Verify the received piece against the metainfo's SHA-1.
    let (b, data) = received_piece.expect("piece arrived");
    assert!(meta.info.verify_piece(b.piece, &data), "hash check");
    println!("piece {} verified: sha1 {}", b.piece, Sha1::digest(&data));
    println!("\nAll protocol layers round-tripped with real bytes.");

    let _ = bob;
}
