//! Mobile media streaming: why rarest-first ruins disconnected playback,
//! and what mobility-aware fetching buys (the paper's motivating §3.6
//! scenario, as a runnable story).
//!
//! A commuter starts downloading a video over the campus WLAN, then loses
//! connectivity halfway (gets on the train). How much of the video can
//! they watch offline?
//!
//! ```sh
//! cargo run --release --example mobile_media_streaming
//! ```

use bittorrent::client::ClientConfig;
use bittorrent::metainfo::Metainfo;
use media_model::{playable_fraction, GopModel};
use p2p_simulation::flow::{Access, FlowConfig, FlowWorld, TaskSpec, TorrentSpec};
use simnet::time::SimTime;
use wp2p::config::WP2pConfig;
use wp2p::ma::PrSchedule;

/// Downloads until ~55% and reports the playable prefix at disconnection.
fn commute(fetching: Option<PrSchedule>, label: &str) {
    let meta = Metainfo::synthetic("lecture.mpg", "tr", 256 * 1024, 24 * 1024 * 1024, 11);
    let torrent = TorrentSpec::from_metainfo(&meta, 256 * 1024);
    let mut world = FlowWorld::new(FlowConfig::default(), 5);
    let seed_node = world.add_node(Access::campus());
    world.add_task(TaskSpec::default_client(seed_node, torrent, true));
    for _ in 0..2 {
        let n = world.add_node(Access::residential());
        world.add_task(TaskSpec::default_client(n, torrent, false));
    }
    let laptop = world.add_node(Access::Wireless {
        capacity: 250_000.0,
    });
    let ours = world.add_task(TaskSpec {
        node: laptop,
        torrent,
        start_complete: false,
        start_fraction: None,
        start_at: SimTime::ZERO,
        make_config: Box::new(ClientConfig::default),
        wp2p: WP2pConfig {
            mobility_fetching: fetching,
            ..WP2pConfig::default_client()
        },
    });
    world.start();
    // The train leaves when the download crosses 55%.
    world.run_until_condition(SimTime::from_secs(1800), |w| {
        w.progress_fraction(ours) >= 0.55
    });
    let frac = world.progress_fraction(ours);
    let (playable, gop_playable) = world.with_progress(ours, |p| {
        (
            playable_fraction(p.have(), meta.info.piece_length, meta.info.length),
            GopModel::default().playable_fraction(
                p.have(),
                meta.info.piece_length,
                meta.info.length,
            ),
        )
    });
    let minutes_of_video = 60.0; // pretend the file is an hour of video
    println!("{label}:");
    println!("  downloaded when the train left: {:.0}%", frac * 100.0);
    println!(
        "  playable prefix: {:.0}% ≈ {:.0} minutes of the {:.0}-minute video",
        playable * 100.0,
        playable * minutes_of_video,
        minutes_of_video
    );
    println!(
        "  (header+GOP media model agrees: {:.0}%)",
        gop_playable * 100.0
    );
}

fn main() {
    // The world above runs until 55% is crossed or 30 virtual minutes
    // elapse; with these parameters the download always gets past 55%.
    commute(None, "default client (rarest-first)");
    commute(
        Some(PrSchedule::DownloadedFraction),
        "wP2P client (mobility-aware fetching, p_r = downloaded fraction)",
    );
    commute(
        Some(PrSchedule::ExponentialInProgress { p0: 0.2 }),
        "wP2P client (exponential schedule, p0 = 20%)",
    );
    println!();
    println!("The default client scatters pieces (good for the swarm, useless");
    println!("offline); the wP2P schedules keep the head of the file dense and");
    println!("converge to rarest-first as the download matures.");
}
