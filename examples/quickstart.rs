//! Quickstart: create a torrent, spin up a small swarm in the flow-level
//! world, and watch a download complete.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bittorrent::metainfo::Metainfo;
use p2p_simulation::flow::{Access, FlowConfig, FlowWorld, TaskSpec, TorrentSpec};
use simnet::time::SimTime;

fn main() {
    // 1. Make a torrent. From real bytes (hashing every piece with our
    //    own SHA-1)...
    let content: Vec<u8> = (0..64 * 1024u32).flat_map(|i| i.to_le_bytes()).collect();
    let small = Metainfo::from_content("notes.tar", "sim-tracker", 32 * 1024, &content);
    println!(
        "real torrent: {} ({} pieces of {} B, info-hash {})",
        small.info.name,
        small.info.num_pieces(),
        small.info.piece_length,
        small.info.info_hash(),
    );
    // ... and it round-trips through canonical bencode:
    let parsed = Metainfo::from_bytes(&small.to_bytes()).expect("valid .torrent");
    assert_eq!(parsed.info.info_hash(), small.info.info_hash());

    // 2. For simulation at scale, a synthetic torrent needs no content.
    let meta = Metainfo::synthetic("demo.iso", "sim-tracker", 256 * 1024, 16 * 1024 * 1024, 7);
    let torrent = TorrentSpec::from_metainfo(&meta, 256 * 1024);

    // 3. Build a world: one seed, two home leeches, one wireless laptop.
    let mut world = FlowWorld::new(FlowConfig::default(), 42);
    let seed_node = world.add_node(Access::campus());
    let home1 = world.add_node(Access::residential());
    let home2 = world.add_node(Access::residential());
    let laptop = world.add_node(Access::Wireless {
        capacity: 300_000.0,
    });
    world.add_task(TaskSpec::default_client(seed_node, torrent, true));
    world.add_task(TaskSpec::default_client(home1, torrent, false));
    world.add_task(TaskSpec::default_client(home2, torrent, false));
    let ours = world.add_task(TaskSpec::default_client(laptop, torrent, false));

    // 4. Run, reporting progress every virtual 30 s.
    world.start();
    let mut next_report = 30.0;
    world.run_until(SimTime::from_secs(600), |w| {
        let t = w.now().as_secs_f64();
        if t >= next_report {
            next_report += 30.0;
            println!(
                "t={:>5.0}s  laptop: {:5.1}% downloaded, {} peer connections",
                t,
                w.progress_fraction(ours) * 100.0,
                w.connection_count(ours),
            );
        }
    });
    match world.completed_at(ours) {
        Some(t) => println!(
            "laptop finished {} MB at t={:.0}s ({:.0} KB/s average)",
            meta.info.length / (1024 * 1024),
            t.as_secs_f64(),
            meta.info.length as f64 / t.as_secs_f64() / 1024.0
        ),
        None => println!(
            "laptop still downloading: {:.1}%",
            world.progress_fraction(ours) * 100.0
        ),
    }
}
