//! # media-model — playability of partially downloaded media
//!
//! The paper's Fig. 4/9 metric: given the set of pieces downloaded so far,
//! what fraction of the media file can actually be *played back*? Media
//! formats allow partial playback only of **in-sequence** data from the
//! head of the file (§3.6: "for an MPEG file of a 2 hour video, the
//! download of the first 30 minutes … will still allow for a playback of
//! that part"). Rarest-first fetching scatters pieces, so the playable
//! prefix stays tiny until the download is nearly complete.
//!
//! Two models are provided:
//!
//! * [`playable_fraction`] — byte-accurate longest in-order prefix, the
//!   paper's definition.
//! * [`GopModel`] — a slightly richer MPEG-like model with a required
//!   header and group-of-pictures granularity, used to check that the
//!   headline result is not an artifact of the prefix simplification.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use bittorrent::bitfield::Bitfield;

/// Length in bytes of the contiguous downloaded prefix.
///
/// `piece_length` is the torrent's piece size; `length` the file size (the
/// last piece may be short).
///
/// ```
/// use bittorrent::bitfield::Bitfield;
/// use media_model::playable_prefix_bytes;
///
/// let mut have = Bitfield::new(4);
/// have.set(0);
/// have.set(2); // not contiguous with the head
/// assert_eq!(playable_prefix_bytes(&have, 100, 400), 100);
/// ```
pub fn playable_prefix_bytes(have: &Bitfield, piece_length: u32, length: u64) -> u64 {
    let mut bytes = 0u64;
    for piece in 0..have.len() {
        if !have.get(piece) {
            break;
        }
        let start = piece as u64 * piece_length as u64;
        let end = (start + piece_length as u64).min(length);
        bytes += end - start;
    }
    bytes.min(length)
}

/// Playable fraction of the file in `[0, 1]`: the paper's y-axis for
/// Figs. 4(b,c) and 9(a,b).
pub fn playable_fraction(have: &Bitfield, piece_length: u32, length: u64) -> f64 {
    if length == 0 {
        return 1.0;
    }
    playable_prefix_bytes(have, piece_length, length) as f64 / length as f64
}

/// An MPEG-like playability model: a file header must be complete before
/// anything plays, and playback advances in whole GOP (group of pictures)
/// units, each of which must be fully present **in sequence**.
#[derive(Debug, Clone, Copy)]
pub struct GopModel {
    /// Bytes of container header required before any playback.
    pub header_bytes: u64,
    /// Bytes per GOP (a playback unit).
    pub gop_bytes: u64,
}

impl Default for GopModel {
    fn default() -> Self {
        // ~0.5 s of 8 Mbit/s video per GOP, 64 KB of header.
        GopModel {
            header_bytes: 64 * 1024,
            gop_bytes: 512 * 1024,
        }
    }
}

impl GopModel {
    /// Playable fraction under the header+GOP model.
    ///
    /// # Panics
    ///
    /// Panics when `gop_bytes` is zero.
    pub fn playable_fraction(&self, have: &Bitfield, piece_length: u32, length: u64) -> f64 {
        assert!(self.gop_bytes > 0, "GOP size must be positive");
        if length == 0 {
            return 1.0;
        }
        let prefix = playable_prefix_bytes(have, piece_length, length);
        if prefix < self.header_bytes.min(length) {
            return 0.0;
        }
        if prefix == length {
            return 1.0;
        }
        let usable = prefix - self.header_bytes.min(length);
        let gops = usable / self.gop_bytes;
        let playable = self.header_bytes.min(length) + gops * self.gop_bytes;
        (playable as f64 / length as f64).min(1.0)
    }
}

/// Convenience: playable fraction as a percentage for report tables.
pub fn playable_percent(have: &Bitfield, piece_length: u32, length: u64) -> f64 {
    playable_fraction(have, piece_length, length) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn have_with(pieces: &[u32], n: u32) -> Bitfield {
        let mut bf = Bitfield::new(n);
        for &p in pieces {
            bf.set(p);
        }
        bf
    }

    #[test]
    fn empty_file_plays_nothing() {
        let have = Bitfield::new(10);
        assert_eq!(playable_prefix_bytes(&have, 100, 1000), 0);
        assert_eq!(playable_fraction(&have, 100, 1000), 0.0);
    }

    #[test]
    fn full_file_plays_everything() {
        let have = Bitfield::full(10);
        assert_eq!(playable_fraction(&have, 100, 1000), 1.0);
        // Short last piece accounted at byte granularity.
        assert_eq!(playable_prefix_bytes(&have, 100, 950), 950);
    }

    #[test]
    fn holes_stop_playback() {
        // Pieces 0,1,3,4 of 5: playable stops at the hole in piece 2.
        let have = have_with(&[0, 1, 3, 4], 5);
        assert_eq!(playable_prefix_bytes(&have, 100, 500), 200);
        assert_eq!(playable_fraction(&have, 100, 500), 0.4);
    }

    #[test]
    fn scattered_pieces_play_almost_nothing() {
        // The rarest-first pathology: 80% downloaded, nothing at the head.
        let have = have_with(&[2, 3, 4, 5, 6, 7, 8, 9], 10);
        assert_eq!(playable_fraction(&have, 100, 1000), 0.0);
    }

    #[test]
    fn playable_is_monotone_in_pieces() {
        let mut have = Bitfield::new(20);
        let mut last = 0.0;
        for p in 0..20 {
            have.set(p);
            let f = playable_fraction(&have, 50, 1000);
            assert!(f >= last, "adding a piece reduced playability");
            last = f;
        }
        assert_eq!(last, 1.0);
    }

    #[test]
    fn gop_model_requires_header() {
        let model = GopModel {
            header_bytes: 150,
            gop_bytes: 100,
        };
        // One 100-byte piece: below the 150-byte header.
        let have = have_with(&[0], 10);
        assert_eq!(model.playable_fraction(&have, 100, 1000), 0.0);
        // Two pieces: header done, (200-150)/100 = 0 full GOPs.
        let have = have_with(&[0, 1], 10);
        assert_eq!(model.playable_fraction(&have, 100, 1000), 0.15);
        // Four pieces: header + 2 GOPs = 150+200 = 350.
        let have = have_with(&[0, 1, 2, 3], 10);
        assert_eq!(model.playable_fraction(&have, 100, 1000), 0.35);
    }

    #[test]
    fn gop_model_full_file_is_one() {
        let model = GopModel::default();
        let have = Bitfield::full(4);
        assert_eq!(model.playable_fraction(&have, 256 * 1024, 1_000_000), 1.0);
    }

    #[test]
    fn gop_never_exceeds_prefix_model() {
        let model = GopModel {
            header_bytes: 50,
            gop_bytes: 70,
        };
        for mask in 0u32..256 {
            let mut have = Bitfield::new(8);
            for b in 0..8 {
                if mask & (1 << b) != 0 {
                    have.set(b);
                }
            }
            let gop = model.playable_fraction(&have, 100, 800);
            let prefix = playable_fraction(&have, 100, 800);
            assert!(
                gop <= prefix + 1e-9,
                "gop={gop} prefix={prefix} mask={mask:#b}"
            );
        }
    }

    #[test]
    fn percent_helper() {
        let have = have_with(&[0], 2);
        assert_eq!(playable_percent(&have, 100, 200), 50.0);
    }
}
