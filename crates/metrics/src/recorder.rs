//! The sim-time-stamped series recorder: a bounded ring buffer per
//! named series.
//!
//! Each series keeps at most `capacity` points; when full, the oldest
//! point is evicted and a drop counter incremented, so long experiments
//! record in bounded memory. Points carry [`SimTime`] stamps (never
//! wall-clock), which keeps dumps byte-identical across runs and across
//! serial/parallel sweep execution — provided each series is written by
//! exactly one sweep cell (use per-cell series names in sweeps).

use simnet::time::SimTime;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Default per-series point capacity.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// Ring-buffer storage for one named series.
#[derive(Debug)]
pub struct SeriesBuf {
    points: VecDeque<(SimTime, f64)>,
    capacity: usize,
    dropped: u64,
}

impl SeriesBuf {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "series capacity must be nonzero");
        SeriesBuf {
            points: VecDeque::with_capacity(capacity.min(DEFAULT_SERIES_CAPACITY)),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, value: f64) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
        self.points.push_back((at, value));
    }

    /// The retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of points evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recent point, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.back().copied()
    }
}

/// A cheap handle onto one named series. Cloning shares the underlying
/// ring; a handle from a disabled [`crate::handle::MetricsHandle`]
/// records nothing.
#[derive(Debug, Clone, Default)]
pub struct Series {
    pub(crate) buf: Option<Arc<Mutex<SeriesBuf>>>,
}

impl Series {
    /// Appends one `(sim-time, value)` point, evicting the oldest point
    /// if the ring is full. No-op when metrics are disabled.
    #[inline]
    pub fn record(&self, at: SimTime, value: f64) {
        if let Some(buf) = &self.buf {
            buf.lock().unwrap().push(at, value);
        }
    }

    /// Runs `f` over the retained points (oldest first). Returns
    /// `None` when disabled.
    pub fn with_points<R>(&self, f: impl FnOnce(&SeriesBuf) -> R) -> Option<R> {
        self.buf.as_ref().map(|buf| f(&buf.lock().unwrap()))
    }

    /// Number of retained points (0 when disabled).
    pub fn len(&self) -> usize {
        self.with_points(|b| b.len()).unwrap_or(0)
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent point, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.with_points(|b| b.last()).flatten()
    }
}

impl simnet::snapshot::Snap for SeriesBuf {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        w.put_usize(self.capacity);
        w.put_u64(self.dropped);
        self.points.snap(w);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        SeriesBuf {
            capacity: r.get_usize(),
            dropped: r.get_u64(),
            points: simnet::snapshot::Snap::unsnap(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut buf = SeriesBuf::new(3);
        for s in 0..5 {
            buf.push(t(s), s as f64);
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let pts: Vec<_> = buf.points().collect();
        assert_eq!(pts[0], (t(2), 2.0));
        assert_eq!(buf.last(), Some((t(4), 4.0)));
    }

    #[test]
    fn disabled_series_records_nothing() {
        let s = Series::default();
        s.record(t(1), 1.0);
        assert!(s.is_empty());
        assert_eq!(s.last(), None);
    }
}
