//! Lightweight event tracing for debugging simulations.
//!
//! A [`Trace`] is a bounded ring buffer of timestamped, categorised
//! entries. Components record noteworthy moments (a hand-off, a dial, a
//! choke flip); when an experiment misbehaves, the tail of the trace
//! shows what led up to it without the cost of unconditional logging.
//!
//! Tracing is opt-in per world and costs one branch when disabled.

use simnet::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// Category of a trace entry, used for filtering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// Connection lifecycle (dial, establish, close, black-hole).
    Connection,
    /// Mobility events (hand-off start/end, readdressing).
    Mobility,
    /// Choking decisions.
    Choke,
    /// Piece/block transfer milestones.
    Transfer,
    /// Tracker interactions.
    Tracker,
    /// Anything else.
    Other,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Connection => "conn",
            TraceKind::Mobility => "mob",
            TraceKind::Choke => "choke",
            TraceKind::Transfer => "xfer",
            TraceKind::Tracker => "track",
            TraceKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// One trace entry.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// What kind of event.
    pub kind: TraceKind,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {:>5}] {}", self.at, self.kind, self.message)
    }
}

/// A bounded ring buffer of trace entries.
#[derive(Debug, Clone)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled trace with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: false,
            dropped: 0,
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an entry (no-op while disabled). The oldest entry is
    /// evicted when the buffer is full.
    pub fn record(&mut self, at: SimTime, kind: TraceKind, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            at,
            kind,
            message: message.into(),
        });
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Entries of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// The most recent `n` entries, oldest first.
    pub fn tail(&self, n: usize) -> impl Iterator<Item = &TraceEntry> {
        let skip = self.entries.len().saturating_sub(n);
        self.entries.iter().skip(skip)
    }

    /// How many entries were evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the retained entries, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

impl simnet::snapshot::Snap for TraceKind {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        w.put_u8(match self {
            TraceKind::Connection => 0,
            TraceKind::Mobility => 1,
            TraceKind::Choke => 2,
            TraceKind::Transfer => 3,
            TraceKind::Tracker => 4,
            TraceKind::Other => 5,
        });
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        match r.get_u8() {
            0 => TraceKind::Connection,
            1 => TraceKind::Mobility,
            2 => TraceKind::Choke,
            3 => TraceKind::Transfer,
            4 => TraceKind::Tracker,
            5 => TraceKind::Other,
            t => panic!("snapshot: bad TraceKind tag {t}"),
        }
    }
}

impl simnet::snapshot::Snap for TraceEntry {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        self.at.snap(w);
        self.kind.snap(w);
        w.put_str(&self.message);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        TraceEntry {
            at: simnet::snapshot::Snap::unsnap(r),
            kind: simnet::snapshot::Snap::unsnap(r),
            message: r.get_string(),
        }
    }
}

impl simnet::snapshot::Snap for Trace {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        w.put_usize(self.capacity);
        w.put_bool(self.enabled);
        w.put_u64(self.dropped);
        self.entries.snap(w);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        Trace {
            capacity: r.get_usize(),
            enabled: r.get_bool(),
            dropped: r.get_u64(),
            entries: simnet::snapshot::Snap::unsnap(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::new(8);
        t.record(SimTime::ZERO, TraceKind::Other, "x");
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(SimTime::ZERO, TraceKind::Other, "y");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(3);
        t.set_enabled(true);
        for i in 0..5u64 {
            t.record(SimTime::from_secs(i), TraceKind::Transfer, format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<&str> = t.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn filtering_and_tail() {
        let mut t = Trace::new(16);
        t.set_enabled(true);
        t.record(SimTime::from_secs(1), TraceKind::Mobility, "handoff");
        t.record(SimTime::from_secs(2), TraceKind::Connection, "dial");
        t.record(SimTime::from_secs(3), TraceKind::Mobility, "return");
        assert_eq!(t.of_kind(TraceKind::Mobility).count(), 2);
        let tail: Vec<&str> = t.tail(2).map(|e| e.message.as_str()).collect();
        assert_eq!(tail, vec!["dial", "return"]);
    }

    #[test]
    fn render_is_line_per_entry() {
        let mut t = Trace::new(4);
        t.set_enabled(true);
        t.record(
            SimTime::from_millis(1500),
            TraceKind::Choke,
            "unchoked peer 3",
        );
        let s = t.render();
        assert!(s.contains("1.500000s"));
        assert!(s.contains("choke"));
        assert!(s.contains("unchoked peer 3"));
        assert_eq!(s.lines().count(), 1);
    }
}
