//! Measurement utilities: rate meters, time series, and run aggregation.
//!
//! All throughput numbers reported by the experiments come from these
//! meters operating on *virtual* time, so results are independent of the
//! wall-clock speed of the simulator.

use simnet::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Sliding-window byte-rate meter.
///
/// `record` registers a byte count at an instant; `rate_bps` reports the
/// average rate over the trailing window. This mirrors how the paper's
/// client measures "window-averaged throughputs" for the LIHD controller.
#[derive(Debug, Clone)]
pub struct RateMeter {
    window: SimDuration,
    samples: VecDeque<(SimTime, u64)>,
    in_window: u64,
    total: u64,
}

impl RateMeter {
    /// Creates a meter with the given trailing window.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "rate window must be positive");
        RateMeter {
            window,
            samples: VecDeque::new(),
            in_window: 0,
            total: 0,
        }
    }

    fn prune(&mut self, now: SimTime) {
        let horizon = now - self.window;
        while let Some(&(t, b)) = self.samples.front() {
            if t < horizon {
                self.samples.pop_front();
                self.in_window -= b;
            } else {
                break;
            }
        }
    }

    /// Records `bytes` transferred at `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.prune(now);
        self.samples.push_back((now, bytes));
        self.in_window += bytes;
        self.total += bytes;
    }

    /// Average rate over the trailing window, in bytes per second.
    pub fn rate_bps(&mut self, now: SimTime) -> f64 {
        self.prune(now);
        self.in_window as f64 / self.window.as_secs_f64()
    }

    /// Total bytes ever recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Clears samples and the total.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.in_window = 0;
        self.total = 0;
    }
}

/// Exponentially-weighted moving average of a scalar.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`; larger is
    /// more reactive.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Feeds a new observation and returns the updated average.
    pub fn observe(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any observation has been made.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// A `(time, value)` series collected during a run.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point. Points should be pushed in time order.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(prev, _)| prev <= t),
            "time series must be appended in order"
        );
        self.points.push((t, v));
    }

    /// The collected points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Value at or immediately before `t` (step interpolation), if any.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Renders as two-column CSV (`seconds,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.points.len() * 16);
        for &(t, v) in &self.points {
            out.push_str(&format!("{:.3},{:.6}\n", t.as_secs_f64(), v));
        }
        out
    }
}

/// Mean of a sample; zero for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation; zero when fewer than two points.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Aggregate of repeated runs of one experimental point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Mean across runs.
    pub mean: f64,
    /// Sample standard deviation across runs.
    pub stddev: f64,
    /// Number of runs.
    pub runs: usize,
}

impl RunSummary {
    /// Summarises a sample.
    pub fn of(xs: &[f64]) -> Self {
        RunSummary {
            mean: mean(xs),
            stddev: stddev(xs),
            runs: xs.len(),
        }
    }
}

impl simnet::snapshot::Snap for TimeSeries {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        self.points.snap(w);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        TimeSeries {
            points: simnet::snapshot::Snap::unsnap(r),
        }
    }
}

impl simnet::snapshot::Snap for RateMeter {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        self.window.snap(w);
        self.samples.snap(w);
        w.put_u64(self.in_window);
        w.put_u64(self.total);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        RateMeter {
            window: simnet::snapshot::Snap::unsnap(r),
            samples: simnet::snapshot::Snap::unsnap(r),
            in_window: r.get_u64(),
            total: r.get_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_meter_windows_correctly() {
        let mut m = RateMeter::new(SimDuration::from_secs(10));
        m.record(SimTime::from_secs(0), 1000);
        m.record(SimTime::from_secs(5), 1000);
        // Both samples inside window: 2000 B / 10 s = 200 B/s.
        assert_eq!(m.rate_bps(SimTime::from_secs(5)), 200.0);
        // At t=12 the t=0 sample has left the window.
        assert_eq!(m.rate_bps(SimTime::from_secs(12)), 100.0);
        assert_eq!(m.total_bytes(), 2000);
    }

    #[test]
    fn rate_meter_empty_is_zero() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        assert_eq!(m.rate_bps(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.observe(10.0), 10.0);
        assert_eq!(e.observe(20.0), 15.0);
        let mut last = 0.0;
        for _ in 0..50 {
            last = e.observe(100.0);
        }
        assert!((last - 100.0).abs() < 1e-6);
    }

    #[test]
    fn time_series_lookup() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 1.0);
        ts.push(SimTime::from_secs(3), 3.0);
        assert_eq!(ts.value_at(SimTime::from_secs(0)), None);
        assert_eq!(ts.value_at(SimTime::from_secs(1)), Some(1.0));
        assert_eq!(ts.value_at(SimTime::from_secs(2)), Some(1.0));
        assert_eq!(ts.value_at(SimTime::from_secs(5)), Some(3.0));
        assert_eq!(ts.last_value(), Some(3.0));
    }

    #[test]
    fn csv_rendering() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(1500), 2.5);
        assert_eq!(ts.to_csv(), "1.500,2.500000\n");
    }

    #[test]
    fn summary_statistics() {
        let s = RunSummary::of(&[2.0, 4.0, 6.0]);
        assert_eq!(s.mean, 4.0);
        assert!((s.stddev - 2.0).abs() < 1e-9);
        assert_eq!(s.runs, 3);
        let empty = RunSummary::of(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.stddev, 0.0);
    }
}
