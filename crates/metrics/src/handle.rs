//! The [`MetricsHandle`]: the one object instrumented code holds.
//!
//! A handle is either *enabled* — backed by a shared registry of
//! instruments, a series recorder, and a structured trace sink — or
//! *disabled*, in which case every instrument it resolves is a `None`
//! shell whose updates inline to nothing. Worlds, endpoints, and
//! clients accept a handle unconditionally; experiments decide at the
//! top whether observability is on.
//!
//! An enabled handle is seeded: the experiment seed is recorded in the
//! registry and lands in every dump, so a dump file is self-describing
//! about which run produced it.

use crate::json::{write_num, write_str, Json};
use crate::recorder::{Series, SeriesBuf, DEFAULT_SERIES_CAPACITY};
use crate::registry::{Counter, Gauge, Histogram, HistogramCore};
use crate::trace::{Trace, TraceKind};
use simnet::snapshot::{Snap, SnapReader, SnapWriter};
use simnet::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Capacity of the structured trace sink inside an enabled handle.
const TRACE_SINK_CAPACITY: usize = 65_536;

#[derive(Debug)]
struct MetricsCore {
    seed: u64,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    series: Mutex<BTreeMap<String, Arc<Mutex<SeriesBuf>>>>,
    trace: Mutex<Trace>,
}

/// Cheaply clonable entry point to the metrics layer. See the module
/// docs for the enabled/disabled contract.
#[derive(Debug, Clone, Default)]
pub struct MetricsHandle {
    core: Option<Arc<MetricsCore>>,
}

impl MetricsHandle {
    /// A handle whose every instrument is a no-op. This is the default
    /// wired into worlds and endpoints, so uninstrumented runs pay
    /// nothing.
    pub fn disabled() -> Self {
        MetricsHandle { core: None }
    }

    /// A live handle recording under the given experiment seed.
    pub fn enabled(seed: u64) -> Self {
        let mut trace = Trace::new(TRACE_SINK_CAPACITY);
        trace.set_enabled(true);
        MetricsHandle {
            core: Some(Arc::new(MetricsCore {
                seed,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                series: Mutex::new(BTreeMap::new()),
                trace: Mutex::new(trace),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The experiment seed, when enabled.
    pub fn seed(&self) -> Option<u64> {
        self.core.as_ref().map(|c| c.seed)
    }

    /// Resolves (creating on first use) the named counter. Resolution
    /// takes a short registry lock; updates on the returned instrument
    /// are lock-free.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.core.as_ref().map(|core| {
                Arc::clone(
                    core.counters
                        .lock()
                        .unwrap()
                        .entry(name.to_string())
                        .or_default(),
                )
            }),
        }
    }

    /// Resolves (creating on first use) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.core.as_ref().map(|core| {
                Arc::clone(
                    core.gauges
                        .lock()
                        .unwrap()
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
                )
            }),
        }
    }

    /// Resolves (creating on first use) the named histogram with the
    /// given finite bucket bounds. The bounds of the first resolution
    /// win; later calls reuse the existing buckets.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        Histogram {
            core: self.core.as_ref().map(|core| {
                Arc::clone(
                    core.histograms
                        .lock()
                        .unwrap()
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(HistogramCore::new(bounds))),
                )
            }),
        }
    }

    /// Resolves (creating on first use) the named time series with the
    /// default ring capacity.
    pub fn series(&self, name: &str) -> Series {
        self.series_with_capacity(name, DEFAULT_SERIES_CAPACITY)
    }

    /// Resolves (creating on first use) the named time series with an
    /// explicit ring capacity. The capacity of the first resolution
    /// wins.
    pub fn series_with_capacity(&self, name: &str, capacity: usize) -> Series {
        Series {
            buf: self.core.as_ref().map(|core| {
                Arc::clone(
                    core.series
                        .lock()
                        .unwrap()
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(Mutex::new(SeriesBuf::new(capacity)))),
                )
            }),
        }
    }

    /// Records a structured trace event into the handle's sink. No-op
    /// when disabled.
    pub fn trace_event(&self, at: SimTime, kind: TraceKind, message: impl Into<String>) {
        if let Some(core) = &self.core {
            core.trace.lock().unwrap().record(at, kind, message);
        }
    }

    /// Runs `f` over the trace sink. Returns `None` when disabled.
    pub fn with_trace<R>(&self, f: impl FnOnce(&Trace) -> R) -> Option<R> {
        self.core
            .as_ref()
            .map(|core| f(&core.trace.lock().unwrap()))
    }

    /// The current value of a counter by name (0 if absent/disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.core.as_ref().map_or(0, |core| {
            core.counters
                .lock()
                .unwrap()
                .get(name)
                .map_or(0, |c| c.load(Ordering::Relaxed))
        })
    }

    /// Names of all series recorded so far, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.core.as_ref().map_or_else(Vec::new, |core| {
            core.series.lock().unwrap().keys().cloned().collect()
        })
    }

    /// Serialises the entire registry — seed, counters, gauges,
    /// histograms, series, and trace events — as one deterministic JSON
    /// document (sorted keys, sim-time stamps only). Returns `null`
    /// when disabled.
    pub fn to_json(&self) -> String {
        let Some(core) = &self.core else {
            return "null".to_string();
        };
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, (name, cell)) in core.counters.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(name, &mut out);
            let _ = write!(out, ":{}", cell.load(Ordering::Relaxed));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, cell)) in core.gauges.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(name, &mut out);
            let _ = write!(
                out,
                ":{}",
                write_num(f64::from_bits(cell.load(Ordering::Relaxed)))
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in core.histograms.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(name, &mut out);
            out.push_str(":{\"bounds\":[");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&write_num(*b));
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", c.load(Ordering::Relaxed));
            }
            let _ = write!(out, "],\"total\":{}}}", h.total.load(Ordering::Relaxed));
        }
        let _ = write!(out, "}},\"seed\":{},\"series\":{{", core.seed);
        for (i, (name, buf)) in core.series.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(name, &mut out);
            let buf = buf.lock().unwrap();
            let _ = write!(out, ":{{\"dropped\":{},\"points\":[", buf.dropped());
            for (j, (t, v)) in buf.points().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", write_num(t.as_secs_f64()), write_num(v));
            }
            out.push_str("]}");
        }
        out.push_str("},\"trace\":[");
        {
            let trace = core.trace.lock().unwrap();
            for (i, e) in trace.entries().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"at\":{},\"kind\":", write_num(e.at.as_secs_f64()));
                write_str(&e.kind.to_string(), &mut out);
                out.push_str(",\"message\":");
                write_str(&e.message, &mut out);
                out.push('}');
            }
        }
        out.push_str("]}");
        debug_assert!(Json::parse(&out).is_ok(), "to_json emitted invalid JSON");
        out
    }

    /// Serialises every recorded series as CSV with a
    /// `series,seconds,value` header. Deterministic: series are sorted
    /// by name, points are in recording order, stamps are sim-time.
    pub fn series_csv(&self) -> String {
        let mut out = String::from("series,seconds,value\n");
        let Some(core) = &self.core else {
            return out;
        };
        for (name, buf) in core.series.lock().unwrap().iter() {
            for (t, v) in buf.lock().unwrap().points() {
                let _ = writeln!(out, "{},{:.6},{}", name, t.as_secs_f64(), write_num(v));
            }
        }
        out
    }

    /// Serialises the full registry — every counter, gauge, histogram,
    /// series ring, and the trace sink — into a snapshot. Instruments
    /// are written by name (maps are `BTreeMap`s, so the order is the
    /// sorted name order), which makes the blob independent of
    /// resolution history.
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.section("metrics");
        let Some(core) = &self.core else {
            w.put_bool(false);
            return;
        };
        w.put_bool(true);
        w.put_u64(core.seed);
        let counters = core.counters.lock().unwrap();
        w.put_usize(counters.len());
        for (name, cell) in counters.iter() {
            w.put_str(name);
            w.put_u64(cell.load(Ordering::Relaxed));
        }
        drop(counters);
        let gauges = core.gauges.lock().unwrap();
        w.put_usize(gauges.len());
        for (name, cell) in gauges.iter() {
            w.put_str(name);
            w.put_u64(cell.load(Ordering::Relaxed));
        }
        drop(gauges);
        let histograms = core.histograms.lock().unwrap();
        w.put_usize(histograms.len());
        for (name, h) in histograms.iter() {
            w.put_str(name);
            h.bounds.snap(w);
            w.put_usize(h.counts.len());
            for c in &h.counts {
                w.put_u64(c.load(Ordering::Relaxed));
            }
            w.put_u64(h.sum_bits.load(Ordering::Relaxed));
            w.put_u64(h.total.load(Ordering::Relaxed));
        }
        drop(histograms);
        let series = core.series.lock().unwrap();
        w.put_usize(series.len());
        for (name, buf) in series.iter() {
            w.put_str(name);
            buf.lock().unwrap().snap(w);
        }
        drop(series);
        core.trace.lock().unwrap().snap(w);
    }

    /// Restores instrument values previously written by
    /// [`MetricsHandle::snap_state`], resolving each instrument by name
    /// through the normal `entry().or_default()` path. Instruments
    /// already resolved by live code keep their `Arc` identity — their
    /// cells are overwritten in place, so every holder observes the
    /// restored values.
    ///
    /// # Panics
    ///
    /// Panics when the blob's enabled/disabled state does not match
    /// this handle's.
    pub fn restore_state(&self, r: &mut SnapReader<'_>) {
        r.section("metrics");
        let was_enabled = r.get_bool();
        assert_eq!(
            was_enabled,
            self.is_enabled(),
            "snapshot: metrics enabled/disabled mismatch"
        );
        let Some(core) = &self.core else { return };
        let seed = r.get_u64();
        assert_eq!(seed, core.seed, "snapshot: metrics seed mismatch");
        let n = r.get_usize();
        {
            let mut counters = core.counters.lock().unwrap();
            for _ in 0..n {
                let name = r.get_string();
                let v = r.get_u64();
                counters
                    .entry(name)
                    .or_default()
                    .store(v, Ordering::Relaxed);
            }
        }
        let n = r.get_usize();
        {
            let mut gauges = core.gauges.lock().unwrap();
            for _ in 0..n {
                let name = r.get_string();
                let v = r.get_u64();
                gauges
                    .entry(name)
                    .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())))
                    .store(v, Ordering::Relaxed);
            }
        }
        let n = r.get_usize();
        {
            let mut histograms = core.histograms.lock().unwrap();
            for _ in 0..n {
                let name = r.get_string();
                let bounds: Vec<f64> = Snap::unsnap(r);
                let n_counts = r.get_usize();
                let h = histograms
                    .entry(name)
                    .or_insert_with(|| Arc::new(HistogramCore::new(&bounds)));
                assert_eq!(
                    h.counts.len(),
                    n_counts,
                    "snapshot: histogram bucket-count mismatch"
                );
                for c in &h.counts {
                    c.store(r.get_u64(), Ordering::Relaxed);
                }
                h.sum_bits.store(r.get_u64(), Ordering::Relaxed);
                h.total.store(r.get_u64(), Ordering::Relaxed);
            }
        }
        let n = r.get_usize();
        {
            let mut series = core.series.lock().unwrap();
            for _ in 0..n {
                let name = r.get_string();
                let buf: SeriesBuf = Snap::unsnap(r);
                match series.entry(name) {
                    std::collections::btree_map::Entry::Occupied(e) => {
                        *e.get().lock().unwrap() = buf;
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(Arc::new(Mutex::new(buf)));
                    }
                }
            }
        }
        *core.trace.lock().unwrap() = Snap::unsnap(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimTime;

    #[test]
    fn disabled_handle_is_inert() {
        let m = MetricsHandle::disabled();
        assert!(!m.is_enabled());
        m.counter("c").inc();
        m.gauge("g").set(1.0);
        m.histogram("h", &[1.0]).record(0.5);
        m.series("s").record(SimTime::from_secs(1), 2.0);
        m.trace_event(SimTime::ZERO, TraceKind::Other, "x");
        assert_eq!(m.counter_value("c"), 0);
        assert_eq!(m.to_json(), "null");
        assert_eq!(m.series_csv(), "series,seconds,value\n");
    }

    #[test]
    fn instruments_share_state_by_name() {
        let m = MetricsHandle::enabled(7);
        let a = m.counter("tcp.retransmits");
        let b = m.counter("tcp.retransmits");
        a.inc();
        b.add(2);
        assert_eq!(m.counter_value("tcp.retransmits"), 3);
        assert_eq!(m.seed(), Some(7));
    }

    #[test]
    fn json_dump_is_valid_and_deterministic() {
        let build = || {
            let m = MetricsHandle::enabled(42);
            m.counter("z.count").add(5);
            m.counter("a.count").inc();
            m.gauge("rate").set(1.5);
            let h = m.histogram("lat", &[0.1, 1.0]);
            h.record(0.05);
            h.record(5.0);
            let s = m.series("cwnd");
            s.record(SimTime::from_secs(1), 2920.0);
            s.record(SimTime::from_millis(1500), 4380.0);
            m.trace_event(SimTime::from_secs(2), TraceKind::Mobility, "handoff");
            m.to_json()
        };
        let j1 = build();
        let j2 = build();
        assert_eq!(j1, j2, "dump must be byte-identical across runs");
        let v = Json::parse(&j1).expect("dump parses");
        assert_eq!(v.get("seed").and_then(Json::as_num), Some(42.0));
        let counters = v.get("counters").unwrap().as_obj().unwrap();
        assert_eq!(counters.keys().next().map(String::as_str), Some("a.count"));
        let hist = v.get("histograms").unwrap().get("lat").unwrap();
        assert_eq!(
            hist.get("counts").unwrap().as_arr().unwrap().len(),
            3,
            "two finite buckets plus overflow"
        );
        let trace = v.get("trace").unwrap().as_arr().unwrap();
        assert_eq!(trace[0].get("kind").and_then(Json::as_str), Some("mob"));
    }

    #[test]
    fn series_csv_lists_points_in_order() {
        let m = MetricsHandle::enabled(1);
        let s = m.series("x");
        s.record(SimTime::from_secs(1), 1.0);
        s.record(SimTime::from_secs(2), 2.5);
        assert_eq!(
            m.series_csv(),
            "series,seconds,value\nx,1.000000,1\nx,2.000000,2.5\n"
        );
    }
}
