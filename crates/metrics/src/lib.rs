//! # metrics — unified metrics/tracing layer for the wP2P reproduction
//!
//! One crate owns everything observable: lock-free-in-the-hot-path
//! instruments, a bounded sim-time series recorder, a structured trace
//! sink, and the descriptive statistics the figure drivers share. It
//! subsumes the old `simnet::stats` / `simnet::trace` modules (both now
//! live here) and adds the [`handle::MetricsHandle`] that every layer —
//! TCP endpoints, BitTorrent clients, the AM filter, LIHD, and both
//! simulation worlds — records through.
//!
//! * [`handle`] — [`handle::MetricsHandle`]: enabled (shared registry)
//!   or disabled (all updates inline to nothing).
//! * [`registry`] — [`registry::Counter`], [`registry::Gauge`],
//!   [`registry::Histogram`]: resolve-by-name once, then atomic updates.
//! * [`recorder`] — [`recorder::Series`]: ring-buffer time series with
//!   sim-time stamps and bounded memory.
//! * [`trace`] — the bounded event trace (ring buffer, opt-in) that
//!   worlds embed and the handle also exposes as a sink.
//! * [`stats`] — rate meters, EWMA, append-only time series, and run
//!   summaries used by experiment post-processing.
//! * [`json`] — the dependency-free JSON value/parser/writer behind
//!   `--metrics-out` dumps and the experiment-parameter round-trip.
//!
//! ## Determinism contract
//!
//! Dumps ([`handle::MetricsHandle::to_json`] /
//! [`handle::MetricsHandle::series_csv`]) contain only sim-time stamps
//! and sorted keys, so the same seed produces byte-identical output.
//! Under parallel sweeps, counters and histograms stay deterministic
//! because their updates commute; series and gauges must use
//! per-cell-unique names (one writer per instrument).
//!
//! ## Example
//!
//! ```
//! use metrics::prelude::*;
//! use simnet::time::SimTime;
//!
//! let m = MetricsHandle::enabled(42);
//! m.counter("tcp.retransmits").inc();
//! m.series("tcp.cwnd").record(SimTime::from_secs(1), 2920.0);
//! assert_eq!(m.counter_value("tcp.retransmits"), 1);
//! assert!(m.to_json().contains("\"seed\":42"));
//!
//! // The disabled handle has the same API and does nothing.
//! let off = MetricsHandle::disabled();
//! off.counter("tcp.retransmits").inc();
//! assert_eq!(off.counter_value("tcp.retransmits"), 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod handle;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod stats;
pub mod trace;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::handle::MetricsHandle;
    pub use crate::json::Json;
    pub use crate::recorder::Series;
    pub use crate::registry::{Counter, Gauge, Histogram};
    pub use crate::stats::{Ewma, RateMeter, RunSummary, TimeSeries};
    pub use crate::trace::{Trace, TraceEntry, TraceKind};
}
