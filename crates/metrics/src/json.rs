//! A minimal, dependency-free JSON value with a parser and writer.
//!
//! The workspace deliberately carries no external crates, so the metrics
//! dumps (`--metrics-out`), the [`crate::handle::MetricsHandle`] JSON
//! export, the experiment-parameter round-trip, and the CI schema
//! validator all share this one hand-rolled implementation. It covers
//! the JSON subset those producers emit: objects, arrays, strings with
//! standard escapes, numbers, booleans, and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys are kept sorted (`BTreeMap`) so that
/// re-serialising a value is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Stored as `f64`; integers up to 2^53 round-trip.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a JSON document. Returns a human-readable error on
    /// malformed input.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A field of an object value, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Serialises compactly (no whitespace). Deterministic: object keys
    /// are emitted in sorted order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&write_num(*x)),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Formats a number the way the dump writers do: integers without a
/// fraction, other finite values via the shortest round-trip repr, and
/// non-finite values as `null` (JSON has no NaN/Infinity).
pub fn write_num(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 9.0e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:?}")
    }
}

/// Writes a JSON string literal with standard escapes.
pub fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf8 in number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 from the raw bytes.
                    let char_start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = char_start + width;
                    if end > self.bytes.len() {
                        return Err("truncated utf8".to_string());
                    }
                    let s = std::str::from_utf8(&self.bytes[char_start..end])
                        .map_err(|_| "invalid utf8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first < 0xE0 {
        2
    } else if first < 0xF0 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for s in ["null", "true", "false", "42", "-7", "1.5", "\"hi\""] {
            let v = Json::parse(s).unwrap();
            assert_eq!(v.render(), s, "round trip of {s}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2.5, {"b": "x\ny"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.render(), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn rejects_malformed_input() {
        for s in ["{", "[1,", "\"abc", "tru", "1.2.3", "{\"a\" 1}"] {
            assert!(Json::parse(s).is_err(), "should reject {s}");
        }
    }

    #[test]
    fn numbers_round_trip_exactly() {
        let v = Json::parse("1e-5").unwrap();
        assert_eq!(v.as_num(), Some(1e-5));
        assert_eq!(write_num(1e-5), "1e-5");
        assert_eq!(write_num(3.0), "3");
        assert_eq!(write_num(f64::NAN), "null");
    }
}
