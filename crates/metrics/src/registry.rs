//! Lock-free instruments: counters, gauges, and fixed-bucket histograms.
//!
//! Instruments are resolved by name once (taking a short registry lock)
//! and then updated through plain atomics — no locks, no allocation on
//! the hot path. A handle resolved from a disabled
//! [`crate::handle::MetricsHandle`] carries `None` and every update is
//! an inlined no-op, so instrumented code costs nothing when metrics
//! are off.
//!
//! Counter and histogram updates are commutative (atomic adds), so
//! totals are deterministic even when cells of a parallel sweep update
//! the same instrument from different worker threads. Gauges are
//! last-writer-wins: give each sweep cell its own gauge name when the
//! final value must be reproducible under parallel execution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count (retransmits, rechokes,
/// pieces completed, …).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    pub(crate) cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds `n` to the counter. No-op when metrics are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter. No-op when metrics are disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-writer-wins instantaneous value (current upload limit, swarm
/// size, …). Stored as `f64` bits in an atomic.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    pub(crate) cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Sets the gauge. No-op when metrics are disabled.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(c) = &self.cell {
            c.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current value (0.0 when disabled or never set).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Shared storage for a fixed-bucket histogram.
#[derive(Debug)]
pub struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing. A value
    /// `v` lands in the first bucket with `v <= bound`; values above
    /// the last bound land in the implicit overflow bucket.
    pub bounds: Vec<f64>,
    /// One count per finite bucket plus the trailing overflow bucket.
    pub counts: Vec<AtomicU64>,
    /// Sum of all observed values, as `f64` bits accumulated via CAS.
    pub sum_bits: AtomicU64,
    /// Total number of observations.
    pub total: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        HistogramCore {
            bounds: bounds.to_vec(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            total: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram (hand-off latencies, piece times, …).
///
/// Bucket bounds are fixed at creation; recording is a single atomic
/// add on the matching bucket.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// Records one observation. No-op when metrics are disabled.
    #[inline]
    pub fn record(&self, value: f64) {
        let Some(core) = &self.core else { return };
        let idx = core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.total.fetch_add(1, Ordering::Relaxed);
        // Accumulate the sum via CAS on the f64 bit pattern. Note the
        // sum (unlike the bucket counts) is order-sensitive in the last
        // few ULPs, so dumps derive statistics from counts, not sum.
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations (0 when disabled).
    pub fn count(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.total.load(Ordering::Relaxed))
    }

    /// Per-bucket counts including the trailing overflow bucket (empty
    /// when disabled).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.core.as_ref().map_or_else(Vec::new, |c| {
            c.counts.iter().map(|n| n.load(Ordering::Relaxed)).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instruments_are_noops() {
        let c = Counter::default();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::default();
        h.record(1.0);
        assert_eq!(h.count(), 0);
        assert!(h.bucket_counts().is_empty());
    }

    #[test]
    fn histogram_buckets_values() {
        let h = Histogram {
            core: Some(Arc::new(HistogramCore::new(&[1.0, 10.0]))),
        };
        h.record(0.5); // bucket 0
        h.record(1.0); // bucket 0 (inclusive upper bound)
        h.record(5.0); // bucket 1
        h.record(100.0); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        HistogramCore::new(&[2.0, 1.0]);
    }
}
