//! Plain-text tables for the figure-regeneration binaries.
//!
//! Each experiment prints the same rows/series the paper plots, in a form
//! that is easy to diff and to paste into EXPERIMENTS.md.

use std::fmt::Write as _;

/// A printable table: a title, column headers, and rows of cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title (e.g. `"Figure 8(a) ..."`).
    pub fn new(title: &str) -> Self {
        Table {
            title: title.to_string(),
            ..Default::default()
        }
    }

    /// Sets the column headers.
    pub fn headers<S: Into<String>>(&mut self, headers: impl IntoIterator<Item = S>) -> &mut Self {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row of cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a footnote line.
    pub fn note(&mut self, note: &str) -> &mut Self {
        self.notes.push(note.to_string());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:>w$}  ", w = w);
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
            let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
            let _ = writeln!(out, "{}", "-".repeat(rule));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a bytes/second rate as the paper's "KBps" (kilobytes/second).
pub fn kbps(bytes_per_sec: f64) -> String {
    format!("{:.1}", bytes_per_sec / 1024.0)
}

/// Formats a byte count in MB.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo");
        t.headers(["x", "value"]);
        t.row(["1", "10.0"]);
        t.row(["100", "2.5"]);
        t.note("a footnote");
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("a footnote"));
        // Columns right-aligned to the same width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1], "  x  value");
        assert_eq!(lines[3], "  1   10.0");
        assert_eq!(lines[4], "100    2.5");
    }

    #[test]
    fn formatters() {
        assert_eq!(kbps(2048.0), "2.0");
        assert_eq!(mb(3 * 1024 * 1024), "3.0");
        assert_eq!(pct(0.256), "25.6");
    }

    #[test]
    fn empty_table() {
        let t = Table::new("E");
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains("## E"));
    }
}
