//! Parallel deterministic sweep harness.
//!
//! Every paper figure is a sweep: a list of parameter points, each
//! averaged over independent runs. [`SweepRunner`] fans the
//! (point × run) cells across `std::thread::scope` workers while keeping
//! the output bit-for-bit identical to a serial run:
//!
//! * each cell's RNG seed is a pure function of
//!   `(base_seed, point_index, run_index)` ([`cell_seed`]) — no worker
//!   ever touches another cell's random stream;
//! * results are assembled in cell order, regardless of which worker
//!   finished first.
//!
//! Worker count defaults to [`std::thread::available_parallelism`] and
//! can be overridden with the `WP2P_THREADS` environment variable
//! (`WP2P_THREADS=1` forces serial execution — useful for verifying the
//! determinism claim).
//!
//! Every sweep records a [`SweepStats`] entry (cell count, wall-clock,
//! summed per-cell wall-clock, simulated virtual time) into a global
//! registry; the `all_figures` binary drains it into
//! `BENCH_sweeps.json` so the repo has a perf trajectory.

use metrics::handle::MetricsHandle;
use simnet::rng::SimRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic seed of one sweep cell. A pure function of its
/// arguments, so any execution order — serial, parallel, resumed —
/// reproduces the same random streams.
pub fn cell_seed(base_seed: u64, point: usize, run: usize) -> u64 {
    mix(mix(base_seed ^ mix(point as u64 + 1)) ^ mix((run as u64) << 32 | 0xCE11))
}

/// A point-invariant seed: the same for every sweep point at a given run
/// index. Sweeps whose points are *compared* against each other (e.g. a
/// monotonicity claim across BERs) use this so all points of run `r`
/// share one random stream — the common-random-numbers variance
/// reduction the original serial drivers relied on.
pub fn run_seed(base_seed: u64, run: usize) -> u64 {
    mix(mix(base_seed) ^ mix((run as u64) << 32 | 0xCE11))
}

/// The number of sweep workers: `WP2P_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn worker_threads() -> usize {
    match std::env::var("WP2P_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Per-cell context handed to the sweep body.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Index of the sweep point this cell belongs to.
    pub point: usize,
    /// Run index within the point.
    pub run: usize,
    /// The cell's deterministic seed (see [`cell_seed`]).
    pub seed: u64,
    /// The cell's point-invariant seed (see [`run_seed`]) — shared by
    /// every point at this run index, for common random numbers across
    /// sweep points.
    pub run_seed: u64,
    virtual_secs: f64,
}

impl Cell {
    /// A fresh RNG rooted at this cell's seed.
    pub fn rng(&self) -> SimRng {
        SimRng::new(self.seed)
    }

    /// Accounts simulated virtual time consumed by this cell (shows up
    /// in the sweep's [`SweepStats`]).
    pub fn add_virtual_secs(&mut self, secs: f64) {
        self.virtual_secs += secs;
    }
}

/// Aggregate statistics of one executed sweep.
#[derive(Clone, Debug)]
pub struct SweepStats {
    /// Sweep name (usually the figure or panel).
    pub name: String,
    /// Number of sweep points.
    pub points: usize,
    /// Runs per point.
    pub runs: usize,
    /// Total cells executed (`points × runs`).
    pub cells: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock of the whole sweep.
    pub wall: Duration,
    /// Sum of each cell's individual wall-clock (serial-equivalent
    /// time; `cell_wall / wall` is the realised speedup).
    pub cell_wall: Duration,
    /// Total simulated virtual time reported by the cells, seconds.
    pub virtual_secs: f64,
}

impl SweepStats {
    /// Realised parallel speedup: serial-equivalent time over wall time.
    pub fn speedup(&self) -> f64 {
        self.cell_wall.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }
}

static REGISTRY: Mutex<Vec<SweepStats>> = Mutex::new(Vec::new());

fn record_stats(stats: SweepStats) {
    REGISTRY.lock().expect("stats registry").push(stats);
}

/// Drains all sweep statistics recorded since the last call.
pub fn take_stats() -> Vec<SweepStats> {
    std::mem::take(&mut *REGISTRY.lock().expect("stats registry"))
}

/// Runs (point × run) sweeps deterministically across worker threads.
pub struct SweepRunner {
    name: String,
    base_seed: u64,
    threads: usize,
    metrics: MetricsHandle,
}

impl SweepRunner {
    /// A runner named after its figure/panel, with all cell seeds rooted
    /// at `base_seed`. Worker count comes from [`worker_threads`].
    pub fn new(name: impl Into<String>, base_seed: u64) -> Self {
        SweepRunner {
            name: name.into(),
            base_seed,
            threads: worker_threads(),
            metrics: MetricsHandle::disabled(),
        }
    }

    /// Overrides the worker count (tests; forced-serial comparisons).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a metrics handle. After each sweep the runner records
    /// `sweep.<name>.cells` (counter) and `sweep.<name>.virtual_secs`
    /// (gauge). Only worker-count-independent quantities are recorded —
    /// wall-clock timings stay out of the handle so dumps remain
    /// deterministic.
    pub fn with_metrics(mut self, handle: &MetricsHandle) -> Self {
        self.metrics = handle.clone();
        self
    }

    /// The worker count this runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `f` once per (point, run) cell and returns the results
    /// grouped per point, in run order — identical for any worker count.
    pub fn run<P, R, F>(&self, points: &[P], runs: usize, f: F) -> Vec<Vec<R>>
    where
        P: Sync,
        R: Send,
        F: Fn(&P, &mut Cell) -> R + Sync,
    {
        let cells = points.len() * runs;
        let threads = self.threads.min(cells.max(1));
        let sweep_start = Instant::now();

        let run_cell = |idx: usize| -> (usize, R, Duration, f64) {
            let point = idx / runs;
            let run = idx % runs;
            let mut cell = Cell {
                point,
                run,
                seed: cell_seed(self.base_seed, point, run),
                run_seed: run_seed(self.base_seed, run),
                virtual_secs: 0.0,
            };
            let t0 = Instant::now();
            let result = f(&points[point], &mut cell);
            (idx, result, t0.elapsed(), cell.virtual_secs)
        };

        let mut outcomes: Vec<(usize, R, Duration, f64)> = if threads <= 1 {
            (0..cells).map(run_cell).collect()
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, R, Duration, f64)>> =
                Mutex::new(Vec::with_capacity(cells));
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= cells {
                                break;
                            }
                            local.push(run_cell(idx));
                        }
                        collected.lock().expect("cell results").append(&mut local);
                    });
                }
            });
            collected.into_inner().expect("cell results")
        };
        outcomes.sort_by_key(|o| o.0);

        let mut cell_wall = Duration::ZERO;
        let mut virtual_secs = 0.0;
        let mut grouped: Vec<Vec<R>> = (0..points.len())
            .map(|_| Vec::with_capacity(runs))
            .collect();
        for (idx, result, wall, vsecs) in outcomes {
            cell_wall += wall;
            virtual_secs += vsecs;
            grouped[idx / runs].push(result);
        }
        if self.metrics.is_enabled() {
            self.metrics
                .counter(&format!("sweep.{}.cells", self.name))
                .add(cells as u64);
            self.metrics
                .gauge(&format!("sweep.{}.virtual_secs", self.name))
                .set(virtual_secs);
        }
        record_stats(SweepStats {
            name: self.name.clone(),
            points: points.len(),
            runs,
            cells,
            threads,
            wall: sweep_start.elapsed(),
            cell_wall,
            virtual_secs,
        });
        grouped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(&p: &u64, cell: &mut Cell) -> (u64, u64) {
        let mut rng = cell.rng();
        cell.add_virtual_secs(1.0);
        let mut acc = 0u64;
        for _ in 0..64 {
            acc = acc.wrapping_add(rng.next_u64() ^ p);
        }
        (cell.seed, acc)
    }

    #[test]
    fn parallel_output_is_identical_to_serial() {
        let points: Vec<u64> = (0..5).collect();
        let serial = SweepRunner::new("harness-test-serial", 42)
            .with_threads(1)
            .run(&points, 4, body);
        let parallel = SweepRunner::new("harness-test-parallel", 42)
            .with_threads(8)
            .run(&points, 4, body);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 5);
        assert!(serial.iter().all(|rs| rs.len() == 4));
    }

    #[test]
    fn cell_seeds_are_unique_and_order_free() {
        let mut seen = std::collections::BTreeSet::new();
        for point in 0..20 {
            for run in 0..20 {
                assert!(seen.insert(cell_seed(7, point, run)), "seed collision");
            }
        }
        // (point, run) is not symmetric.
        assert_ne!(cell_seed(7, 1, 2), cell_seed(7, 2, 1));
    }

    #[test]
    fn stats_are_recorded() {
        let _ = SweepRunner::new("harness-test-stats", 3)
            .with_threads(2)
            .run(&[1u64, 2], 3, body);
        let stats = take_stats();
        let s = stats
            .iter()
            .find(|s| s.name == "harness-test-stats")
            .expect("sweep recorded");
        assert_eq!(s.cells, 6);
        assert_eq!(s.points, 2);
        assert_eq!(s.runs, 3);
        assert!((s.virtual_secs - 6.0).abs() < 1e-9);
        assert!(s.cell_wall >= Duration::ZERO);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let out: Vec<Vec<u64>> =
            SweepRunner::new("harness-test-empty", 1).run(&[] as &[u64], 3, |_, _| 0);
        assert!(out.is_empty());
    }
}
