//! Per-figure experiment drivers.
//!
//! Each module reproduces one figure (or panel group) of the paper's
//! evaluation: it builds the matching testbed, sweeps the paper's
//! parameter, and returns the series the paper plots. Every driver has a
//! `quick` preset (CI-sized) and a `paper` preset (full scale).

pub mod ablations;
pub mod blackout;
pub mod common;
pub mod erosion;
pub mod exploit;
pub mod faults;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig8;
pub mod fig9;
pub mod params;
pub mod playability;
pub mod registry;
pub mod scale;
pub mod search;
pub mod service;
pub mod soak;
