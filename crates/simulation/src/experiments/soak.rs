//! **Chaos soak** — named fault scenarios that prove the swarm heals
//! (`all_figures -- --soak <seed>`).
//!
//! Not a paper figure: the robustness harness for the connection
//! lifecycle layer. Each scenario composes [`FaultPlan`] windows —
//! tracker outages, black holes, address churn, loss bursts, bandwidth
//! squeezes, crashes, including all of them at once — against a small
//! swarm of **armed** clients ([`ResilienceConfig::armed`]) with the
//! stall watchdog on. After every fault window closes the harness
//! measures *time to recover*: how long until every alive, incomplete
//! leech makes fresh piece progress again. A window that never recovers
//! within the budget panics the run — liveness is asserted, not
//! reported. The full [`InvariantChecker`] runs throughout, and every
//! observable (schedules, recovery times, final progress) is a pure
//! function of the seed, so a failing seed replays byte-identically.
//!
//! [`ResilienceConfig::armed`]: bittorrent::lifecycle::ResilienceConfig::armed

use super::common::synthetic_torrent;
use super::params::{builder_setters, ExperimentParams};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskKey, TaskSpec};
use crate::harness::SweepRunner;
use crate::invariants::InvariantChecker;
use crate::report::{pct, Table};
use bittorrent::client::ClientConfig;
use bittorrent::lifecycle::ResilienceConfig;
use metrics::handle::MetricsHandle;
use simnet::addr::NodeId;
use simnet::fault::{FaultInjector, FaultKind, FaultPlan, FaultPlanConfig};
use simnet::time::{SimDuration, SimTime};

/// Base seed of the soak sweep (pinned by the determinism tests).
pub const SOAK_SEED: u64 = 0x50AC;

/// Parameters of the chaos soak.
#[derive(Clone, Debug)]
pub struct SoakParams {
    /// File size per swarm — big enough that the transfer outlasts the
    /// fault schedule (a completed swarm recovers trivially).
    pub file_size: u64,
    /// Piece length.
    pub piece_length: u32,
    /// Initial completion spread of the fixed leeches (mutual interest).
    pub head_start: f64,
    /// Recovery budget after each fault window; exceeding it panics.
    pub recovery_timeout: SimDuration,
    /// Per-connection stall watchdog (always on in the soak).
    pub stall_timeout: SimDuration,
    /// Drain time after the last window's recovery.
    pub tail: SimDuration,
    /// Runs per scenario.
    pub runs: u64,
}

impl SoakParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        SoakParams {
            file_size: 32 * 1024 * 1024,
            piece_length: 256 * 1024,
            head_start: 0.5,
            recovery_timeout: SimDuration::from_secs(240),
            stall_timeout: SimDuration::from_secs(15),
            tail: SimDuration::from_secs(30),
            runs: 1,
        }
    }

    /// Paper-scale preset: larger file, longer budgets, more runs.
    pub fn paper() -> Self {
        SoakParams {
            file_size: 64 * 1024 * 1024,
            piece_length: 256 * 1024,
            head_start: 0.5,
            recovery_timeout: SimDuration::from_secs(300),
            stall_timeout: SimDuration::from_secs(15),
            tail: SimDuration::from_secs(60),
            runs: 2,
        }
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_num("file_size", self.file_size as f64);
        p.set_num("piece_length", self.piece_length as f64);
        p.set_num("head_start", self.head_start);
        p.set_dur("recovery_timeout_s", self.recovery_timeout);
        p.set_dur("stall_timeout_s", self.stall_timeout);
        p.set_dur("tail_s", self.tail);
        p.set_num("runs", self.runs as f64);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        SoakParams {
            file_size: p.u64_or("file_size", base.file_size),
            piece_length: p.u32_or("piece_length", base.piece_length),
            head_start: p.num_or("head_start", base.head_start),
            recovery_timeout: p.dur_or("recovery_timeout_s", base.recovery_timeout),
            stall_timeout: p.dur_or("stall_timeout_s", base.stall_timeout),
            tail: p.dur_or("tail_s", base.tail),
            runs: p.u64_or("runs", base.runs),
        }
    }
}

builder_setters!(SoakParams {
    file_size: u64,
    piece_length: u32,
    head_start: f64,
    recovery_timeout: SimDuration,
    stall_timeout: SimDuration,
    tail: SimDuration,
    runs: u64,
});

/// The fixed soak topology, as fault-plan handles.
pub struct Topo {
    /// The campus seed.
    pub seed: NodeId,
    /// The three fixed residential leeches.
    pub leeches: [NodeId; 3],
    /// The wireless mobile leech.
    pub mobile: NodeId,
    /// Every node.
    pub all: Vec<NodeId>,
}

type PlanFn = fn(u64, &Topo) -> FaultPlan;

/// One named chaos scenario.
pub struct Scenario {
    /// Registry-stable name.
    pub name: &'static str,
    /// One-line description for the table.
    pub what: &'static str,
    build: PlanFn,
}

fn at(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn tracker_blackout(seed: u64, _t: &Topo) -> FaultPlan {
    let mut p = FaultPlan::empty(seed);
    p.push(at(20), FaultKind::TrackerOutage { duration: secs(30) });
    p.push(at(90), FaultKind::TrackerOutage { duration: secs(45) });
    p
}

fn blackhole_storm(seed: u64, t: &Topo) -> FaultPlan {
    let mut p = FaultPlan::empty(seed);
    p.push(
        at(15),
        FaultKind::LinkBlackhole {
            node: t.seed,
            duration: secs(20),
        },
    );
    p.push(
        at(40),
        FaultKind::LinkBlackhole {
            node: t.leeches[0],
            duration: secs(15),
        },
    );
    p.push(
        at(45),
        FaultKind::LinkBlackhole {
            node: t.leeches[1],
            duration: secs(15),
        },
    );
    p
}

fn churn_wave(seed: u64, t: &Topo) -> FaultPlan {
    let mut p = FaultPlan::empty(seed);
    for s in [20, 50, 80] {
        p.push(at(s), FaultKind::AddressChurn { node: t.mobile });
    }
    p
}

fn loss_siege(seed: u64, t: &Topo) -> FaultPlan {
    let mut p = FaultPlan::empty(seed);
    p.push(
        at(15),
        FaultKind::LossBurst {
            node: t.mobile,
            ber: 1e-3,
            duration: secs(30),
        },
    );
    p.push(
        at(70),
        FaultKind::LossBurst {
            node: t.mobile,
            ber: 1e-3,
            duration: secs(25),
        },
    );
    p
}

fn squeeze_cycle(seed: u64, t: &Topo) -> FaultPlan {
    let mut p = FaultPlan::empty(seed);
    p.push(
        at(20),
        FaultKind::BandwidthSqueeze {
            node: t.seed,
            factor: 0.05,
            duration: secs(25),
        },
    );
    p.push(
        at(60),
        FaultKind::BandwidthSqueeze {
            node: t.leeches[1],
            factor: 0.02,
            duration: secs(20),
        },
    );
    p
}

fn crash_restart(seed: u64, t: &Topo) -> FaultPlan {
    let mut p = FaultPlan::empty(seed);
    p.push(
        at(25),
        FaultKind::PeerCrash {
            node: t.leeches[2],
            downtime: secs(20),
        },
    );
    p.push(
        at(70),
        FaultKind::PeerCrash {
            node: t.mobile,
            downtime: secs(15),
        },
    );
    p
}

fn triple_threat(seed: u64, t: &Topo) -> FaultPlan {
    // The ISSUE's worst case: tracker outage, seed black hole, and a
    // mobile hand-off all open at once.
    let mut p = FaultPlan::empty(seed);
    p.push(at(20), FaultKind::TrackerOutage { duration: secs(40) });
    p.push(
        at(25),
        FaultKind::LinkBlackhole {
            node: t.seed,
            duration: secs(25),
        },
    );
    p.push(at(35), FaultKind::AddressChurn { node: t.mobile });
    p
}

fn rolling_handoffs(seed: u64, t: &Topo) -> FaultPlan {
    // Hand-offs before, during, and after a tracker outage: the churn at
    // 60 s strands the mobile leech peerless until announces get through.
    let mut p = FaultPlan::empty(seed);
    p.push(at(30), FaultKind::TrackerOutage { duration: secs(50) });
    for s in [40, 60, 100] {
        p.push(at(s), FaultKind::AddressChurn { node: t.mobile });
    }
    p
}

fn full_chaos(seed: u64, t: &Topo) -> FaultPlan {
    // A seeded random plan on top of the hand-written ones. Crashes are
    // left out: the generator may crash the only seed, and a seedless
    // swarm can plateau without violating liveness.
    let mut cfg = FaultPlanConfig::new(secs(120), t.all.clone());
    cfg.events = 8;
    cfg.tracker_outages = true;
    cfg.crashes = false;
    FaultPlan::generate(seed, &cfg)
}

/// Every named scenario, in registry order.
pub static SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "tracker-blackout",
        what: "two tracker outages back to back",
        build: tracker_blackout,
    },
    Scenario {
        name: "blackhole-storm",
        what: "seed black-holed, then two leeches overlapping",
        build: blackhole_storm,
    },
    Scenario {
        name: "churn-wave",
        what: "three mobile hand-offs in quick succession",
        build: churn_wave,
    },
    Scenario {
        name: "loss-siege",
        what: "repeated loss bursts on the wireless leech",
        build: loss_siege,
    },
    Scenario {
        name: "squeeze-cycle",
        what: "bandwidth squeezes on seed then leech",
        build: squeeze_cycle,
    },
    Scenario {
        name: "crash-restart",
        what: "leech and mobile crash and restart",
        build: crash_restart,
    },
    Scenario {
        name: "triple-threat",
        what: "tracker outage + seed black hole + hand-off at once",
        build: triple_threat,
    },
    Scenario {
        name: "rolling-handoffs",
        what: "hand-offs before, during, and after a tracker outage",
        build: rolling_handoffs,
    },
    Scenario {
        name: "full-chaos",
        what: "seeded random 8-event plan (no crashes)",
        build: full_chaos,
    },
];

/// One scenario's deterministic observables.
#[derive(Clone, Debug, PartialEq)]
pub struct SoakOutcome {
    /// `FaultPlan::render()` of the injected schedule.
    pub schedule: String,
    /// Fault actions (window begins/ends) actually applied.
    pub applied: usize,
    /// Invariant passes completed with zero violations.
    pub checks: u64,
    /// Seconds from each window's close to fresh swarm-wide progress,
    /// in window-close order.
    pub time_to_recover: Vec<f64>,
    /// Final completion fraction of every leech.
    pub progress: Vec<f64>,
}

/// When each fault window closes (its effect is fully lifted).
fn window_end(at: SimTime, kind: &FaultKind) -> SimTime {
    at + match *kind {
        FaultKind::LossBurst { duration, .. }
        | FaultKind::LinkBlackhole { duration, .. }
        | FaultKind::TrackerOutage { duration }
        | FaultKind::BandwidthSqueeze { duration, .. } => duration,
        FaultKind::AddressChurn { .. } => SimDuration::ZERO,
        FaultKind::PeerCrash { downtime, .. } => downtime,
    }
}

/// Every alive, incomplete leech has made piece progress past `base`.
fn healed(w: &FlowWorld, leeches: &[TaskKey], base: &[f64]) -> bool {
    leeches.iter().zip(base).all(|(&t, &b)| {
        let p = w.progress_fraction(t);
        p >= 1.0 || !w.node_alive(w.task_node(t)) || p > b
    })
}

/// Runs one scenario and measures recovery after every fault window.
///
/// # Panics
///
/// Panics when an invariant is violated or a window's recovery exceeds
/// `params.recovery_timeout` — the soak asserts liveness.
pub fn run_soak_scenario(
    scenario: &Scenario,
    params: &SoakParams,
    metrics: &MetricsHandle,
    seed: u64,
) -> SoakOutcome {
    let torrent = synthetic_torrent("soak.bin", params.piece_length, params.file_size, seed);
    let mut w = FlowWorld::new(
        FlowConfig {
            stall_timeout: (params.stall_timeout > SimDuration::ZERO)
                .then_some(params.stall_timeout),
            ..FlowConfig::default()
        },
        seed,
    );
    w.set_metrics(metrics);
    let armed = || {
        Box::new(|| ClientConfig {
            resilience: ResilienceConfig::armed(),
            ..ClientConfig::default()
        }) as Box<dyn Fn() -> ClientConfig>
    };

    let seed_node = w.add_node(Access::campus());
    let mut seed_spec = TaskSpec::default_client(seed_node, torrent, true);
    seed_spec.make_config = armed();
    w.add_task(seed_spec);

    let mut leeches: Vec<TaskKey> = Vec::new();
    let mut fixed_nodes = [NodeId(0); 3];
    for (i, slot) in fixed_nodes.iter_mut().enumerate() {
        let n = w.add_node(Access::residential());
        *slot = NodeId(n as u32);
        let mut spec = TaskSpec::default_client(n, torrent, false);
        spec.make_config = armed();
        spec.start_fraction = Some(params.head_start * (i + 1) as f64 / 4.0);
        leeches.push(w.add_task(spec));
    }
    let mobile_node = w.add_node(Access::Wireless {
        capacity: 2_000_000.0 / 8.0,
    });
    let mut mobile_spec = TaskSpec::default_client(mobile_node, torrent, false);
    mobile_spec.make_config = armed();
    leeches.push(w.add_task(mobile_spec));

    let topo = Topo {
        seed: NodeId(seed_node as u32),
        leeches: fixed_nodes,
        mobile: NodeId(mobile_node as u32),
        all: (0..w.node_count()).map(|n| NodeId(n as u32)).collect(),
    };
    let plan = (scenario.build)(seed, &topo);
    let schedule = plan.render();
    let mut ends: Vec<SimTime> = plan
        .events()
        .iter()
        .map(|e| window_end(e.at, &e.kind))
        .collect();
    ends.sort_unstable();
    ends.dedup();

    let mut inj = FaultInjector::new(&plan);
    let mut ck = InvariantChecker::new();
    w.start();

    // The injector is polled on every tick (fault times are exact); the
    // full invariant pass is throttled to once per virtual second.
    let mut next_check = SimTime::ZERO;
    let mut drive = |w: &mut FlowWorld| {
        inj.poll(w);
        if w.now() >= next_check {
            ck.check_flow(w);
            next_check = w.now() + SimDuration::from_secs(1);
        }
    };

    let mut time_to_recover = Vec::with_capacity(ends.len());
    for (i, &end) in ends.iter().enumerate() {
        w.run_driven_until(end, &mut drive, |_| false);
        let base: Vec<f64> = leeches.iter().map(|&t| w.progress_fraction(t)).collect();
        let deadline = end + params.recovery_timeout;
        let recovered = healed(&w, &leeches, &base)
            || w.run_driven_until(deadline, &mut drive, |w| healed(w, &leeches, &base));
        assert!(
            recovered,
            "soak '{}' window {i} (closed {end}) did not recover within {}",
            scenario.name, params.recovery_timeout
        );
        time_to_recover.push(w.now().saturating_since(end).as_secs_f64());
    }
    let drain = w.now() + params.tail;
    w.run_driven_until(drain, &mut drive, |_| false);

    SoakOutcome {
        schedule,
        applied: inj.applied(),
        checks: ck.checks(),
        time_to_recover,
        progress: leeches.iter().map(|&t| w.progress_fraction(t)).collect(),
    }
}

/// One scenario's sweep result.
#[derive(Clone, Debug, PartialEq)]
pub struct SoakPoint {
    /// Scenario name.
    pub name: &'static str,
    /// One-line description.
    pub what: &'static str,
    /// Run-0 outcome (deterministic; pinned by tests).
    pub outcome: SoakOutcome,
    /// Median time-to-recover over run 0's windows, seconds.
    pub median_ttr: f64,
    /// Worst time-to-recover over run 0's windows, seconds.
    pub worst_ttr: f64,
}

/// Median of a non-empty slice (mean of the middle pair when even).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

fn run_soak_impl(
    params: &SoakParams,
    metrics: &MetricsHandle,
    base_seed: u64,
    threads: Option<usize>,
) -> Vec<SoakPoint> {
    let idxs: Vec<usize> = (0..SCENARIOS.len()).collect();
    let mut runner = SweepRunner::new("soak", base_seed).with_metrics(metrics);
    if let Some(n) = threads {
        runner = runner.with_threads(n);
    }
    let cells = runner.run(&idxs, params.runs as usize, |&i, cell| {
        // Rough virtual length: the plans close within ~150 s and each
        // window's recovery is bounded by the budget.
        cell.add_virtual_secs(300.0);
        let handle = if cell.point == 0 && cell.run == 0 {
            metrics.clone()
        } else {
            MetricsHandle::disabled()
        };
        run_soak_scenario(&SCENARIOS[i], params, &handle, cell.seed)
    });
    let points: Vec<SoakPoint> = idxs
        .iter()
        .zip(cells)
        .map(|(&i, mut runs)| {
            let outcome = runs.swap_remove(0);
            SoakPoint {
                name: SCENARIOS[i].name,
                what: SCENARIOS[i].what,
                median_ttr: median(&outcome.time_to_recover),
                worst_ttr: outcome
                    .time_to_recover
                    .iter()
                    .fold(0.0f64, |a, &b| a.max(b)),
                outcome,
            }
        })
        .collect();
    // The recovery series and per-scenario gauges are written after the
    // sweep from the deterministic run-0 outcomes — a single sequential
    // writer, so worker count cannot reorder them. The series timestamp
    // is a running window index (scenario windows are not on a shared
    // clock); the value is seconds from window close to recovery.
    let series = metrics.series("soak.time_to_recover");
    let mut k = 0u64;
    for p in &points {
        for &ttr in &p.outcome.time_to_recover {
            series.record(SimTime::ZERO + SimDuration::from_secs(k), ttr);
            k += 1;
        }
        let g = |suffix: &str| metrics.gauge(&format!("soak.{}.{suffix}", p.name));
        g("windows").set(p.outcome.time_to_recover.len() as f64);
        g("median_ttr_s").set(p.median_ttr);
        g("worst_ttr_s").set(p.worst_ttr);
        g("invariant_checks").set(p.outcome.checks as f64);
    }
    points
}

/// Runs every scenario on an explicit metrics handle and base seed.
pub fn run_soak_with(
    params: &SoakParams,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> Vec<SoakPoint> {
    run_soak_impl(params, metrics, base_seed, None)
}

/// [`run_soak_with`] pinned to a worker count (the determinism tests
/// compare 1 vs 4 without touching `WP2P_THREADS`).
pub fn run_soak_with_threads(
    params: &SoakParams,
    metrics: &MetricsHandle,
    base_seed: u64,
    threads: usize,
) -> Vec<SoakPoint> {
    run_soak_impl(params, metrics, base_seed, Some(threads))
}

/// Renders the soak. Every row is a scenario that *passed* its liveness
/// assertions — a failure panics before the table exists.
pub fn soak_table(points: &[SoakPoint]) -> Table {
    let mut t = Table::new("Chaos soak: recovery after every fault window");
    t.headers([
        "scenario",
        "what",
        "windows",
        "faults",
        "checks",
        "median ttr",
        "worst ttr",
        "done",
        "mean progress",
    ]);
    for p in points {
        let done = p.outcome.progress.iter().filter(|&&f| f >= 1.0).count();
        let mean = p.outcome.progress.iter().sum::<f64>() / p.outcome.progress.len().max(1) as f64;
        t.row([
            p.name.to_string(),
            p.what.to_string(),
            p.outcome.time_to_recover.len().to_string(),
            p.outcome.applied.to_string(),
            p.outcome.checks.to_string(),
            format!("{:.1}s", p.median_ttr),
            format!("{:.1}s", p.worst_ttr),
            format!("{done}/{}", p.outcome.progress.len()),
            pct(mean),
        ]);
    }
    t.note("liveness is asserted: any window that fails to recover panics the run");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SoakParams {
        SoakParams::quick()
            .file_size(8 * 1024 * 1024)
            .recovery_timeout(SimDuration::from_secs(240))
            .tail(SimDuration::from_secs(10))
    }

    #[test]
    fn params_round_trip() {
        let p = SoakParams::paper();
        let back = SoakParams::from_params(&p.to_params());
        assert_eq!(p.file_size, back.file_size);
        assert_eq!(p.recovery_timeout, back.recovery_timeout);
        assert_eq!(p.stall_timeout, back.stall_timeout);
        assert_eq!(p.runs, back.runs);
    }

    #[test]
    fn scenario_names_are_unique_and_plans_deterministic() {
        let topo = Topo {
            seed: NodeId(0),
            leeches: [NodeId(1), NodeId(2), NodeId(3)],
            mobile: NodeId(4),
            all: (0..5).map(NodeId).collect(),
        };
        let mut names = std::collections::BTreeSet::new();
        for s in SCENARIOS {
            assert!(names.insert(s.name), "duplicate scenario {}", s.name);
            let a = (s.build)(7, &topo).render();
            let b = (s.build)(7, &topo).render();
            assert_eq!(a, b, "{} plan not deterministic", s.name);
            assert!(!(s.build)(7, &topo).events().is_empty());
        }
        assert!(SCENARIOS.len() >= 8, "the soak needs 8+ named scenarios");
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn triple_threat_scenario_heals() {
        let s = SCENARIOS
            .iter()
            .find(|s| s.name == "triple-threat")
            .expect("registered");
        let out = run_soak_scenario(s, &tiny(), &MetricsHandle::disabled(), SOAK_SEED);
        assert_eq!(out.time_to_recover.len(), 3);
        assert!(out.applied > 0);
        assert!(out.checks > 0);
        assert!(out.time_to_recover.iter().all(|&t| t.is_finite() && t >= 0.0));
    }

    #[test]
    fn soak_replays_byte_identically_for_same_seed() {
        let s = &SCENARIOS[1]; // blackhole-storm
        let a = run_soak_scenario(s, &tiny(), &MetricsHandle::disabled(), 9);
        let b = run_soak_scenario(s, &tiny(), &MetricsHandle::disabled(), 9);
        assert_eq!(a, b, "soak scenario diverged between replays");
    }

    #[test]
    fn soak_sweep_deterministic_across_worker_counts() {
        let params = tiny();
        let a = run_soak_with_threads(&params, &MetricsHandle::disabled(), SOAK_SEED, 1);
        let b = run_soak_with_threads(&params, &MetricsHandle::disabled(), SOAK_SEED, 4);
        assert_eq!(a, b, "soak sweep must not depend on worker count");
        assert_eq!(a.len(), SCENARIOS.len());
        assert!(a
            .iter()
            .all(|p| p.outcome.time_to_recover.iter().all(|&t| t.is_finite())));
    }
}
