//! **Figure 8 — wP2P evaluation: AM, identity retention, LIHD** (paper
//! §5.2.1–5.2.2).
//!
//! * Panel (a): download throughput vs. BER for the default client vs.
//!   wP2P with **Age-based Manipulation**, in the paper's scenario — two
//!   leeches holding complementary halves exchange bi-directionally over
//!   wireless legs (the seed has been removed). AM's decoupled pure ACKs
//!   survive bit errors that kill piggybacked ones, protecting young
//!   windows (paper: ≈ +20%).
//! * Panel (b): downloaded size over time for two mobile clients under
//!   1-minute hand-offs — one default (fresh peer-id each re-initiation),
//!   one with **identity retention**. Retention preserves tit-for-tat
//!   standing, so the retaining client pulls ahead (paper: ≈ +100 MB
//!   after 50 minutes of a 688 MB download).
//! * Panel (c): download throughput vs. wireless capacity for the default
//!   client (no upload cap) vs. **LIHD** — on a shared channel the
//!   default's uploads strangle its own downloads; LIHD finds a better
//!   operating point (paper: up to +70% at 200 KB/s).

use super::common::{populate_swarm, synthetic_torrent, SwarmSetup};
use super::params::{builder_setters, ExperimentParams};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskSpec};
use crate::harness::{run_seed, SweepRunner};
use crate::packet::{PacketConfig, PacketWorld};
use crate::report::{kbps, Table};
use bittorrent::client::ClientConfig;
use bittorrent::metainfo::Metainfo;
use bittorrent::progress::TorrentProgress;
use metrics::handle::MetricsHandle;
use metrics::stats::{RunSummary, TimeSeries};
use simnet::mobility::MobilityProcess;
use simnet::time::{SimDuration, SimTime};
use simnet::wireless::WirelessConfig;
use wp2p::am::AmConfig;
use wp2p::config::WP2pConfig;
use wp2p::ia::LihdConfig;

/// Base seed of the Fig. 8(a) sweep.
pub const FIG8A_SEED: u64 = 0xF8A;
/// Seed of the Fig. 8(b) trace.
pub const FIG8B_SEED: u64 = 0x8B;
/// Base seed of the Fig. 8(c) sweep.
pub const FIG8C_SEED: u64 = 0xF8C;

// ---------------------------------------------------------------------
// Fig. 8(a): Age-based Manipulation
// ---------------------------------------------------------------------

/// Parameters for Fig. 8(a).
#[derive(Clone, Debug)]
pub struct Fig8aParams {
    /// BERs to sweep (paper: 1e-6 … 1.5e-5).
    pub bers: Vec<f64>,
    /// File size (each leech starts with half; paper: 100 MB).
    pub file_size: u64,
    /// Piece length.
    pub piece_length: u32,
    /// Wireless capacity per leech, bytes/second.
    pub channel_bytes_per_sec: u64,
    /// Measurement duration.
    pub duration: SimDuration,
    /// Runs to average (paper: 5).
    pub runs: u64,
}

impl Fig8aParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        Fig8aParams {
            bers: vec![1.0e-6, 1.5e-5],
            file_size: 4 * 1024 * 1024,
            piece_length: 64 * 1024,
            channel_bytes_per_sec: 60_000,
            duration: SimDuration::from_secs(60),
            runs: 2,
        }
    }

    /// Paper-scale preset.
    pub fn paper() -> Self {
        Fig8aParams {
            bers: vec![1.0e-6, 5.0e-6, 1.0e-5, 1.5e-5],
            file_size: 32 * 1024 * 1024,
            piece_length: 256 * 1024,
            channel_bytes_per_sec: 60_000,
            duration: SimDuration::from_secs(300),
            runs: 5,
        }
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_list("bers", &self.bers);
        p.set_num("file_size", self.file_size as f64);
        p.set_num("piece_length", self.piece_length as f64);
        p.set_num("channel_bytes_per_sec", self.channel_bytes_per_sec as f64);
        p.set_dur("duration_s", self.duration);
        p.set_num("runs", self.runs as f64);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        Fig8aParams {
            bers: p.list_or("bers", &base.bers),
            file_size: p.u64_or("file_size", base.file_size),
            piece_length: p.u32_or("piece_length", base.piece_length),
            channel_bytes_per_sec: p.u64_or("channel_bytes_per_sec", base.channel_bytes_per_sec),
            duration: p.dur_or("duration_s", base.duration),
            runs: p.u64_or("runs", base.runs),
        }
    }
}

builder_setters!(Fig8aParams {
    bers: Vec<f64>,
    file_size: u64,
    piece_length: u32,
    channel_bytes_per_sec: u64,
    duration: SimDuration,
    runs: u64,
});

/// One Fig. 8(a) point.
#[derive(Clone, Copy, Debug)]
pub struct Fig8aPoint {
    /// The bit-error rate.
    pub ber: f64,
    /// Default-client download throughput (bytes/s).
    pub default: RunSummary,
    /// wP2P (AM) download throughput (bytes/s).
    pub wp2p: RunSummary,
}

pub(crate) fn run_8a_once(
    params: &Fig8aParams,
    am: Option<AmConfig>,
    ber: f64,
    metrics: &MetricsHandle,
    seed: u64,
) -> f64 {
    let meta = Metainfo::synthetic("fig8a.bin", "tr", params.piece_length, params.file_size, 1);
    let ih = meta.info.info_hash();
    let mut cfg = PacketConfig::default();
    cfg.tcp.recv_window = 32 * 1024;
    let mut w = PacketWorld::new(cfg, seed);
    w.set_metrics(metrics);
    // Like the paper's ns-2 emulation, the channel is a bandwidth/BER
    // model without per-frame MAC cost, so AM's extra 40-byte pure ACKs
    // cost their byte share (~3%), not a frame-time multiple.
    let wlan = WirelessConfig {
        bandwidth_bps: params.channel_bytes_per_sec * 8,
        prop_delay: SimDuration::from_millis(2),
        queue_frames: 100,
        ber,
        per_frame_overhead: SimDuration::ZERO,
    };
    let l1 = w.add_node(Some(wlan));
    let l2 = w.add_node(Some(wlan));
    if let Some(cfg) = am {
        w.set_am(l1, cfg);
        w.set_am(l2, cfg);
    }
    // Complementary halves, as after the removed seed.
    let mk = |even: bool| -> TorrentProgress {
        let mut p =
            TorrentProgress::with_block_size(meta.info.piece_length, meta.info.length, 16 * 1024);
        for piece in 0..meta.info.num_pieces() {
            if (piece % 2 == 0) == even {
                p.mark_piece_complete(piece);
            }
        }
        p
    };
    w.add_client_with_progress(l1, ClientConfig::default(), ih, mk(true));
    w.add_client_with_progress(l2, ClientConfig::default(), ih, mk(false));
    w.start_clients();
    w.run_until(SimTime::ZERO + params.duration, |_| {});
    let total = w.delivered_down(l1) + w.delivered_down(l2);
    total as f64 / params.duration.as_secs_f64() / 2.0
}

/// [`run_fig8a`] with metrics: the first cell's default-client world is
/// wired into `metrics` (per-connection TCP and AM instruments included).
pub fn run_fig8a_with(
    params: &Fig8aParams,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> Vec<Fig8aPoint> {
    let dur = params.duration.as_secs_f64();
    let cells = SweepRunner::new("fig8a", base_seed)
        .with_metrics(metrics)
        .run(&params.bers, params.runs as usize, |&ber, cell| {
            cell.add_virtual_secs(2.0 * dur);
            let handle = if cell.point == 0 && cell.run == 0 {
                metrics.clone()
            } else {
                MetricsHandle::disabled()
            };
            (
                run_8a_once(params, None, ber, &handle, cell.run_seed),
                run_8a_once(
                    params,
                    Some(AmConfig::default()),
                    ber,
                    &MetricsHandle::disabled(),
                    cell.run_seed,
                ),
            )
        });
    params
        .bers
        .iter()
        .zip(cells)
        .map(|(&ber, runs)| {
            let default: Vec<f64> = runs.iter().map(|&(d, _)| d).collect();
            let wp2p: Vec<f64> = runs.iter().map(|&(_, w)| w).collect();
            Fig8aPoint {
                ber,
                default: RunSummary::of(&default),
                wp2p: RunSummary::of(&wp2p),
            }
        })
        .collect()
}

/// Runs one Fig. 8(a)-style point with an explicit AM configuration
/// (`None` = default client); averaged over the params' run count. Used
/// by the AM component ablation. Seeds match [`run_fig8a`]'s.
pub fn run_fig8a_point(params: &Fig8aParams, am: Option<AmConfig>, ber: f64) -> f64 {
    let disabled = MetricsHandle::disabled();
    let xs: Vec<f64> = (0..params.runs)
        .map(|r| run_8a_once(params, am, ber, &disabled, run_seed(FIG8A_SEED, r as usize)))
        .collect();
    metrics::stats::mean(&xs)
}

/// Renders Fig. 8(a).
pub fn fig8a_table(points: &[Fig8aPoint]) -> Table {
    let mut t = Table::new(
        "Figure 8(a): Throughput (KBps) vs BER — default vs wP2P (age-based manipulation)",
    );
    t.headers(["BER", "default", "wP2P", "gain"]);
    for p in points {
        t.row([
            format!("{:.1e}", p.ber),
            kbps(p.default.mean),
            kbps(p.wp2p.mean),
            format!(
                "{:+.0}%",
                (p.wp2p.mean / p.default.mean.max(1.0) - 1.0) * 100.0
            ),
        ]);
    }
    t.note("paper: wP2P ≈ +20% at every BER");
    t.note(
        "reproduction: parity (±3%). With standards-compliant cumulative ACKs, \
the next reverse-path data segment re-delivers lost ACK information within \
tens of ms, so decoupling prevents no stalls; see EXPERIMENTS.md",
    );
    t
}

// ---------------------------------------------------------------------
// Fig. 8(b): identity retention
// ---------------------------------------------------------------------

/// Parameters for Fig. 8(b).
#[derive(Clone, Debug)]
pub struct Fig8bParams {
    /// File size (paper: 688 MB Fedora image).
    pub file_size: u64,
    /// Piece length (paper default: 256 KB).
    pub piece_length: u32,
    /// Background swarm.
    pub swarm: SwarmSetup,
    /// Hand-off period (paper: 1 minute).
    pub mobility_period: SimDuration,
    /// Hand-off outage.
    pub outage: SimDuration,
    /// Run length (paper: 50 minutes).
    pub duration: SimDuration,
    /// Wireless capacity of the two measured clients.
    pub wireless_capacity: f64,
}

impl Fig8bParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        Fig8bParams {
            file_size: 64 * 1024 * 1024,
            piece_length: 256 * 1024,
            swarm: SwarmSetup {
                seeds: 3,
                seed_access: Access::Wired {
                    up: 100_000.0,
                    down: 500_000.0,
                },
                leeches: 8,
                leech_access: Access::residential(),
                leech_head_start: 0.5,
            },
            mobility_period: SimDuration::from_secs(60),
            outage: SimDuration::from_secs(5),
            duration: SimDuration::from_mins(12),
            wireless_capacity: 250_000.0,
        }
    }

    /// Paper-scale preset: 688 MB, 200-peer swarm, 50 minutes.
    pub fn paper() -> Self {
        Fig8bParams {
            file_size: 688 * 1024 * 1024,
            piece_length: 256 * 1024,
            swarm: SwarmSetup {
                seeds: 20,
                seed_access: Access::Wired {
                    up: 150_000.0,
                    down: 500_000.0,
                },
                leeches: 180,
                leech_access: Access::residential(),
                leech_head_start: 0.5,
            },
            mobility_period: SimDuration::from_secs(60),
            outage: SimDuration::from_secs(5),
            duration: SimDuration::from_mins(50),
            wireless_capacity: 500_000.0,
        }
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_num("file_size", self.file_size as f64);
        p.set_num("piece_length", self.piece_length as f64);
        p.set_swarm("swarm", &self.swarm);
        p.set_dur("mobility_period_s", self.mobility_period);
        p.set_dur("outage_s", self.outage);
        p.set_dur("duration_s", self.duration);
        p.set_num("wireless_capacity", self.wireless_capacity);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        Fig8bParams {
            file_size: p.u64_or("file_size", base.file_size),
            piece_length: p.u32_or("piece_length", base.piece_length),
            swarm: p.swarm_or("swarm", &base.swarm),
            mobility_period: p.dur_or("mobility_period_s", base.mobility_period),
            outage: p.dur_or("outage_s", base.outage),
            duration: p.dur_or("duration_s", base.duration),
            wireless_capacity: p.num_or("wireless_capacity", base.wireless_capacity),
        }
    }
}

builder_setters!(Fig8bParams {
    file_size: u64,
    piece_length: u32,
    swarm: SwarmSetup,
    mobility_period: SimDuration,
    outage: SimDuration,
    duration: SimDuration,
    wireless_capacity: f64,
});

/// Result of Fig. 8(b): series for both clients (single typical run, both
/// in the same swarm, as in the paper).
#[derive(Clone, Debug)]
pub struct Fig8bResult {
    /// Downloaded-bytes series of the default client.
    pub default_series: TimeSeries,
    /// Downloaded-bytes series of the retaining client.
    pub wp2p_series: TimeSeries,
    /// Final bytes of the default client.
    pub default_bytes: u64,
    /// Final bytes of the retaining client.
    pub wp2p_bytes: u64,
}

/// [`run_fig8b`] with metrics: the (single) trace world is wired into
/// `metrics`, so the hand-off and retention dynamics are observable.
pub fn run_fig8b_with(params: &Fig8bParams, metrics: &MetricsHandle, seed: u64) -> Fig8bResult {
    let dur = params.duration.as_secs_f64();
    SweepRunner::new("fig8b", seed)
        .with_metrics(metrics)
        .run(&[()], 1, |_, cell| {
            cell.add_virtual_secs(dur);
            run_fig8b_once(params, metrics, seed)
        })
        .into_iter()
        .flatten()
        .next()
        .expect("fig8b trace")
}

fn run_fig8b_once(params: &Fig8bParams, metrics: &MetricsHandle, seed: u64) -> Fig8bResult {
    let mut cfg = FlowConfig::default();
    cfg.tracker.announce_interval = SimDuration::from_mins(5);
    let mut w = FlowWorld::new(cfg, seed);
    w.set_metrics(metrics);
    let torrent = synthetic_torrent(
        "Fedora-7-KDE-Live-i686.iso",
        params.piece_length,
        params.file_size,
        seed,
    );
    populate_swarm(&mut w, torrent, &params.swarm);
    let add_mobile = |w: &mut FlowWorld, retention: bool| {
        let node = w.add_node(Access::Wireless {
            capacity: params.wireless_capacity,
        });
        let task = w.add_task(TaskSpec {
            node,
            torrent,
            start_complete: false,
            start_fraction: None,
            start_at: SimTime::ZERO,
            make_config: Box::new(ClientConfig::default),
            wp2p: if retention {
                WP2pConfig::identity_only()
            } else {
                WP2pConfig::default_client()
            },
        });
        w.set_mobility(
            node,
            MobilityProcess::with_jitter(params.mobility_period, params.outage, 0.05),
        );
        task
    };
    let default_task = add_mobile(&mut w, false);
    let wp2p_task = add_mobile(&mut w, true);
    w.start();
    w.run_for(params.duration, |_| {});
    Fig8bResult {
        default_series: w.download_series(default_task).clone(),
        wp2p_series: w.download_series(wp2p_task).clone(),
        default_bytes: w.downloaded_bytes(default_task),
        wp2p_bytes: w.downloaded_bytes(wp2p_task),
    }
}

/// Renders Fig. 8(b).
pub fn fig8b_table(result: &Fig8bResult, samples: usize) -> Table {
    let mut t = Table::new(
        "Figure 8(b): Downloaded size (MB) vs time — identity retention under 1-min hand-offs",
    );
    t.headers(["t (min)", "default", "wP2P"]);
    let horizon = result
        .wp2p_series
        .points()
        .last()
        .map(|&(t, _)| t)
        .unwrap_or(SimTime::ZERO);
    for i in 1..=samples {
        let ts = SimTime::from_micros(horizon.as_micros() * i as u64 / samples as u64);
        t.row([
            format!("{:.1}", ts.as_secs_f64() / 60.0),
            crate::report::mb(result.default_series.value_at(ts).unwrap_or(0.0) as u64),
            crate::report::mb(result.wp2p_series.value_at(ts).unwrap_or(0.0) as u64),
        ]);
    }
    t.note("paper: wP2P leads throughout, ≈ +100 MB after 50 min of a 688 MB download");
    t
}

// ---------------------------------------------------------------------
// Fig. 8(c): LIHD
// ---------------------------------------------------------------------

/// Parameters for Fig. 8(c).
#[derive(Clone, Debug)]
pub struct Fig8cParams {
    /// Wireless capacities to sweep, bytes/second (paper: 50–200 KBps).
    pub capacities: Vec<f64>,
    /// File size.
    pub file_size: u64,
    /// Piece length.
    pub piece_length: u32,
    /// Background swarm (leech-heavy so the client's upload is in demand).
    pub swarm: SwarmSetup,
    /// Measurement duration.
    pub duration: SimDuration,
    /// Runs to average (paper: 10).
    pub runs: u64,
}

impl Fig8cParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        Fig8cParams {
            capacities: vec![40.0 * 1024.0, 80.0 * 1024.0, 120.0 * 1024.0],
            file_size: 96 * 1024 * 1024,
            piece_length: 256 * 1024,
            swarm: SwarmSetup {
                seeds: 2,
                seed_access: Access::Wired {
                    up: 200_000.0,
                    down: 500_000.0,
                },
                leeches: 10,
                leech_access: Access::residential(),
                leech_head_start: 0.5,
            },
            duration: SimDuration::from_mins(8),
            runs: 2,
        }
    }

    /// Paper-scale preset.
    pub fn paper() -> Self {
        Fig8cParams {
            capacities: vec![40.0 * 1024.0, 60.0 * 1024.0, 80.0 * 1024.0, 120.0 * 1024.0],
            file_size: 192 * 1024 * 1024,
            piece_length: 256 * 1024,
            swarm: SwarmSetup {
                seeds: 3,
                seed_access: Access::Wired {
                    up: 200_000.0,
                    down: 500_000.0,
                },
                leeches: 16,
                leech_access: Access::residential(),
                leech_head_start: 0.5,
            },
            duration: SimDuration::from_mins(15),
            runs: 10,
        }
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_list("capacities", &self.capacities);
        p.set_num("file_size", self.file_size as f64);
        p.set_num("piece_length", self.piece_length as f64);
        p.set_swarm("swarm", &self.swarm);
        p.set_dur("duration_s", self.duration);
        p.set_num("runs", self.runs as f64);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        Fig8cParams {
            capacities: p.list_or("capacities", &base.capacities),
            file_size: p.u64_or("file_size", base.file_size),
            piece_length: p.u32_or("piece_length", base.piece_length),
            swarm: p.swarm_or("swarm", &base.swarm),
            duration: p.dur_or("duration_s", base.duration),
            runs: p.u64_or("runs", base.runs),
        }
    }
}

builder_setters!(Fig8cParams {
    capacities: Vec<f64>,
    file_size: u64,
    piece_length: u32,
    swarm: SwarmSetup,
    duration: SimDuration,
    runs: u64,
});

/// One Fig. 8(c) point.
#[derive(Clone, Copy, Debug)]
pub struct Fig8cPoint {
    /// Wireless capacity, bytes/second.
    pub capacity: f64,
    /// Default-client download throughput.
    pub default: RunSummary,
    /// wP2P (LIHD) download throughput.
    pub wp2p: RunSummary,
}

fn run_8c_once(
    params: &Fig8cParams,
    lihd: bool,
    capacity: f64,
    metrics: &MetricsHandle,
    seed: u64,
) -> f64 {
    let mut w = FlowWorld::new(FlowConfig::default(), seed);
    w.set_metrics(metrics);
    let torrent = synthetic_torrent("fig8c.bin", params.piece_length, params.file_size, seed);
    populate_swarm(&mut w, torrent, &params.swarm);
    let node = w.add_node(Access::Wireless { capacity });
    let task = w.add_task(TaskSpec {
        node,
        torrent,
        start_complete: false,
        start_fraction: None,
        start_at: SimTime::ZERO,
        make_config: Box::new(ClientConfig::default),
        wp2p: if lihd {
            WP2pConfig {
                lihd: Some(LihdConfig::paper(capacity)),
                ..WP2pConfig::default_client()
            }
        } else {
            WP2pConfig::default_client()
        },
    });
    w.start();
    w.run_for(params.duration, |_| {});
    w.downloaded_bytes(task) as f64 / params.duration.as_secs_f64()
}

/// [`run_fig8c`] with metrics: the first cell's LIHD world is wired into
/// `metrics` (per-client LIHD step instruments included).
pub fn run_fig8c_with(
    params: &Fig8cParams,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> Vec<Fig8cPoint> {
    let dur = params.duration.as_secs_f64();
    let cells = SweepRunner::new("fig8c", base_seed)
        .with_metrics(metrics)
        .run(
            &params.capacities,
            params.runs as usize,
            |&capacity, cell| {
                cell.add_virtual_secs(2.0 * dur);
                let handle = if cell.point == 0 && cell.run == 0 {
                    metrics.clone()
                } else {
                    MetricsHandle::disabled()
                };
                (
                    run_8c_once(
                        params,
                        false,
                        capacity,
                        &MetricsHandle::disabled(),
                        cell.run_seed,
                    ),
                    run_8c_once(params, true, capacity, &handle, cell.run_seed),
                )
            },
        );
    params
        .capacities
        .iter()
        .zip(cells)
        .map(|(&capacity, runs)| {
            let default: Vec<f64> = runs.iter().map(|&(d, _)| d).collect();
            let wp2p: Vec<f64> = runs.iter().map(|&(_, w)| w).collect();
            Fig8cPoint {
                capacity,
                default: RunSummary::of(&default),
                wp2p: RunSummary::of(&wp2p),
            }
        })
        .collect()
}

/// Renders Fig. 8(c).
pub fn fig8c_table(points: &[Fig8cPoint]) -> Table {
    let mut t = Table::new(
        "Figure 8(c): Download throughput (KBps) vs wireless capacity — default vs wP2P (LIHD)",
    );
    t.headers(["capacity (KBps)", "default", "wP2P", "gain"]);
    for p in points {
        t.row([
            format!("{:.0}", p.capacity / 1024.0),
            kbps(p.default.mean),
            kbps(p.wp2p.mean),
            format!(
                "{:+.0}%",
                (p.wp2p.mean / p.default.mean.max(1.0) - 1.0) * 100.0
            ),
        ]);
    }
    t.note("paper: the gap widens with capacity, up to ≈ +70% at 200 KBps");
    t.note(
        "reproduction: LIHD wins wherever the channel binds (our closed swarm \
supplies ≈ 70 KBps, so the sweep is scaled down); the gap is largest at the \
tightest channels rather than the widest — see EXPERIMENTS.md",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8a_am_is_at_parity_with_default() {
        // Reproduction finding (see EXPERIMENTS.md): AM is throughput-
        // neutral under standards-compliant cumulative ACKs. This test
        // pins that down both ways — no large harm, no phantom gain —
        // within the noise of two quick runs.
        let params = Fig8aParams::quick();
        let pts = run_fig8a_with(&params, &MetricsHandle::disabled(), FIG8A_SEED);
        for p in &pts {
            let ratio = p.wp2p.mean / p.default.mean.max(1.0);
            assert!(
                (0.75..1.35).contains(&ratio),
                "AM should be near parity at BER {}: ratio {ratio:.2}",
                p.ber
            );
        }
    }

    #[test]
    fn fig8b_retention_downloads_at_least_as_much() {
        let p = Fig8bParams::quick()
            .duration(SimDuration::from_mins(8))
            .file_size(48 * 1024 * 1024);
        let r = run_fig8b_with(&p, &MetricsHandle::disabled(), 5);
        assert!(r.wp2p_bytes > 0 && r.default_bytes > 0);
        assert!(
            r.wp2p_bytes as f64 >= 0.9 * r.default_bytes as f64,
            "retention should not trail: wp2p={} default={}",
            r.wp2p_bytes,
            r.default_bytes
        );
        assert!(fig8b_table(&r, 6).len() == 6);
    }

    #[test]
    fn fig8b_quick_preset_retention_leads_throughout() {
        // Seeded regression pinning the EXPERIMENTS.md quick-preset shape
        // with the exact seed the bench driver uses (0x8B): the retaining
        // client leads at every sampled time and finishes the 12-minute
        // window far ahead (reported: 46.1 vs 25.6 MB, +80%).
        let p = Fig8bParams::quick();
        let r = run_fig8b_with(&p, &MetricsHandle::disabled(), FIG8B_SEED);
        for q in 1..=4u64 {
            let ts = SimTime::from_micros(p.duration.as_micros() * q / 4);
            let d = r.default_series.value_at(ts).unwrap_or(0.0);
            let w = r.wp2p_series.value_at(ts).unwrap_or(0.0);
            assert!(
                w >= d,
                "retention trails at {:.1} min: wp2p={w:.0} default={d:.0}",
                ts.as_secs_f64() / 60.0
            );
        }
        assert!(
            r.wp2p_bytes as f64 >= 1.3 * r.default_bytes as f64,
            "final lead collapsed: wp2p={} default={}",
            r.wp2p_bytes,
            r.default_bytes
        );
    }

    #[test]
    fn fig8c_lihd_beats_default_where_the_channel_binds() {
        let params = Fig8cParams::quick();
        let pts = run_fig8c_with(&params, &MetricsHandle::disabled(), FIG8C_SEED);
        // The tightest channel of the sweep is contention-bound: LIHD's
        // upload cap buys real download capacity there.
        let tight = &pts[0];
        assert!(
            tight.wp2p.mean > 1.1 * tight.default.mean,
            "LIHD should clearly win at {} KBps: wp2p={} default={}",
            tight.capacity / 1024.0,
            tight.wp2p.mean,
            tight.default.mean
        );
    }

    #[test]
    fn fig8_params_round_trip() {
        let a = Fig8aParams::paper();
        let a2 = Fig8aParams::from_params(
            &ExperimentParams::from_json(&a.to_params().to_json()).unwrap(),
        );
        assert_eq!(format!("{a:?}"), format!("{a2:?}"));
        let b = Fig8bParams::paper();
        let b2 = Fig8bParams::from_params(
            &ExperimentParams::from_json(&b.to_params().to_json()).unwrap(),
        );
        assert_eq!(format!("{b:?}"), format!("{b2:?}"));
        let c = Fig8cParams::paper();
        let c2 = Fig8cParams::from_params(
            &ExperimentParams::from_json(&c.to_params().to_json()).unwrap(),
        );
        assert_eq!(format!("{c:?}"), format!("{c2:?}"));
    }
}
