//! Shared scaffolding for the per-figure experiment drivers.

use crate::flow::{Access, FlowWorld, TaskKey, TaskSpec, TorrentSpec};
use bittorrent::client::ClientConfig;
use bittorrent::metainfo::Metainfo;
use bittorrent::strategy::PopulationMix;

/// Builds a [`TorrentSpec`] for a synthetic file. Flow transfers use
/// 64 KB blocks: coarse enough to bound event counts at swarm scale, fine
/// enough that one block transfers in well under a rechoke interval on a
/// slow uplink share (a block that outlives its unchoke grant gets
/// re-transferred and poisons throughput).
pub fn synthetic_torrent(name: &str, piece_length: u32, length: u64, seed: u64) -> TorrentSpec {
    let meta = Metainfo::synthetic(name, "sim-tracker", piece_length, length, seed);
    TorrentSpec::from_metainfo(&meta, (64 * 1024).min(piece_length))
}

/// Background swarm description: seeds and leeches on wired access.
#[derive(Clone, Copy, Debug)]
pub struct SwarmSetup {
    /// Number of seeds.
    pub seeds: usize,
    /// Access of each seed.
    pub seed_access: Access,
    /// Number of leeches.
    pub leeches: usize,
    /// Access of each leech.
    pub leech_access: Access,
    /// Maximum initial completion of background leeches. Leeches start at
    /// an even spread of fractions in `[0, leech_head_start]`, giving the
    /// swarm the completion diversity real swarms have (mutual interest,
    /// active tit-for-tat). Zero = everyone starts empty.
    pub leech_head_start: f64,
}

impl SwarmSetup {
    /// A small healthy swarm for quick runs.
    pub fn small() -> Self {
        SwarmSetup {
            seeds: 1,
            seed_access: Access::campus(),
            leeches: 4,
            leech_access: Access::residential(),
            leech_head_start: 0.0,
        }
    }
}

/// Populates `world` with the background swarm for `torrent`; returns
/// `(seed_tasks, leech_tasks)`.
pub fn populate_swarm(
    world: &mut FlowWorld,
    torrent: TorrentSpec,
    setup: &SwarmSetup,
) -> (Vec<TaskKey>, Vec<TaskKey>) {
    let mut seeds = Vec::new();
    let mut leeches = Vec::new();
    for _ in 0..setup.seeds {
        let n = world.add_node(setup.seed_access);
        seeds.push(world.add_task(TaskSpec::default_client(n, torrent, true)));
    }
    for i in 0..setup.leeches {
        let n = world.add_node(setup.leech_access);
        let mut spec = TaskSpec::default_client(n, torrent, false);
        if setup.leech_head_start > 0.0 {
            spec.start_fraction =
                Some(setup.leech_head_start * (i + 1) as f64 / (setup.leeches + 1) as f64);
        }
        leeches.push(world.add_task(spec));
    }
    (seeds, leeches)
}

/// [`populate_swarm`], but background leeches draw their client strategy
/// from `mix` (seeds stay honest — a free-riding seed is a no-op and
/// would only dilute the mix over the peers that matter). Leech `i` gets
/// `mix.build(mix_seed, i)`, so the assignment depends only on
/// `(mix, mix_seed, i)`: the same leech keeps its class across share
/// points when the sweep reuses `mix_seed`, which is what makes
/// fraction sweeps nested rather than resampled.
pub fn populate_swarm_with_mix(
    world: &mut FlowWorld,
    torrent: TorrentSpec,
    setup: &SwarmSetup,
    mix: PopulationMix,
    mix_seed: u64,
) -> (Vec<TaskKey>, Vec<TaskKey>) {
    let mut seeds = Vec::new();
    let mut leeches = Vec::new();
    for _ in 0..setup.seeds {
        let n = world.add_node(setup.seed_access);
        seeds.push(world.add_task(TaskSpec::default_client(n, torrent, true)));
    }
    for i in 0..setup.leeches {
        let n = world.add_node(setup.leech_access);
        let mut spec = TaskSpec::default_client(n, torrent, false);
        if setup.leech_head_start > 0.0 {
            spec.start_fraction =
                Some(setup.leech_head_start * (i + 1) as f64 / (setup.leeches + 1) as f64);
        }
        spec.make_config = Box::new(move || ClientConfig {
            strategy: mix.build(mix_seed, i as u64),
            ..ClientConfig::default()
        });
        leeches.push(world.add_task(spec));
    }
    (seeds, leeches)
}
