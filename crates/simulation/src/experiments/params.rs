//! Untyped experiment parameters with a JSON round-trip.
//!
//! Every figure's typed `FigXxParams` struct converts to and from
//! [`ExperimentParams`] — a flat, ordered key → [`ParamValue`] map — so
//! the [`super::registry`] can expose one uniform parameter surface
//! (`default_params()` / `paper_params()` / `run(&params, …)`) and
//! callers can serialise a configuration, edit it, and feed it back.
//!
//! Conventions used by the typed conversions:
//!
//! * durations are stored in **seconds** under keys ending `_s`;
//! * sizes and counts are stored as JSON numbers (all values in this
//!   codebase are well under the 2^53 exact-integer limit);
//! * an [`Access`] is a string, `"wired:<up>:<down>"` or
//!   `"wireless:<capacity>"` (bytes/second, shortest-round-trip floats);
//! * a [`SwarmSetup`] spreads over five keys under a prefix
//!   (`<prefix>.seeds`, `.seed_access`, `.leeches`, `.leech_access`,
//!   `.head_start`);
//! * an optional duration list (Fig. 4(a)'s hand-off periods) encodes
//!   `None` as a negative number.

use super::common::SwarmSetup;
use crate::flow::Access;
use metrics::json::Json;
use simnet::time::SimDuration;
use std::collections::BTreeMap;

/// One untyped parameter value.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamValue {
    /// A boolean flag.
    Bool(bool),
    /// A number (integers are exact up to 2^53).
    Num(f64),
    /// A string (used for access-network encodings).
    Str(String),
    /// A list of numbers (sweep axes).
    List(Vec<f64>),
}

/// A flat, ordered parameter map with a JSON round-trip.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExperimentParams {
    values: BTreeMap<String, ParamValue>,
}

impl ExperimentParams {
    /// An empty parameter map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sets a boolean.
    pub fn set_bool(&mut self, key: &str, v: bool) {
        self.values.insert(key.to_string(), ParamValue::Bool(v));
    }

    /// Sets a number.
    pub fn set_num(&mut self, key: &str, v: f64) {
        self.values.insert(key.to_string(), ParamValue::Num(v));
    }

    /// Sets a string.
    pub fn set_str(&mut self, key: &str, v: &str) {
        self.values
            .insert(key.to_string(), ParamValue::Str(v.to_string()));
    }

    /// Sets a number list.
    pub fn set_list(&mut self, key: &str, v: &[f64]) {
        self.values
            .insert(key.to_string(), ParamValue::List(v.to_vec()));
    }

    /// Sets a duration, stored in seconds.
    pub fn set_dur(&mut self, key: &str, v: SimDuration) {
        self.set_num(key, v.as_secs_f64());
    }

    /// Sets an access network (`"wired:<up>:<down>"` /
    /// `"wireless:<capacity>"`).
    pub fn set_access(&mut self, key: &str, access: Access) {
        let s = match access {
            Access::Wired { up, down } => format!("wired:{up:?}:{down:?}"),
            Access::Wireless { capacity } => format!("wireless:{capacity:?}"),
        };
        self.values.insert(key.to_string(), ParamValue::Str(s));
    }

    /// Sets a swarm setup under `<prefix>.…` keys.
    pub fn set_swarm(&mut self, prefix: &str, swarm: &SwarmSetup) {
        self.set_num(&format!("{prefix}.seeds"), swarm.seeds as f64);
        self.set_access(&format!("{prefix}.seed_access"), swarm.seed_access);
        self.set_num(&format!("{prefix}.leeches"), swarm.leeches as f64);
        self.set_access(&format!("{prefix}.leech_access"), swarm.leech_access);
        self.set_num(&format!("{prefix}.head_start"), swarm.leech_head_start);
    }

    /// Boolean at `key`, or `default` when absent or mistyped.
    pub fn bool_or(&self, key: &str, default: bool) -> bool {
        match self.values.get(key) {
            Some(ParamValue::Bool(v)) => *v,
            _ => default,
        }
    }

    /// Number at `key`, or `default`.
    pub fn num_or(&self, key: &str, default: f64) -> f64 {
        match self.values.get(key) {
            Some(ParamValue::Num(v)) => *v,
            _ => default,
        }
    }

    /// Number at `key` as u64 (sizes, run counts), or `default`.
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.num_or(key, default as f64) as u64
    }

    /// Number at `key` as usize, or `default`.
    pub fn usize_or(&self, key: &str, default: usize) -> usize {
        self.num_or(key, default as f64) as usize
    }

    /// Number at `key` as u32 (piece lengths), or `default`.
    pub fn u32_or(&self, key: &str, default: u32) -> u32 {
        self.num_or(key, default as f64) as u32
    }

    /// String at `key`, or `default`.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        match self.values.get(key) {
            Some(ParamValue::Str(v)) => v,
            _ => default,
        }
    }

    /// Number list at `key`, or a copy of `default`.
    pub fn list_or(&self, key: &str, default: &[f64]) -> Vec<f64> {
        match self.values.get(key) {
            Some(ParamValue::List(v)) => v.clone(),
            _ => default.to_vec(),
        }
    }

    /// Duration at `key` (stored as seconds), or `default`.
    pub fn dur_or(&self, key: &str, default: SimDuration) -> SimDuration {
        match self.values.get(key) {
            Some(ParamValue::Num(v)) if *v >= 0.0 => SimDuration::from_secs_f64(*v),
            _ => default,
        }
    }

    /// Access network at `key`, or `default` when absent or unparsable.
    pub fn access_or(&self, key: &str, default: Access) -> Access {
        let Some(ParamValue::Str(s)) = self.values.get(key) else {
            return default;
        };
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            ["wired", up, down] => match (up.parse(), down.parse()) {
                (Ok(up), Ok(down)) => Access::Wired { up, down },
                _ => default,
            },
            ["wireless", cap] => match cap.parse() {
                Ok(capacity) => Access::Wireless { capacity },
                _ => default,
            },
            _ => default,
        }
    }

    /// Swarm setup under `<prefix>.…`, with `default` filling gaps.
    pub fn swarm_or(&self, prefix: &str, default: &SwarmSetup) -> SwarmSetup {
        SwarmSetup {
            seeds: self.usize_or(&format!("{prefix}.seeds"), default.seeds),
            seed_access: self.access_or(&format!("{prefix}.seed_access"), default.seed_access),
            leeches: self.usize_or(&format!("{prefix}.leeches"), default.leeches),
            leech_access: self.access_or(&format!("{prefix}.leech_access"), default.leech_access),
            leech_head_start: self
                .num_or(&format!("{prefix}.head_start"), default.leech_head_start),
        }
    }

    /// Renders the map as a JSON object with sorted keys.
    pub fn to_json(&self) -> String {
        let mut obj = BTreeMap::new();
        for (k, v) in &self.values {
            let jv = match v {
                ParamValue::Bool(b) => Json::Bool(*b),
                ParamValue::Num(n) => Json::Num(*n),
                ParamValue::Str(s) => Json::Str(s.clone()),
                ParamValue::List(xs) => Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect()),
            };
            obj.insert(k.clone(), jv);
        }
        Json::Obj(obj).render()
    }

    /// Parses a JSON object produced by [`Self::to_json`] (or edited by
    /// hand). Rejects nested objects, nulls, and non-numeric arrays.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let json = Json::parse(text)?;
        let Json::Obj(obj) = json else {
            return Err("experiment params must be a JSON object".to_string());
        };
        let mut out = ExperimentParams::new();
        for (k, v) in obj {
            let pv = match v {
                Json::Bool(b) => ParamValue::Bool(b),
                Json::Num(n) => ParamValue::Num(n),
                Json::Str(s) => ParamValue::Str(s),
                Json::Arr(xs) => {
                    let mut nums = Vec::with_capacity(xs.len());
                    for x in xs {
                        match x {
                            Json::Num(n) => nums.push(n),
                            other => {
                                return Err(format!(
                                    "param {k:?}: list elements must be numbers, got {other:?}"
                                ))
                            }
                        }
                    }
                    ParamValue::List(nums)
                }
                other => return Err(format!("param {k:?}: unsupported value {other:?}")),
            };
            out.values.insert(k, pv);
        }
        Ok(out)
    }
}

/// Encodes optional hand-off periods (Fig. 4(a)) as a number list:
/// seconds, with `None` (stationary baseline) as `-1`.
pub fn encode_opt_periods(periods: &[Option<SimDuration>]) -> Vec<f64> {
    periods
        .iter()
        .map(|p| p.map(|d| d.as_secs_f64()).unwrap_or(-1.0))
        .collect()
}

/// Inverse of [`encode_opt_periods`].
pub fn decode_opt_periods(xs: &[f64]) -> Vec<Option<SimDuration>> {
    xs.iter()
        .map(|&x| (x >= 0.0).then(|| SimDuration::from_secs_f64(x)))
        .collect()
}

/// Encodes durations as seconds.
pub fn encode_periods(periods: &[SimDuration]) -> Vec<f64> {
    periods.iter().map(|p| p.as_secs_f64()).collect()
}

/// Inverse of [`encode_periods`].
pub fn decode_periods(xs: &[f64]) -> Vec<SimDuration> {
    xs.iter().map(|&x| SimDuration::from_secs_f64(x)).collect()
}

/// Generates consuming builder-style setters, one per listed field, so
/// every `FigXxParams` offers the same `Params::quick().field(v)…`
/// construction surface.
macro_rules! builder_setters {
    ($ty:ty { $($(#[$meta:meta])* $field:ident : $fty:ty),* $(,)? }) => {
        impl $ty {
            $(
                $(#[$meta])*
                #[doc = concat!("Builder-style setter for `", stringify!($field), "`.")]
                #[must_use]
                pub fn $field(mut self, $field: $fty) -> Self {
                    self.$field = $field;
                    self
                }
            )*
        }
    };
}
pub(crate) use builder_setters;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut p = ExperimentParams::new();
        p.set_bool("delayed_ack", true);
        p.set_num("runs", 5.0);
        p.set_list("bers", &[0.0, 1.0e-5, 2.0e-5]);
        p.set_dur("duration_s", SimDuration::from_secs(120));
        p.set_access(
            "client_access",
            Access::Wireless {
                capacity: 200_000.0,
            },
        );
        let text = p.to_json();
        let q = ExperimentParams::from_json(&text).expect("round trip parses");
        assert_eq!(p, q);
        assert_eq!(text, q.to_json(), "render must be stable");
    }

    #[test]
    fn typed_getters_fall_back_to_defaults() {
        let p = ExperimentParams::new();
        assert_eq!(p.u64_or("runs", 3), 3);
        assert!(p.bool_or("x", true));
        assert_eq!(
            p.dur_or("d", SimDuration::from_secs(9)).as_micros(),
            9_000_000
        );
        let a = p.access_or("a", Access::residential());
        assert!(matches!(a, Access::Wired { .. }));
    }

    #[test]
    fn access_and_swarm_round_trip() {
        let swarm = SwarmSetup {
            seeds: 2,
            seed_access: Access::Wired {
                up: 30_000.0,
                down: 500_000.0,
            },
            leeches: 16,
            leech_access: Access::residential(),
            leech_head_start: 0.6,
        };
        let mut p = ExperimentParams::new();
        p.set_swarm("swarm", &swarm);
        let back = p.swarm_or("swarm", &SwarmSetup::small());
        assert_eq!(back.seeds, 2);
        assert_eq!(back.leeches, 16);
        assert!((back.leech_head_start - 0.6).abs() < 1e-12);
        match back.seed_access {
            Access::Wired { up, down } => {
                assert_eq!(up, 30_000.0);
                assert_eq!(down, 500_000.0);
            }
            _ => panic!("seed access should stay wired"),
        }
    }

    #[test]
    fn optional_periods_encode_none_as_negative() {
        let periods = vec![None, Some(SimDuration::from_secs(120))];
        let xs = encode_opt_periods(&periods);
        assert_eq!(xs, vec![-1.0, 120.0]);
        assert_eq!(decode_opt_periods(&xs), periods);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(ExperimentParams::from_json("[1, 2]").is_err());
        assert!(ExperimentParams::from_json("{\"a\": {\"b\": 1}}").is_err());
        assert!(ExperimentParams::from_json("{\"a\": [\"x\"]}").is_err());
    }
}
