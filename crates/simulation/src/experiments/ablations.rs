//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * [`ablate_mf_schedules`] — the altruism/playability trade-off across
//!   mobility-aware fetching schedules (paper §4.3 describes a family;
//!   the evaluation only runs `p_r = downloaded fraction`).
//! * [`ablate_am`] — Age-based Manipulation decomposed: ACK decoupling
//!   and DUPACK thinning separately and together (paper Fig. 5 bundles
//!   them).
//! * [`ablate_lihd`] — LIHD's α/β sensitivity (the paper fixes
//!   α = β = 10 KB/s).
//! * [`ablate_seed_lihd`] — the paper's §4.2 **future work**: LIHD used
//!   by a mobile *seed* so its uploads do not strangle the host's
//!   foreground (non-P2P) downloads.

use super::common::{populate_swarm, synthetic_torrent, SwarmSetup};
use super::fig8::{Fig8aParams, FIG8A_SEED};
use super::playability::{run_playability_with, PlayabilityParams};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskSpec};
use crate::harness::SweepRunner;
use crate::report::{kbps, Table};
use bittorrent::client::ClientConfig;
use metrics::handle::MetricsHandle;
use simnet::time::{SimDuration, SimTime};
use wp2p::am::AmConfig;
use wp2p::config::WP2pConfig;
use wp2p::ia::{Lihd, LihdConfig};
use wp2p::ma::PrSchedule;

// ---------------------------------------------------------------------
// Mobility-aware fetching schedules
// ---------------------------------------------------------------------

/// Result of one MF-schedule arm.
#[derive(Clone, Debug)]
pub struct MfArm {
    /// Schedule label.
    pub label: String,
    /// Playable fraction at 50% downloaded.
    pub playable_at_half: f64,
    /// Playable fraction at 80% downloaded.
    pub playable_at_80: f64,
}

/// Compares the playability of every [`PrSchedule`] plus rarest-first.
pub fn ablate_mf_schedules(params: &PlayabilityParams, seed: u64) -> Vec<MfArm> {
    let arms: Vec<(String, Option<PrSchedule>)> = vec![
        ("rarest-first (default)".into(), None),
        (
            "p_r = downloaded fraction".into(),
            Some(PrSchedule::DownloadedFraction),
        ),
        (
            "exponential, p0=0.2".into(),
            Some(PrSchedule::ExponentialInProgress { p0: 0.2 }),
        ),
        (
            "stability, p0=0.2 tau=5min".into(),
            Some(PrSchedule::Stability {
                p0: 0.2,
                tau: SimDuration::from_mins(5),
            }),
        ),
        ("fixed p_r=0.5".into(), Some(PrSchedule::Fixed(0.5))),
        (
            "pure sequential (p_r=0)".into(),
            Some(PrSchedule::Fixed(0.0)),
        ),
    ];
    arms.into_iter()
        .map(|(label, schedule)| {
            let curve = run_playability_with(params, schedule, &MetricsHandle::disabled(), seed);
            MfArm {
                label,
                playable_at_half: curve.playable_at(0.5),
                playable_at_80: curve.playable_at(0.8),
            }
        })
        .collect()
}

/// Renders the MF-schedule ablation.
pub fn mf_table(arms: &[MfArm]) -> Table {
    let mut t = Table::new("Ablation: mobility-aware fetching schedules (playable %)");
    t.headers(["schedule", "@50% downloaded", "@80% downloaded"]);
    for a in arms {
        t.row([
            a.label.clone(),
            format!("{:.1}", a.playable_at_half * 100.0),
            format!("{:.1}", a.playable_at_80 * 100.0),
        ]);
    }
    t.note("sequential maximises the prefix; rarest-first minimises it; the adaptive schedules sit between");
    t
}

// ---------------------------------------------------------------------
// AM decomposition
// ---------------------------------------------------------------------

/// Result of one AM-component arm.
#[derive(Clone, Debug)]
pub struct AmArm {
    /// Component combination label.
    pub label: String,
    /// Mean throughput at the swept BERs (bytes/s), index-aligned with
    /// the params' BER list.
    pub throughput: Vec<f64>,
}

/// Decomposes AM: none / decouple-only / thin-only / both.
pub fn ablate_am(params: &Fig8aParams) -> Vec<AmArm> {
    // "Decouple only": never classify MATURE for thinning by using an
    // enormous drop modulo. "Thin only": γ = 0 so the connection is never
    // YOUNG.
    let arms: Vec<(String, Option<AmConfig>)> = vec![
        ("default (no AM)".into(), None),
        (
            "decouple only".into(),
            Some(AmConfig {
                dupack_drop_modulo: u64::MAX,
                ..AmConfig::default()
            }),
        ),
        (
            "thin DUPACKs only".into(),
            Some(AmConfig {
                gamma_bytes: 0,
                ..AmConfig::default()
            }),
        ),
        ("full AM".into(), Some(AmConfig::default())),
    ];
    // Reuse the Fig. 8(a) machinery over a flattened (arm × BER) point
    // list so every cell of the decomposition runs in parallel. The base
    // seed matches fig8a's and the seed is point-invariant, so each
    // (arm, BER, run) cell sees exactly the random stream the figure and
    // [`super::fig8::run_fig8a_point`] would give it.
    let point_list: Vec<(usize, f64)> = (0..arms.len())
        .flat_map(|a| params.bers.iter().map(move |&ber| (a, ber)))
        .collect();
    let cells = SweepRunner::new("ablate_am", FIG8A_SEED).run(
        &point_list,
        params.runs as usize,
        |&(a, ber), cell| {
            super::fig8::run_8a_once(
                params,
                arms[a].1,
                ber,
                &MetricsHandle::disabled(),
                cell.run_seed,
            )
        },
    );
    let means: Vec<f64> = cells.iter().map(|xs| metrics::stats::mean(xs)).collect();
    arms.into_iter()
        .enumerate()
        .map(|(a, (label, _))| AmArm {
            label,
            throughput: means[a * params.bers.len()..(a + 1) * params.bers.len()].to_vec(),
        })
        .collect()
}

/// Renders the AM decomposition.
pub fn am_table(params: &Fig8aParams, arms: &[AmArm]) -> Table {
    let mut t = Table::new("Ablation: age-based manipulation components (KBps)");
    let mut headers = vec!["arm".to_string()];
    headers.extend(params.bers.iter().map(|b| format!("BER {b:.0e}")));
    t.headers(headers);
    for a in arms {
        let mut row = vec![a.label.clone()];
        row.extend(a.throughput.iter().map(|&x| kbps(x)));
        t.row(row);
    }
    t
}

// ---------------------------------------------------------------------
// Delayed ACKs × piggybacking
// ---------------------------------------------------------------------

/// One row of the delayed-ACK ablation.
#[derive(Clone, Debug)]
pub struct DelackArm {
    /// Whether RFC 1122 delayed ACKs were enabled.
    pub delayed_ack: bool,
    /// Points `(ber, bi_throughput, uni_throughput)`.
    pub points: Vec<(f64, f64, f64)>,
}

/// Re-runs the Fig. 2(a) sweep with delayed ACKs on and off. Delayed ACKs
/// concentrate more acknowledgement information per (pure) ACK on the
/// uni-directional path, so losing one costs more — a paper-era TCP knob
/// that interacts directly with the piggybacking story.
pub fn ablate_delack(base: &super::fig2::Fig2aParams) -> Vec<DelackArm> {
    [false, true]
        .into_iter()
        .map(|delayed_ack| {
            let params = super::fig2::Fig2aParams {
                delayed_ack,
                ..base.clone()
            };
            let points = super::fig2::run_fig2a_with(
                &params,
                &MetricsHandle::disabled(),
                super::fig2::FIG2A_SEED,
            )
            .into_iter()
            .map(|p| (p.ber, p.bi.mean, p.uni.mean))
            .collect();
            DelackArm {
                delayed_ack,
                points,
            }
        })
        .collect()
}

/// Renders the delayed-ACK ablation.
pub fn delack_table(arms: &[DelackArm]) -> Table {
    let mut t = Table::new("Ablation: delayed ACKs × ACK piggybacking (KBps)");
    t.headers(["arm", "BER", "bi-TCP", "uni-TCP"]);
    for a in arms {
        for &(ber, bi, uni) in &a.points {
            t.row([
                if a.delayed_ack {
                    "delack on"
                } else {
                    "delack off"
                }
                .to_string(),
                format!("{ber:.0e}"),
                kbps(bi),
                kbps(uni),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// LIHD sensitivity
// ---------------------------------------------------------------------

/// One LIHD (α, β) point.
#[derive(Clone, Copy, Debug)]
pub struct LihdArm {
    /// Linear increase step, bytes/second.
    pub alpha: f64,
    /// Decrease unit, bytes/second.
    pub beta: f64,
    /// Download throughput achieved (bytes/s).
    pub download: f64,
}

/// Sweeps LIHD's α/β on a binding wireless channel.
pub fn ablate_lihd(capacity: f64, duration: SimDuration, seed: u64) -> Vec<LihdArm> {
    let steps = [2.0 * 1024.0, 10.0 * 1024.0, 40.0 * 1024.0];
    let grid: Vec<(f64, f64)> = steps
        .iter()
        .flat_map(|&alpha| steps.iter().map(move |&beta| (alpha, beta)))
        .collect();
    // Every (α, β) cell runs the same world (same seed), so the grid
    // differs only in the controller's knobs.
    SweepRunner::new("ablate_lihd", seed)
        .run(&grid, 1, |&(alpha, beta), cell| {
            cell.add_virtual_secs(duration.as_secs_f64());
            let mut w = FlowWorld::new(FlowConfig::default(), seed);
            let torrent = synthetic_torrent("lihd.bin", 256 * 1024, 96 * 1024 * 1024, seed);
            populate_swarm(
                &mut w,
                torrent,
                &SwarmSetup {
                    seeds: 2,
                    seed_access: Access::Wired {
                        up: 200_000.0,
                        down: 500_000.0,
                    },
                    leeches: 10,
                    leech_access: Access::residential(),
                    leech_head_start: 0.5,
                },
            );
            let node = w.add_node(Access::Wireless { capacity });
            let task = w.add_task(TaskSpec {
                node,
                torrent,
                start_complete: false,
                start_fraction: None,
                start_at: SimTime::ZERO,
                make_config: Box::new(ClientConfig::default),
                wp2p: WP2pConfig {
                    lihd: Some(LihdConfig {
                        alpha,
                        beta,
                        ..LihdConfig::paper(capacity)
                    }),
                    ..WP2pConfig::default_client()
                },
            });
            w.start();
            w.run_for(duration, |_| {});
            LihdArm {
                alpha,
                beta,
                download: w.downloaded_bytes(task) as f64 / duration.as_secs_f64(),
            }
        })
        .into_iter()
        .flatten()
        .collect()
}

/// Renders the LIHD sensitivity grid.
pub fn lihd_table(arms: &[LihdArm]) -> Table {
    let mut t = Table::new("Ablation: LIHD α/β sensitivity (download KBps)");
    t.headers(["alpha (KBps)", "beta (KBps)", "download"]);
    for a in arms {
        t.row([
            format!("{:.0}", a.alpha / 1024.0),
            format!("{:.0}", a.beta / 1024.0),
            kbps(a.download),
        ]);
    }
    t.note("paper fixes alpha = beta = 10 KBps; the controller is not very sensitive");
    t
}

// ---------------------------------------------------------------------
// Seed-mode LIHD (paper future work)
// ---------------------------------------------------------------------

/// Result of one seed-LIHD arm.
#[derive(Clone, Copy, Debug)]
pub struct SeedLihdArm {
    /// Whether seed-mode LIHD controlled the seeding task's uploads.
    pub lihd: bool,
    /// The foreground (non-P2P) download throughput, bytes/s.
    pub foreground_download: f64,
    /// The seeding task's upload throughput, bytes/s.
    pub seed_upload: f64,
}

/// The §4.2 future-work experiment: a wireless host seeds a popular
/// torrent while also running a foreground (non-P2P) download. Without
/// control, seeding uploads contend the foreground away; with seed-mode
/// LIHD fed by the *foreground's* rate, the controller pulls uploads back
/// until the foreground recovers.
pub fn ablate_seed_lihd(capacity: f64, duration: SimDuration, seed: u64) -> Vec<SeedLihdArm> {
    // Two paired arms (same seed), run in parallel as sweep points.
    SweepRunner::new("ablate_seed_lihd", seed)
        .run(&[false, true], 1, |&lihd, _cell| {
            // Short tracker interval so the swarm discovers the (listening)
            // seed within the run; seeds never dial.
            let mut cfg = FlowConfig::default();
            cfg.tracker.announce_interval = SimDuration::from_secs(120);
            let mut w = FlowWorld::new(cfg, seed);
            // Swarm 1: the torrent our host seeds, with hungry leeches.
            let p2p = synthetic_torrent("seeded.bin", 256 * 1024, 256 * 1024 * 1024, seed);
            // Our host is the swarm's primary source: the one other seed
            // is slow, so leeches lean on us and our uploads really do
            // contend with the foreground.
            populate_swarm(
                &mut w,
                p2p,
                &SwarmSetup {
                    seeds: 1,
                    seed_access: Access::Wired {
                        up: 20_000.0,
                        down: 500_000.0,
                    },
                    leeches: 12,
                    leech_access: Access::residential(),
                    leech_head_start: 0.2,
                },
            );
            // Swarm 2: a stand-in for the foreground download — a private
            // single-seed torrent only our host leeches, upload disabled
            // (a plain HTTP-like fetch).
            let web = synthetic_torrent("foreground.bin", 256 * 1024, 512 * 1024 * 1024, seed ^ 1);
            let web_server = w.add_node(Access::Wired {
                up: 2_000_000.0,
                down: 2_000_000.0,
            });
            w.add_task(TaskSpec::default_client(web_server, web, true));

            let host = w.add_node(Access::Wireless { capacity });
            let seeding_task = w.add_task(TaskSpec {
                node: host,
                torrent: p2p,
                start_complete: true,
                start_fraction: None,
                start_at: SimTime::ZERO,
                make_config: Box::new(ClientConfig::default),
                wp2p: WP2pConfig::default_client(),
            });
            let foreground_task = w.add_task(TaskSpec {
                node: host,
                torrent: web,
                start_complete: false,
                start_fraction: None,
                start_at: SimTime::ZERO,
                make_config: Box::new(|| ClientConfig {
                    allow_upload: false,
                    ..ClientConfig::default()
                }),
                wp2p: WP2pConfig::default_client(),
            });
            w.start();
            // Warm-up: let the swarm discover the seed before measuring.
            let warmup = SimDuration::from_secs(180);
            w.run_for(warmup, |_| {});
            let fg0 = w.downloaded_bytes(foreground_task);
            let up0 = w.delivered_up_bytes(seeding_task);

            // Seed-mode LIHD: same controller, but its feedback signal is
            // the FOREGROUND application's download rate.
            let mut controller = lihd.then(|| Lihd::new(LihdConfig::paper(capacity)));
            let mut last_fg = 0u64;
            let mut last_t = SimTime::ZERO;
            w.run_until(SimTime::ZERO + duration, |w| {
                let Some(ctl) = controller.as_mut() else {
                    return;
                };
                let now = w.now();
                if !ctl.due(now) {
                    return;
                }
                let fg = w.downloaded_bytes(foreground_task);
                let dt = now.saturating_since(last_t).as_secs_f64().max(1e-9);
                let fg_rate = (fg - last_fg) as f64 / dt;
                last_fg = fg;
                last_t = now;
                let u = ctl.update(now, fg_rate);
                w.set_task_upload_limit(seeding_task, Some(u));
            });
            let secs = duration.as_secs_f64();
            SeedLihdArm {
                lihd,
                foreground_download: (w.downloaded_bytes(foreground_task) - fg0) as f64 / secs,
                seed_upload: (w.delivered_up_bytes(seeding_task) - up0) as f64 / secs,
            }
        })
        .into_iter()
        .flatten()
        .collect()
}

/// Renders the seed-LIHD experiment.
pub fn seed_lihd_table(arms: &[SeedLihdArm]) -> Table {
    let mut t =
        Table::new("Future work (paper §4.2): seed-mode LIHD protecting a foreground download");
    t.headers(["arm", "foreground download (KBps)", "seed upload (KBps)"]);
    for a in arms {
        t.row([
            if a.lihd {
                "wP2P (seed LIHD)".to_string()
            } else {
                "default (uncapped seed)".to_string()
            },
            kbps(a.foreground_download),
            kbps(a.seed_upload),
        ]);
    }
    t.note("LIHD trades seeding throughput for the foreground's recovery");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mf_schedules_order_sensibly() {
        let params = PlayabilityParams {
            file_size: 4 * 1024 * 1024,
            piece_length: 128 * 1024,
            runs: 2,
            grid: 10,
            timeout: SimDuration::from_mins(8),
            ..PlayabilityParams::quick_5mb()
        };
        let arms = ablate_mf_schedules(&params, 0xAB1);
        let get = |label: &str| {
            arms.iter()
                .find(|a| a.label.starts_with(label))
                .unwrap()
                .playable_at_half
        };
        let rarest = get("rarest-first");
        let sequential = get("pure sequential");
        let adaptive = get("p_r = downloaded");
        assert!(
            sequential > adaptive && adaptive > rarest,
            "expected sequential ({sequential:.2}) > adaptive ({adaptive:.2}) > rarest ({rarest:.2})"
        );
        assert!(!mf_table(&arms).is_empty());
    }

    #[test]
    fn seed_lihd_protects_foreground() {
        let arms = ablate_seed_lihd(100_000.0, SimDuration::from_mins(6), 0x5EED);
        let base = arms.iter().find(|a| !a.lihd).unwrap();
        let ctl = arms.iter().find(|a| a.lihd).unwrap();
        assert!(
            ctl.foreground_download > base.foreground_download,
            "seed LIHD should restore the foreground: {} vs {}",
            ctl.foreground_download,
            base.foreground_download
        );
        assert!(base.seed_upload > 0.0 && ctl.seed_upload > 0.0);
    }

    #[test]
    fn lihd_grid_runs() {
        let arms = ablate_lihd(60_000.0, SimDuration::from_mins(3), 0x11D);
        assert_eq!(arms.len(), 9);
        assert!(arms.iter().all(|a| a.download > 0.0));
    }
}
