//! Snapshot-powered diagnostics — the consumers of
//! [`FlowWorld::save`]/[`FlowWorld::restore`]
//! (`all_figures -- --snapshot | --bisect <seed> | --search <seed>`).
//!
//! Three tools ride on the deterministic world snapshot:
//!
//! 1. **Fault-window bisection** ([`bisect_fault_windows`]) — a single
//!    forward pass snapshots the world just before each fault window
//!    begins; when the run ends unhealthy, a binary search over those
//!    snapshots finds the first window whose inclusion breaks the
//!    invariant in `O(log n)` restores instead of `O(n)` full re-runs.
//! 2. **Warm-started sweeps** ([`warm_fork_sweep`]) — one swarm is run
//!    to convergence once, then forked into N fault arms by restoring
//!    the same blob, so a sweep over fault variants pays for warm-up
//!    exactly once.
//! 3. **Seeded fault-schedule search** ([`search_fault_schedules`]) —
//!    a mutation loop over [`FaultPlan`] windows steered toward
//!    invariant *near-misses* (longest time-to-recover, deepest event
//!    queue), evaluating every candidate from the shared warm snapshot.
//!    Every decision comes from one seeded RNG, so the emitted
//!    `(seed, schedule)` artifact replays bit-for-bit.
//!
//! Instrumentation: `snapshot.bytes` (size of the last blob taken) and
//! `search.near_miss` (candidates that came within 10 % of the best
//! score without beating it) land in the metrics registry.

use super::common::synthetic_torrent;
use crate::flow::{Access, FlowConfig, FlowWorld, TaskSpec};
use crate::report::Table;
use bittorrent::client::ClientConfig;
use bittorrent::lifecycle::ResilienceConfig;
use metrics::handle::MetricsHandle;
use simnet::addr::NodeId;
use simnet::fault::{FaultInjector, FaultKind, FaultPlan, FaultPlanConfig};
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

// ---------------------------------------------------------------------
// The diagnostic swarm
// ---------------------------------------------------------------------

/// The swarm every diagnostic runs against: a campus seed and three
/// armed residential leeches with a stall watchdog — the same shape the
/// chaos soak exercises, small enough that a restore-and-run arm is
/// cheap.
pub fn diagnostic_world(seed: u64, file_size: u64) -> FlowWorld {
    let torrent = synthetic_torrent("diag.bin", 256 * 1024, file_size, seed);
    let cfg = FlowConfig {
        stall_timeout: Some(SimDuration::from_secs(15)),
        ..FlowConfig::default()
    };
    let mut w = FlowWorld::new(cfg, seed);
    let armed = || {
        Box::new(|| ClientConfig {
            resilience: ResilienceConfig::armed(),
            ..ClientConfig::default()
        }) as Box<dyn Fn() -> ClientConfig>
    };
    let s = w.add_node(Access::campus());
    let mut spec = TaskSpec::default_client(s, torrent, true);
    spec.make_config = armed();
    w.add_task(spec);
    for i in 0..3 {
        let n = w.add_node(Access::residential());
        let mut spec = TaskSpec::default_client(n, torrent, false);
        spec.make_config = armed();
        spec.start_fraction = Some(0.2 * (i + 1) as f64);
        w.add_task(spec);
    }
    w.start();
    w
}

/// Default health predicate: every leech finished the download.
pub fn all_leeches_done(w: &FlowWorld) -> bool {
    (1..w.task_count()).all(|t| w.progress_fraction(t) >= 1.0)
}

// ---------------------------------------------------------------------
// (a) Fault-window bisection
// ---------------------------------------------------------------------

/// Result of a bisection run.
#[derive(Clone, Debug)]
pub struct BisectOutcome {
    /// Index (into `plan.events()`) of the first window whose inclusion
    /// breaks the invariant, or `None` when the full run stays healthy.
    pub culprit: Option<usize>,
    /// Snapshot restores spent narrowing it down (`O(log n)`).
    pub restores: usize,
    /// Windows in the plan.
    pub windows: usize,
    /// Total bytes of the per-window snapshots.
    pub snapshot_bytes: u64,
    /// Rendered plan, for the report.
    pub schedule: String,
}

/// Finds the first fault window that breaks `healthy` at `horizon`.
///
/// One forward pass runs the full plan, saving a snapshot immediately
/// before each window begins. If the run ends unhealthy, a binary
/// search over "restore the snapshot before window `k`, replay only the
/// already-begun windows, run fault-free to the horizon" isolates the
/// culprit: the predicate `broken(k)` (the first `k` windows suffice to
/// break the run) is monotone in `k`, so `ceil(log2(n))` restores
/// pin down the smallest breaking prefix.
///
/// # Panics
///
/// Panics when the plan is empty.
pub fn bisect_fault_windows(
    build: &dyn Fn() -> FlowWorld,
    plan: &FaultPlan,
    horizon: SimTime,
    healthy: &dyn Fn(&FlowWorld) -> bool,
    metrics: &MetricsHandle,
) -> BisectOutcome {
    let n = plan.len();
    assert!(n > 0, "cannot bisect an empty fault plan");

    // Forward pass: snapshot just before each window's begin instant.
    let mut w = build();
    let mut inj = FaultInjector::new(plan);
    let mut snaps: Vec<(Vec<u8>, usize)> = Vec::with_capacity(n);
    let mut snapshot_bytes = 0u64;
    for e in plan.events() {
        let before = e.at - SimDuration::from_micros(1);
        if before > w.now() {
            w.run_driven_until(
                before,
                |w| {
                    inj.poll(w);
                },
                |_| false,
            );
        }
        let blob = w.save();
        snapshot_bytes += blob.len() as u64;
        snaps.push((blob, inj.applied()));
    }
    metrics
        .gauge("snapshot.bytes")
        .set(snaps.last().map_or(0, |(b, _)| b.len()) as f64);
    w.run_driven_until(
        horizon,
        |w| {
            inj.poll(w);
        },
        |_| false,
    );
    if healthy(&w) {
        return BisectOutcome {
            culprit: None,
            restores: 0,
            windows: n,
            snapshot_bytes,
            schedule: plan.render(),
        };
    }

    // broken(k): restoring the state just before window k and replaying
    // only windows 0..k (their ends included) still ends unhealthy.
    // broken(0) is false (the fault-free base run is healthy by
    // assumption) and broken(n) is true (the forward pass just failed),
    // so binary search finds the smallest breaking prefix.
    let mut restores = 0usize;
    let broken = |k: usize, restores: &mut usize| -> bool {
        *restores += 1;
        let (blob, applied) = &snaps[k];
        let mut w = build();
        w.restore(blob);
        let mut trunc = FaultPlan::empty(plan.seed());
        for e in &plan.events()[..k] {
            trunc.push(e.at, e.kind);
        }
        // The truncated timeline is identical to the full one up to the
        // snapshot instant (windows >= k begin later), so the applied
        // cursor transfers directly.
        let mut inj = FaultInjector::new(&trunc);
        inj.skip_to(*applied);
        w.run_driven_until(
            horizon,
            |w| {
                inj.poll(w);
            },
            |_| false,
        );
        !healthy(&w)
    };
    let (mut lo, mut hi) = (1usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if broken(mid, &mut restores) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    BisectOutcome {
        culprit: Some(lo - 1),
        restores,
        windows: n,
        snapshot_bytes,
        schedule: plan.render(),
    }
}

/// Renders a bisection outcome.
pub fn bisect_table(seed: u64, out: &BisectOutcome) -> Table {
    let mut t = Table::new("Fault-window bisection: first invariant-breaking window");
    t.headers(["seed", "windows", "culprit", "restores", "snapshot bytes"]);
    t.row([
        seed.to_string(),
        out.windows.to_string(),
        out.culprit
            .map_or("none (healthy)".to_string(), |c| format!("#{c}")),
        out.restores.to_string(),
        out.snapshot_bytes.to_string(),
    ]);
    t.note("restores grow as log2(windows): each probe restores a pre-window snapshot");
    t
}

// ---------------------------------------------------------------------
// (b) Warm-started fault sweeps
// ---------------------------------------------------------------------

/// One arm of a warm-started sweep: a named fault plan applied to the
/// shared converged swarm.
#[derive(Clone, Debug)]
pub struct ForkArm {
    /// Label in the report.
    pub name: String,
    /// Faults this arm injects after the fork point.
    pub plan: FaultPlan,
}

/// Outcome of one arm.
#[derive(Clone, Debug)]
pub struct ForkOutcome {
    /// Arm label.
    pub name: String,
    /// Final per-task progress fractions.
    pub progress: Vec<f64>,
    /// Whether the health predicate held at the horizon.
    pub healthy: bool,
    /// Stall-watchdog aborts over the arm.
    pub stall_aborts: u64,
    /// Fault actions applied.
    pub applied: usize,
}

/// Runs one swarm to `warmup`, snapshots it, and forks the blob into
/// one restored world per arm — warm-up cost is paid once no matter how
/// many fault variants the sweep compares.
pub fn warm_fork_sweep(
    build: &dyn Fn() -> FlowWorld,
    warmup: SimTime,
    horizon: SimTime,
    arms: &[ForkArm],
    healthy: &dyn Fn(&FlowWorld) -> bool,
    metrics: &MetricsHandle,
) -> Vec<ForkOutcome> {
    let mut base = build();
    base.run_until(warmup, |_| {});
    let blob = base.save();
    metrics.gauge("snapshot.bytes").set(blob.len() as f64);
    arms.iter()
        .map(|arm| {
            let mut w = build();
            w.restore(&blob);
            let mut inj = FaultInjector::new(&arm.plan);
            w.run_driven_until(
                horizon,
                |w| {
                    inj.poll(w);
                },
                |_| false,
            );
            ForkOutcome {
                name: arm.name.clone(),
                progress: (0..w.task_count())
                    .map(|t| w.progress_fraction(t))
                    .collect(),
                healthy: healthy(&w),
                stall_aborts: w.stall_aborts(),
                applied: inj.applied(),
            }
        })
        .collect()
}

/// Renders a warm-started sweep.
pub fn fork_table(warmup: SimTime, outcomes: &[ForkOutcome]) -> Table {
    let mut t = Table::new("Warm-started fault arms (one warm-up, N forks)");
    t.headers(["arm", "healthy", "faults", "stall aborts", "mean progress"]);
    for o in outcomes {
        let mean = o.progress.iter().sum::<f64>() / o.progress.len().max(1) as f64;
        t.row([
            o.name.clone(),
            o.healthy.to_string(),
            o.applied.to_string(),
            o.stall_aborts.to_string(),
            format!("{:.1}%", mean * 100.0),
        ]);
    }
    t.note(&format!(
        "all arms forked from one snapshot taken at t={:.0}s",
        warmup.as_secs_f64()
    ));
    t
}

// ---------------------------------------------------------------------
// (c) Seeded fault-schedule search
// ---------------------------------------------------------------------

/// Knobs of the schedule searcher.
#[derive(Clone, Debug)]
pub struct SearchParams {
    /// Mutation rounds (one candidate evaluated per round).
    pub rounds: usize,
    /// Fault windows per candidate schedule.
    pub windows: usize,
    /// Fork point: candidates are evaluated from this warm snapshot.
    pub warmup: SimDuration,
    /// Evaluation horizon.
    pub horizon: SimDuration,
    /// Swarm file size.
    pub file_size: u64,
}

impl SearchParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        SearchParams {
            rounds: 6,
            windows: 4,
            warmup: SimDuration::from_secs(20),
            horizon: SimDuration::from_secs(180),
            file_size: 16 * 1024 * 1024,
        }
    }

    /// Full-scale preset.
    pub fn paper() -> Self {
        SearchParams {
            rounds: 24,
            windows: 6,
            warmup: SimDuration::from_secs(30),
            horizon: SimDuration::from_secs(480),
            file_size: 32 * 1024 * 1024,
        }
    }
}

/// The searcher's score for one candidate schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Severity {
    /// Seconds from the last fault window's end until every leech
    /// finished (the horizon caps it when the swarm never recovers).
    pub time_to_recover: f64,
    /// Event-queue high-water mark over the arm.
    pub queue_peak: usize,
    /// Combined score the search maximises.
    pub score: f64,
}

/// Search result: a reproducible `(seed, schedule)` artifact.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Root seed; together with the schedule this replays the run.
    pub seed: u64,
    /// Severity of the best schedule found.
    pub best: Severity,
    /// Candidates evaluated (initial plan + mutations).
    pub evaluated: usize,
    /// Candidates within 10 % of the best without beating it.
    pub near_misses: u64,
    /// Rendered best schedule.
    pub best_schedule: String,
    /// The machine-readable artifact emitted for replay.
    pub artifact: String,
}

fn window_end(e_at: SimTime, kind: FaultKind) -> SimTime {
    let d = match kind {
        FaultKind::TrackerOutage { duration } => duration,
        FaultKind::LinkBlackhole { duration, .. } => duration,
        FaultKind::LossBurst { duration, .. } => duration,
        FaultKind::BandwidthSqueeze { duration, .. } => duration,
        FaultKind::PeerCrash { downtime, .. } => downtime,
        FaultKind::AddressChurn { .. } => SimDuration::ZERO,
    };
    e_at + d
}

fn scale_duration(kind: FaultKind, f: f64) -> FaultKind {
    let scale = |d: SimDuration| {
        SimDuration::from_secs_f64((d.as_secs_f64() * f).clamp(2.0, 120.0))
    };
    match kind {
        FaultKind::TrackerOutage { duration } => FaultKind::TrackerOutage {
            duration: scale(duration),
        },
        FaultKind::LinkBlackhole { node, duration } => FaultKind::LinkBlackhole {
            node,
            duration: scale(duration),
        },
        FaultKind::LossBurst {
            node,
            ber,
            duration,
        } => FaultKind::LossBurst {
            node,
            ber,
            duration: scale(duration),
        },
        FaultKind::BandwidthSqueeze {
            node,
            factor,
            duration,
        } => FaultKind::BandwidthSqueeze {
            node,
            factor,
            duration: scale(duration),
        },
        FaultKind::PeerCrash { node, downtime } => FaultKind::PeerCrash {
            node,
            downtime: scale(downtime),
        },
        churn @ FaultKind::AddressChurn { .. } => churn,
    }
}

fn retarget(kind: FaultKind, node: NodeId) -> FaultKind {
    match kind {
        FaultKind::TrackerOutage { duration } => FaultKind::TrackerOutage { duration },
        FaultKind::LinkBlackhole { duration, .. } => {
            FaultKind::LinkBlackhole { node, duration }
        }
        FaultKind::LossBurst { ber, duration, .. } => FaultKind::LossBurst {
            node,
            ber,
            duration,
        },
        FaultKind::BandwidthSqueeze {
            factor, duration, ..
        } => FaultKind::BandwidthSqueeze {
            node,
            factor,
            duration,
        },
        FaultKind::PeerCrash { downtime, .. } => FaultKind::PeerCrash { node, downtime },
        FaultKind::AddressChurn { .. } => FaultKind::AddressChurn { node },
    }
}

/// One seeded mutation of a schedule: shift a window, rescale its
/// duration, or point it at a different node.
fn mutate(
    plan: &FaultPlan,
    rng: &mut SimRng,
    warmup: SimTime,
    horizon: SimTime,
    nodes: &[NodeId],
) -> FaultPlan {
    let events = plan.events();
    let victim = rng.range(0..events.len());
    let mut out = FaultPlan::empty(plan.seed());
    for (j, e) in events.iter().enumerate() {
        let (mut at, mut kind) = (e.at, e.kind);
        if j == victim {
            match rng.range(0..3u32) {
                0 => {
                    let span = (horizon - SimDuration::from_secs(10))
                        .saturating_since(warmup)
                        .as_micros()
                        .max(1);
                    at = warmup + SimDuration::from_micros(rng.range(0..span));
                }
                1 => {
                    kind = scale_duration(kind, if rng.chance(0.5) { 2.0 } else { 0.5 });
                }
                _ => {
                    kind = retarget(kind, nodes[rng.range(0..nodes.len())]);
                }
            }
        }
        out.push(at, kind);
    }
    out
}

fn evaluate(
    build: &dyn Fn() -> FlowWorld,
    blob: &[u8],
    plan: &FaultPlan,
    horizon: SimTime,
) -> Severity {
    let last_end = plan
        .events()
        .iter()
        .map(|e| window_end(e.at, e.kind))
        .max()
        .unwrap_or(SimTime::ZERO)
        .min(horizon);
    let mut w = build();
    w.restore(blob);
    let mut inj = FaultInjector::new(plan);
    let healed = w.run_driven_until(
        horizon,
        |w| {
            inj.poll(w);
        },
        |w| w.now() >= last_end && all_leeches_done(w),
    );
    let heal_time = if healed { w.now() } else { horizon };
    let ttr = heal_time.saturating_since(last_end).as_secs_f64();
    let queue_peak = w.queue_stats().max_live;
    Severity {
        time_to_recover: ttr,
        queue_peak,
        // Recovery latency dominates; queue depth breaks ties so the
        // search prefers schedules that also pressure the scheduler.
        score: ttr + queue_peak as f64 / 10_000.0,
    }
}

/// Greedy seeded search for the nastiest fault schedule: every
/// candidate forks from one warm snapshot, and every random choice
/// flows from `seed`, so the emitted artifact replays exactly.
pub fn search_fault_schedules(
    params: &SearchParams,
    metrics: &MetricsHandle,
    seed: u64,
) -> SearchOutcome {
    let build = || diagnostic_world(seed, params.file_size);
    let warmup = SimTime::ZERO + params.warmup;
    let horizon = SimTime::ZERO + params.horizon;
    let mut base = build();
    base.run_until(warmup, |_| {});
    let blob = base.save();
    metrics.gauge("snapshot.bytes").set(blob.len() as f64);

    let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
    let mut rng = SimRng::new(seed);
    // Seed schedule: a generated mix, re-timed into (warmup, horizon).
    let gen = FaultPlan::generate(
        seed,
        &FaultPlanConfig::new(params.horizon, nodes.clone()),
    );
    let span = (horizon - SimDuration::from_secs(10)).saturating_since(warmup);
    let mut best_plan = FaultPlan::empty(seed);
    for e in gen.events().iter().take(params.windows) {
        let frac = e.at.as_micros() as f64 / params.horizon.as_micros().max(1) as f64;
        let at = warmup + SimDuration::from_micros((span.as_micros() as f64 * frac) as u64);
        best_plan.push(at, e.kind);
    }
    let mut best = evaluate(&build, &blob, &best_plan, horizon);
    let mut evaluated = 1usize;
    let mut near_misses = 0u64;
    let near_miss_gauge = metrics.gauge("search.near_miss");
    near_miss_gauge.set(0.0);

    for _ in 0..params.rounds {
        let cand = mutate(&best_plan, &mut rng, warmup, horizon, &nodes);
        let sev = evaluate(&build, &blob, &cand, horizon);
        evaluated += 1;
        if sev.score > best.score {
            best_plan = cand;
            best = sev;
        } else if sev.score >= 0.9 * best.score {
            near_misses += 1;
            near_miss_gauge.set(near_misses as f64);
        }
    }

    let best_schedule = best_plan.render();
    let artifact = format!(
        "wp2p-fault-search v1\nseed={seed}\nscore={:.6}\nttr={:.6}\nqueue_peak={}\n{}",
        best.score, best.time_to_recover, best.queue_peak, best_schedule
    );
    SearchOutcome {
        seed,
        best,
        evaluated,
        near_misses,
        best_schedule,
        artifact,
    }
}

/// Renders a search outcome.
pub fn search_table(out: &SearchOutcome) -> Table {
    let mut t = Table::new("Seeded fault-schedule search: worst schedule found");
    t.headers([
        "seed",
        "evaluated",
        "near misses",
        "ttr",
        "queue peak",
        "score",
    ]);
    t.row([
        out.seed.to_string(),
        out.evaluated.to_string(),
        out.near_misses.to_string(),
        format!("{:.1}s", out.best.time_to_recover),
        out.best.queue_peak.to_string(),
        format!("{:.3}", out.best.score),
    ]);
    t.note("replay: the artifact's (seed, schedule) pair reproduces this run exactly");
    t
}

// ---------------------------------------------------------------------
// Snapshot self-check (CI entry point)
// ---------------------------------------------------------------------

/// One scenario's save/restore differential result.
#[derive(Clone, Debug)]
pub struct SnapshotCheck {
    /// Scenario label.
    pub scenario: &'static str,
    /// Blob size at the snapshot point.
    pub bytes: usize,
    /// Whether restore-then-run matched the straight run byte-for-byte.
    pub identical: bool,
}

/// Runs the save→restore→run differential on two scenarios (calm swarm
/// and mid-fault swarm) and reports blob sizes and byte-identity — the
/// one-command check CI runs on every push.
pub fn snapshot_selfcheck(seed: u64, metrics: &MetricsHandle) -> Vec<SnapshotCheck> {
    let mut out = Vec::new();

    // Scenario 1: calm converging swarm.
    let build = || diagnostic_world(seed, 16 * 1024 * 1024);
    let t1 = SimTime::from_secs(30);
    let t2 = SimTime::from_secs(90);
    let mut straight = build();
    straight.run_until(t1, |_| {});
    let blob = straight.save();
    straight.run_until(t2, |_| {});
    let want = straight.save();
    let mut restored = build();
    restored.restore(&blob);
    restored.run_until(t2, |_| {});
    let got = restored.save();
    metrics.gauge("snapshot.bytes").set(blob.len() as f64);
    out.push(SnapshotCheck {
        scenario: "calm-swarm",
        bytes: blob.len(),
        identical: want == got,
    });

    // Scenario 2: snapshot inside open fault windows.
    let mut plan = FaultPlan::empty(seed);
    plan.push(
        SimTime::from_secs(15),
        FaultKind::TrackerOutage {
            duration: SimDuration::from_secs(40),
        },
    );
    plan.push(
        SimTime::from_secs(20),
        FaultKind::LinkBlackhole {
            node: NodeId(1),
            duration: SimDuration::from_secs(20),
        },
    );
    let mut straight = build();
    let mut inj = FaultInjector::new(&plan);
    straight.run_driven_until(
        SimTime::from_secs(25),
        |w| {
            inj.poll(w);
        },
        |_| false,
    );
    let blob = straight.save();
    let applied = inj.applied();
    straight.run_driven_until(
        t2,
        |w| {
            inj.poll(w);
        },
        |_| false,
    );
    let want = straight.save();
    let mut restored = build();
    restored.restore(&blob);
    let mut inj2 = FaultInjector::new(&plan);
    inj2.skip_to(applied);
    restored.run_driven_until(
        t2,
        |w| {
            inj2.poll(w);
        },
        |_| false,
    );
    let got = restored.save();
    out.push(SnapshotCheck {
        scenario: "mid-fault",
        bytes: blob.len(),
        identical: want == got,
    });
    out
}

/// Renders the self-check.
pub fn selfcheck_table(seed: u64, checks: &[SnapshotCheck]) -> Table {
    let mut t = Table::new("Snapshot self-check: restore-then-run vs straight-through");
    t.headers(["scenario", "seed", "blob bytes", "byte-identical"]);
    for c in checks {
        t.row([
            c.scenario.to_string(),
            seed.to_string(),
            c.bytes.to_string(),
            c.identical.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> MetricsHandle {
        MetricsHandle::disabled()
    }

    /// A 12-window plan whose only consequential window black-holes a
    /// still-incomplete leech for the rest of the run.
    fn planted_plan(bad_at: usize) -> FaultPlan {
        let mut p = FaultPlan::empty(99);
        for i in 0..12usize {
            let at = SimTime::from_secs(10 + 6 * i as u64);
            if i == bad_at {
                p.push(
                    at,
                    FaultKind::LinkBlackhole {
                        node: NodeId(1),
                        duration: SimDuration::from_secs(3_600),
                    },
                );
            } else {
                // Harmless blip: 1 s of mild loss on a leech.
                p.push(
                    at,
                    FaultKind::LossBurst {
                        node: NodeId(1 + (i % 3) as u32),
                        ber: 1e-7,
                        duration: SimDuration::from_secs(1),
                    },
                );
            }
        }
        p
    }

    #[test]
    fn bisection_finds_planted_window_in_log_restores() {
        let build = || diagnostic_world(42, 32 * 1024 * 1024);
        let plan = planted_plan(7);
        let out = bisect_fault_windows(
            &build,
            &plan,
            SimTime::from_secs(150),
            &all_leeches_done,
            &quiet(),
        );
        assert_eq!(out.culprit, Some(7), "wrong culprit window");
        assert!(
            out.restores <= 4,
            "12 windows must bisect in <=4 restores, used {}",
            out.restores
        );
        assert_eq!(out.windows, 12);
        assert!(out.snapshot_bytes > 0);
    }

    #[test]
    fn bisection_reports_healthy_plans() {
        let build = || diagnostic_world(42, 32 * 1024 * 1024);
        let plan = planted_plan(usize::MAX); // all windows harmless
        let out = bisect_fault_windows(
            &build,
            &plan,
            SimTime::from_secs(150),
            &all_leeches_done,
            &quiet(),
        );
        assert_eq!(out.culprit, None);
        assert_eq!(out.restores, 0);
    }

    #[test]
    fn warm_fork_arms_share_one_warmup() {
        let build = || diagnostic_world(7, 32 * 1024 * 1024);
        let mut benign = FaultPlan::empty(1);
        benign.push(
            SimTime::from_secs(40),
            FaultKind::LossBurst {
                node: NodeId(1),
                ber: 1e-7,
                duration: SimDuration::from_secs(1),
            },
        );
        let mut fatal = FaultPlan::empty(2);
        fatal.push(
            SimTime::from_secs(40),
            FaultKind::LinkBlackhole {
                node: NodeId(1),
                duration: SimDuration::from_secs(3_600),
            },
        );
        let arms = [
            ForkArm {
                name: "benign".into(),
                plan: benign,
            },
            ForkArm {
                name: "seed-blackhole".into(),
                plan: fatal,
            },
        ];
        let outs = warm_fork_sweep(
            &build,
            SimTime::from_secs(30),
            SimTime::from_secs(150),
            &arms,
            &all_leeches_done,
            &quiet(),
        );
        assert_eq!(outs.len(), 2);
        assert!(outs[0].healthy, "benign arm should finish");
        assert!(!outs[1].healthy, "blackholed-leech arm cannot finish");
    }

    #[test]
    fn searcher_is_reproducible_from_seed() {
        let params = SearchParams {
            rounds: 3,
            windows: 3,
            warmup: SimDuration::from_secs(15),
            horizon: SimDuration::from_secs(90),
            file_size: 8 * 1024 * 1024,
        };
        let a = search_fault_schedules(&params, &quiet(), 1234);
        let b = search_fault_schedules(&params, &quiet(), 1234);
        assert_eq!(a.artifact, b.artifact, "same seed must emit same artifact");
        assert_eq!(a.best_schedule, b.best_schedule);
        assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
        assert_eq!(a.evaluated, params.rounds + 1);
    }

    #[test]
    fn selfcheck_passes_on_both_scenarios() {
        let checks = snapshot_selfcheck(5, &quiet());
        assert_eq!(checks.len(), 2);
        for c in &checks {
            assert!(c.identical, "{} snapshot diverged", c.scenario);
            assert!(c.bytes > 0);
        }
    }
}

