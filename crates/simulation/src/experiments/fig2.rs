//! **Figure 2 — Impact of bi-directional TCP** (paper §3.2).
//!
//! * Panel (a): download throughput vs. BER for bi-directional vs.
//!   uni-directional TCP over one wireless leg. Piggybacked ACKs are long,
//!   so at a given BER the bi-directional connection loses more ACKs and
//!   downloads slower — over and above the self-contention difference
//!   captured at BER = 0.
//! * Panels (b, c): packets sent from the client on the wireless leg over
//!   time, with buffer-drop events marked. After a congestion drop the
//!   uni-directional connection's packet count falls (congestion control
//!   working); the bi-directional one stays roughly flat because its
//!   DUPACKs are sent as extra pure packets.

use super::params::{builder_setters, ExperimentParams};
use crate::harness::SweepRunner;
use crate::packet::{PacketConfig, PacketWorld};
use crate::report::{kbps, Table};
use metrics::handle::MetricsHandle;
use metrics::stats::RunSummary;
use simnet::time::{SimDuration, SimTime};
use simnet::wireless::{Direction, WirelessConfig};

/// Base seed of the Fig. 2(a) sweep (pinned by shape-regression tests).
pub const FIG2A_SEED: u64 = 0xF2A;
/// Seed of the Fig. 2(b,c) paired traces.
pub const FIG2BC_SEED: u64 = 0x2BC;

/// Parameters for Fig. 2(a).
#[derive(Clone, Debug)]
pub struct Fig2aParams {
    /// Bit-error rates to sweep (paper: 0 … 2e-5).
    pub bers: Vec<f64>,
    /// Independent runs per point (paper: 5).
    pub runs: u64,
    /// Measurement duration per run.
    pub duration: SimDuration,
    /// Wireless channel capacity in bytes/second.
    pub channel_bytes_per_sec: u64,
    /// Enable RFC 1122 delayed ACKs on both endpoints (ablation knob; the
    /// paper-era default is on in Linux, off here for clarity).
    pub delayed_ack: bool,
}

impl Fig2aParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        Fig2aParams {
            bers: vec![0.0, 1.0e-5, 2.0e-5],
            runs: 2,
            duration: SimDuration::from_secs(30),
            channel_bytes_per_sec: 50_000,
            delayed_ack: false,
        }
    }

    /// Paper-scale preset.
    pub fn paper() -> Self {
        Fig2aParams {
            bers: vec![0.0, 0.5e-5, 1.0e-5, 1.5e-5, 2.0e-5],
            runs: 5,
            duration: SimDuration::from_secs(120),
            channel_bytes_per_sec: 50_000,
            delayed_ack: false,
        }
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_list("bers", &self.bers);
        p.set_num("runs", self.runs as f64);
        p.set_dur("duration_s", self.duration);
        p.set_num("channel_bytes_per_sec", self.channel_bytes_per_sec as f64);
        p.set_bool("delayed_ack", self.delayed_ack);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        Fig2aParams {
            bers: p.list_or("bers", &base.bers),
            runs: p.u64_or("runs", base.runs),
            duration: p.dur_or("duration_s", base.duration),
            channel_bytes_per_sec: p.u64_or("channel_bytes_per_sec", base.channel_bytes_per_sec),
            delayed_ack: p.bool_or("delayed_ack", base.delayed_ack),
        }
    }
}

builder_setters!(Fig2aParams {
    bers: Vec<f64>,
    runs: u64,
    duration: SimDuration,
    channel_bytes_per_sec: u64,
    delayed_ack: bool,
});

/// One row of Fig. 2(a): throughput per arm at one BER.
#[derive(Clone, Copy, Debug)]
pub struct Fig2aPoint {
    /// The bit-error rate.
    pub ber: f64,
    /// Bi-directional TCP download throughput (bytes/s).
    pub bi: RunSummary,
    /// Uni-directional TCP download throughput (bytes/s).
    pub uni: RunSummary,
}

fn channel(bytes_per_sec: u64, ber: f64, queue: usize) -> WirelessConfig {
    WirelessConfig {
        bandwidth_bps: bytes_per_sec * 8,
        prop_delay: SimDuration::from_millis(2),
        queue_frames: queue,
        ber,
        per_frame_overhead: SimDuration::from_micros(200),
    }
}

/// Runs one transfer and returns the mobile host's download throughput in
/// bytes/second.
fn run_once(
    ber: f64,
    bidirectional: bool,
    duration: SimDuration,
    cap: u64,
    delayed_ack: bool,
    metrics: &MetricsHandle,
    seed: u64,
) -> f64 {
    // Modest receive windows, as on the paper's testbed: the narrow
    // wireless leg has a tiny BDP, and era-appropriate sockets did not
    // open 128 KB windows into it (which would only bloat the shared
    // queue and measure bufferbloat instead of ACK-loss effects).
    let mut cfg = PacketConfig::default();
    cfg.tcp.recv_window = 32 * 1024;
    cfg.tcp.delayed_ack = delayed_ack;
    let mut w = PacketWorld::new(cfg, seed);
    w.set_metrics(metrics);
    let mobile = w.add_node(Some(channel(cap, ber, 100)));
    let fixed = w.add_node(None);
    let conn = w.open_tcp(mobile, fixed);
    // Enough backlog that the sender never runs dry.
    let backlog = cap * duration.as_secs_f64() as u64 * 4;
    w.tcp_write(conn, false, backlog); // download direction
    if bidirectional {
        w.tcp_write(conn, true, backlog); // simultaneous upload
    }
    if metrics.is_enabled() {
        // Sample the mobile host's download throughput once per sim
        // second so the dump carries the series the figure plots.
        let thr = metrics.series("fig2a.throughput_Bps");
        let mut next = SimTime::from_secs(1);
        let mut last = 0u64;
        w.run_until(SimTime::ZERO + duration, |w| {
            while w.now() >= next {
                let delivered = w.tcp_delivered(conn, true);
                thr.record(next, (delivered - last) as f64);
                last = delivered;
                next += SimDuration::from_secs(1);
            }
        });
    } else {
        w.run_until(SimTime::ZERO + duration, |_| {});
    }
    w.tcp_delivered(conn, true) as f64 / duration.as_secs_f64()
}

/// Runs the Fig. 2(a) sweep. Cells (one per BER × run) execute in
/// parallel on the sweep harness; both arms share a cell (and therefore a
/// seed) so the bi/uni comparison uses common random numbers.
///
/// One probe cell — the first BER, run 0, bi-directional arm — is wired
/// into `metrics` (TCP cwnd/ssthresh/RTT series per endpoint, plus the
/// per-second throughput series). A single writer per series keeps the
/// dump deterministic under any worker count.
pub fn run_fig2a_with(
    params: &Fig2aParams,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> Vec<Fig2aPoint> {
    let cells = SweepRunner::new("fig2a", base_seed)
        .with_metrics(metrics)
        .run(&params.bers, params.runs as usize, |&ber, cell| {
            cell.add_virtual_secs(2.0 * params.duration.as_secs_f64());
            let probe = cell.point == 0 && cell.run == 0;
            let seed = cell.run_seed;
            let one = |bi: bool| {
                let handle = if probe && bi {
                    metrics.clone()
                } else {
                    MetricsHandle::disabled()
                };
                run_once(
                    ber,
                    bi,
                    params.duration,
                    params.channel_bytes_per_sec,
                    params.delayed_ack,
                    &handle,
                    seed,
                )
            };
            (one(true), one(false))
        });
    params
        .bers
        .iter()
        .zip(cells)
        .map(|(&ber, runs)| {
            let bi: Vec<f64> = runs.iter().map(|&(b, _)| b).collect();
            let uni: Vec<f64> = runs.iter().map(|&(_, u)| u).collect();
            Fig2aPoint {
                ber,
                bi: RunSummary::of(&bi),
                uni: RunSummary::of(&uni),
            }
        })
        .collect()
}

/// Renders Fig. 2(a) as a table.
pub fn fig2a_table(points: &[Fig2aPoint]) -> Table {
    let mut t = Table::new("Figure 2(a): Downloading throughput (KBps) vs BER — bi-TCP vs uni-TCP");
    t.headers(["BER", "Bi-TCP", "Uni-TCP", "bi/uni"]);
    for p in points {
        t.row([
            format!("{:.1e}", p.ber),
            kbps(p.bi.mean),
            kbps(p.uni.mean),
            format!("{:.2}", p.bi.mean / p.uni.mean.max(1.0)),
        ]);
    }
    t.note("paper: uni-TCP above bi-TCP everywhere; both fall with BER");
    t
}

/// Parameters for Fig. 2(b, c).
#[derive(Clone, Debug)]
pub struct Fig2bcParams {
    /// Observation window.
    pub duration: SimDuration,
    /// Sampling bucket.
    pub bucket: SimDuration,
    /// Channel capacity (bytes/second) — small, to force congestion.
    pub channel_bytes_per_sec: u64,
    /// Queue size in frames — small, to force drops.
    pub queue_frames: usize,
}

impl Fig2bcParams {
    /// The paper's 5-second window.
    pub fn paper() -> Self {
        Fig2bcParams {
            duration: SimDuration::from_secs(5),
            bucket: SimDuration::from_millis(250),
            channel_bytes_per_sec: 120_000,
            queue_frames: 12,
        }
    }

    /// CI-sized preset (same, it is already small).
    pub fn quick() -> Self {
        Self::paper()
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_dur("duration_s", self.duration);
        p.set_dur("bucket_s", self.bucket);
        p.set_num("channel_bytes_per_sec", self.channel_bytes_per_sec as f64);
        p.set_num("queue_frames", self.queue_frames as f64);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        Fig2bcParams {
            duration: p.dur_or("duration_s", base.duration),
            bucket: p.dur_or("bucket_s", base.bucket),
            channel_bytes_per_sec: p.u64_or("channel_bytes_per_sec", base.channel_bytes_per_sec),
            queue_frames: p.usize_or("queue_frames", base.queue_frames),
        }
    }
}

builder_setters!(Fig2bcParams {
    duration: SimDuration,
    bucket: SimDuration,
    channel_bytes_per_sec: u64,
    queue_frames: usize,
});

/// Result of one Fig. 2(b)/(c) trace.
#[derive(Clone, Debug)]
pub struct Fig2bcTrace {
    /// `(bucket start seconds, packets sent from the client)` series.
    pub packets: Vec<(f64, u64)>,
    /// Buffer-drop instants (seconds).
    pub drops: Vec<f64>,
}

impl Fig2bcTrace {
    /// Mean client packet count per bucket over the buckets after the
    /// first drop (used to compare uni vs bi behaviour).
    pub fn mean_after_first_drop(&self) -> f64 {
        let Some(&t0) = self.drops.first() else {
            return f64::NAN;
        };
        let after: Vec<f64> = self
            .packets
            .iter()
            .filter(|&&(t, _)| t > t0)
            .map(|&(_, n)| n as f64)
            .collect();
        metrics::stats::mean(&after)
    }

    /// Mean client packet count per bucket before the first drop.
    pub fn mean_before_first_drop(&self) -> f64 {
        let Some(&t0) = self.drops.first() else {
            return f64::NAN;
        };
        let before: Vec<f64> = self
            .packets
            .iter()
            .filter(|&&(t, _)| t <= t0)
            .map(|&(_, n)| n as f64)
            .collect();
        metrics::stats::mean(&before)
    }
}

/// [`run_fig2bc`] with the world wired into `metrics` (per-endpoint TCP
/// series, fault counters). Pass a disabled handle for a plain run.
pub fn run_fig2bc_with(
    params: &Fig2bcParams,
    bidirectional: bool,
    metrics: &MetricsHandle,
    seed: u64,
) -> Fig2bcTrace {
    let mut w = PacketWorld::new(PacketConfig::default(), seed);
    w.set_metrics(metrics);
    let mobile = w.add_node(Some(channel(
        params.channel_bytes_per_sec,
        0.0,
        params.queue_frames,
    )));
    let fixed = w.add_node(None);
    let conn = w.open_tcp(mobile, fixed);
    let backlog = params.channel_bytes_per_sec * 30;
    w.tcp_write(conn, false, backlog);
    if bidirectional {
        w.tcp_write(conn, true, backlog);
    }
    // Sample the channel's Up-direction accepted counter per bucket.
    let bucket_us = params.bucket.as_micros();
    let nbuckets = (params.duration.as_micros() / bucket_us) as usize;
    let mut packets = vec![0u64; nbuckets];
    let mut last_accepted = 0u64;
    let mut next_bucket = 0usize;
    w.run_until(SimTime::ZERO + params.duration, |w| {
        let t = w.now().as_micros();
        let bucket = (t / bucket_us) as usize;
        while next_bucket < bucket.min(nbuckets) {
            let acc = w.channel_stats(mobile, Direction::Up).accepted;
            packets[next_bucket] = acc - last_accepted;
            last_accepted = acc;
            next_bucket += 1;
        }
    });
    // Flush remaining buckets.
    // (Any bucket the run never reached stays at zero.)
    let packets = packets
        .into_iter()
        .enumerate()
        .map(|(i, n)| (i as f64 * params.bucket.as_secs_f64(), n))
        .collect();
    let drops = w
        .channel_drops(mobile)
        .into_iter()
        .map(|t| t.as_secs_f64())
        .collect();
    Fig2bcTrace { packets, drops }
}

/// [`run_fig2bc_pair`] with metrics: the uni-directional arm's world is
/// wired into `metrics` (single writer per series, so the dump stays
/// deterministic under any worker count).
pub fn run_fig2bc_pair_with(
    params: &Fig2bcParams,
    metrics: &MetricsHandle,
    seed: u64,
) -> (Fig2bcTrace, Fig2bcTrace) {
    let dur = params.duration.as_secs_f64();
    let mut traces = SweepRunner::new("fig2bc", seed)
        .with_metrics(metrics)
        .run(&[false, true], 1, |&bidirectional, cell| {
            cell.add_virtual_secs(dur);
            let handle = if bidirectional {
                MetricsHandle::disabled()
            } else {
                metrics.clone()
            };
            run_fig2bc_with(params, bidirectional, &handle, seed)
        })
        .into_iter()
        .flatten();
    let uni = traces.next().expect("uni trace");
    let bi = traces.next().expect("bi trace");
    (uni, bi)
}

/// Renders a Fig. 2(b)/(c) trace as a table.
pub fn fig2bc_table(uni: &Fig2bcTrace, bi: &Fig2bcTrace) -> Table {
    let mut t =
        Table::new("Figure 2(b,c): Packets sent from client per 250 ms on the wireless leg");
    t.headers(["t (s)", "uni", "bi"]);
    for (i, &(ts, n_uni)) in uni.packets.iter().enumerate() {
        let n_bi = bi.packets.get(i).map(|&(_, n)| n).unwrap_or(0);
        t.row([format!("{ts:.2}"), n_uni.to_string(), n_bi.to_string()]);
    }
    t.note(&format!(
        "uni drops at: {:?}",
        uni.drops
            .iter()
            .take(5)
            .map(|d| (d * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    ));
    t.note(&format!(
        "bi drops at: {:?}",
        bi.drops
            .iter()
            .take(5)
            .map(|d| (d * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    ));
    t.note("paper: after a buffer drop, uni packet count falls; bi stays flat");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_fig2a_plain(params: &Fig2aParams) -> Vec<Fig2aPoint> {
        run_fig2a_with(params, &MetricsHandle::disabled(), FIG2A_SEED)
    }

    fn run_fig2bc_plain(params: &Fig2bcParams, bidirectional: bool, seed: u64) -> Fig2bcTrace {
        run_fig2bc_with(params, bidirectional, &MetricsHandle::disabled(), seed)
    }

    #[test]
    fn fig2a_uni_beats_bi_and_ber_hurts() {
        let params = Fig2aParams::quick()
            .bers(vec![0.0, 2.0e-5])
            .runs(2)
            .duration(SimDuration::from_secs(20));
        let pts = run_fig2a_plain(&params);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(
                p.uni.mean > p.bi.mean,
                "uni should out-download bi at BER {}: uni={} bi={}",
                p.ber,
                p.uni.mean,
                p.bi.mean
            );
        }
        // Higher BER lowers throughput for both arms.
        assert!(pts[1].bi.mean < pts[0].bi.mean);
        assert!(pts[1].uni.mean < pts[0].uni.mean);
    }

    #[test]
    fn fig2bc_congestion_events_occur() {
        let trace = run_fig2bc_plain(&Fig2bcParams::quick(), false, 7);
        assert!(!trace.drops.is_empty(), "no congestion drops in the trace");
        assert!(trace.packets.iter().any(|&(_, n)| n > 0));
    }

    #[test]
    fn fig2bc_bi_keeps_wireless_leg_busier_after_drop() {
        let params = Fig2bcParams::quick();
        let uni = run_fig2bc_plain(&params, false, 3);
        let bi = run_fig2bc_plain(&params, true, 3);
        assert!(!uni.drops.is_empty() && !bi.drops.is_empty());
        // The paper's observation, as a ratio: uni reduces its wireless-leg
        // packet count after congestion more than bi does.
        let uni_ratio = uni.mean_after_first_drop() / uni.mean_before_first_drop().max(1e-9);
        let bi_ratio = bi.mean_after_first_drop() / bi.mean_before_first_drop().max(1e-9);
        assert!(
            bi_ratio > uni_ratio * 0.9,
            "bi should stay at least as busy after drops: bi={bi_ratio:.2} uni={uni_ratio:.2}"
        );
    }

    #[test]
    fn tables_render() {
        let params = Fig2aParams::quick()
            .bers(vec![0.0])
            .runs(1)
            .duration(SimDuration::from_secs(5));
        let pts = run_fig2a_plain(&params);
        let t = fig2a_table(&pts);
        assert_eq!(t.len(), 1);
        let tr = run_fig2bc_plain(&Fig2bcParams::quick(), false, 1);
        let tb = run_fig2bc_plain(&Fig2bcParams::quick(), true, 1);
        assert!(!fig2bc_table(&tr, &tb).is_empty());
    }

    #[test]
    fn fig2_params_round_trip() {
        let p = Fig2aParams::paper();
        let q = Fig2aParams::from_params(&p.to_params());
        assert_eq!(p.to_params(), q.to_params());
        let p = Fig2bcParams::paper();
        let q = Fig2bcParams::from_params(&p.to_params());
        assert_eq!(p.to_params(), q.to_params());
    }

    #[test]
    fn fig2a_metrics_dump_is_byte_identical_across_runs() {
        // The --metrics-out acceptance pin: two identically-seeded runs
        // must emit byte-identical JSON and CSV dumps, worker count
        // notwithstanding, and carry cwnd/RTT/throughput series.
        let params = Fig2aParams::quick()
            .bers(vec![1.0e-5])
            .runs(1)
            .duration(SimDuration::from_secs(10));
        let dump = || {
            let h = MetricsHandle::enabled(FIG2A_SEED);
            run_fig2a_with(&params, &h, FIG2A_SEED);
            (h.to_json(), h.series_csv())
        };
        let (json_a, csv_a) = dump();
        let (json_b, csv_b) = dump();
        assert_eq!(json_a, json_b, "metrics JSON dump not deterministic");
        assert_eq!(csv_a, csv_b, "series CSV dump not deterministic");
        for needle in [
            "tcp.conn0.a.cwnd",
            "tcp.conn0.a.srtt_us",
            "fig2a.throughput_Bps",
        ] {
            assert!(json_a.contains(needle), "dump missing series {needle}");
        }
    }
}
