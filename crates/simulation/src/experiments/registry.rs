//! Registry-based experiment API.
//!
//! Every figure of the paper's evaluation is exposed as an [`Experiment`]:
//! a named object with untyped default/paper parameters
//! ([`ExperimentParams`]), a canonical seed, and a uniform
//! `run(&params, &metrics, seed) -> Report` entry point. The bench
//! drivers (`all_figures`, the per-figure bins) consume the registry
//! instead of calling per-figure free functions, so `--only`, `--paper`,
//! and `--metrics-out` behave identically across figures.
//!
//! The registry is static: [`all`] returns every experiment in the order
//! `all_figures` runs them, [`find`] resolves an exact name, and
//! [`matching`] implements `--only`'s substring filter.

use super::blackout::{self, BLACKOUT_SEED};
use super::erosion::{self, EROSION_SEED};
use super::exploit::{self, EXPLOIT_SEED};
use super::fig2::{self, FIG2A_SEED, FIG2BC_SEED};
use super::fig3::{self, FIG3AB_SEED, FIG3C_SEED};
use super::fig4::{self, FIG4A_SEED, FIG4BC_SEED};
use super::fig8::{self, FIG8A_SEED, FIG8B_SEED, FIG8C_SEED};
use super::fig9::{self, FIG9AB_SEED, FIG9C_SEED};
use super::params::ExperimentParams;
use super::playability::{self, PlayabilityParams};
use super::scale::{self, SCALE_SEED};
use super::service::{self, SERVICE_SEED};
use super::soak::{self, SOAK_SEED};
use crate::report::Table;
use metrics::handle::MetricsHandle;

/// What an experiment returns: the tables the figure prints.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Rendered tables, one per panel.
    pub tables: Vec<Table>,
}

impl Report {
    /// A single-table report.
    pub fn single(table: Table) -> Self {
        Report {
            tables: vec![table],
        }
    }

    /// Prints every table, blank-line separated, exactly as the serial
    /// drivers did.
    pub fn print(&self) {
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                println!();
            }
            t.print();
        }
    }
}

/// One registered figure experiment.
pub trait Experiment: Sync {
    /// Registry name (`fig2a`, `fig8c`, …) — what `--only` matches.
    fn name(&self) -> &'static str;

    /// One-line human description of the figure.
    fn title(&self) -> &'static str;

    /// CI-sized parameters (the `quick` preset).
    fn default_params(&self) -> ExperimentParams;

    /// Paper-scale parameters.
    fn paper_params(&self) -> ExperimentParams;

    /// The canonical seed the bench drivers use; pinned by the
    /// shape-regression tests.
    fn default_seed(&self) -> u64;

    /// Runs the experiment. Pass [`MetricsHandle::disabled`] for a plain
    /// run; an enabled handle additionally collects the figure's probe
    /// instrumentation (single-writer, deterministic under any worker
    /// count).
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report;
}

// ---------------------------------------------------------------------
// Per-figure implementations
// ---------------------------------------------------------------------

struct Fig2a;

impl Experiment for Fig2a {
    fn name(&self) -> &'static str {
        "fig2a"
    }
    fn title(&self) -> &'static str {
        "Downloading throughput vs BER — bi-TCP vs uni-TCP"
    }
    fn default_params(&self) -> ExperimentParams {
        fig2::Fig2aParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        fig2::Fig2aParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        FIG2A_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = fig2::Fig2aParams::from_params(params);
        Report::single(fig2::fig2a_table(&fig2::run_fig2a_with(&p, metrics, seed)))
    }
}

struct Fig2bc;

impl Experiment for Fig2bc {
    fn name(&self) -> &'static str {
        "fig2bc"
    }
    fn title(&self) -> &'static str {
        "Packets sent from client on the wireless leg over time"
    }
    fn default_params(&self) -> ExperimentParams {
        fig2::Fig2bcParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        fig2::Fig2bcParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        FIG2BC_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = fig2::Fig2bcParams::from_params(params);
        let (uni, bi) = fig2::run_fig2bc_pair_with(&p, metrics, seed);
        Report::single(fig2::fig2bc_table(&uni, &bi))
    }
}

struct Fig3ab;

impl Experiment for Fig3ab {
    fn name(&self) -> &'static str {
        "fig3ab"
    }
    fn title(&self) -> &'static str {
        "Aggregate download vs upload limit — wired and wireless"
    }
    fn default_params(&self) -> ExperimentParams {
        fig3::Fig3abParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        fig3::Fig3abParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        FIG3AB_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = fig3::Fig3abParams::from_params(params);
        // Only panel (a) gets the live handle: the panels share series
        // names, and a series must keep a single writer.
        Report {
            tables: vec![
                fig3::fig3ab_table(
                    "Figure 3(a): Aggregate download (KBps) vs upload limit — wired",
                    &fig3::run_fig3a_with(&p, metrics, seed),
                    "paper: monotonically increasing",
                ),
                fig3::fig3ab_table(
                    "Figure 3(b): Aggregate download (KBps) vs upload limit — wireless",
                    &fig3::run_fig3b_with(&p, &MetricsHandle::disabled(), seed),
                    "paper: rises, peaks early, falls",
                ),
            ],
        }
    }
}

struct Fig3c;

impl Experiment for Fig3c {
    fn name(&self) -> &'static str {
        "fig3c"
    }
    fn title(&self) -> &'static str {
        "Downloaded size vs time — incentive & mobility arms"
    }
    fn default_params(&self) -> ExperimentParams {
        fig3::Fig3cParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        fig3::Fig3cParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        FIG3C_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = fig3::Fig3cParams::from_params(params);
        Report::single(fig3::fig3c_table(
            &fig3::run_fig3c_with(&p, metrics, seed),
            10,
        ))
    }
}

struct Fig4a;

impl Experiment for Fig4a {
    fn name(&self) -> &'static str {
        "fig4a"
    }
    fn title(&self) -> &'static str {
        "Fixed-peer throughput vs server mobility rate"
    }
    fn default_params(&self) -> ExperimentParams {
        fig4::Fig4aParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        fig4::Fig4aParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        FIG4A_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = fig4::Fig4aParams::from_params(params);
        Report::single(fig4::fig4a_table(&fig4::run_fig4a_with(&p, metrics, seed)))
    }
}

/// Encodes the two playability panels of Figs. 4(b,c)/9(a,b) under
/// `small.*` / `large.*` key prefixes.
fn panel_params(small: &PlayabilityParams, large: &PlayabilityParams) -> ExperimentParams {
    let mut p = ExperimentParams::new();
    small.to_params_prefixed("small.", &mut p);
    large.to_params_prefixed("large.", &mut p);
    p
}

/// Decodes [`panel_params`], filling gaps from the quick presets.
fn panels_from(p: &ExperimentParams) -> (PlayabilityParams, PlayabilityParams) {
    (
        PlayabilityParams::from_params_prefixed(p, "small.", PlayabilityParams::quick_5mb()),
        PlayabilityParams::from_params_prefixed(p, "large.", PlayabilityParams::quick_large()),
    )
}

struct Fig4bc;

impl Experiment for Fig4bc {
    fn name(&self) -> &'static str {
        "fig4bc"
    }
    fn title(&self) -> &'static str {
        "Playable vs downloaded fraction under rarest-first"
    }
    fn default_params(&self) -> ExperimentParams {
        panel_params(
            &PlayabilityParams::quick_5mb(),
            &PlayabilityParams::quick_large(),
        )
    }
    fn paper_params(&self) -> ExperimentParams {
        panel_params(
            &PlayabilityParams::paper_5mb(),
            &PlayabilityParams::paper_large(),
        )
    }
    fn default_seed(&self) -> u64 {
        FIG4BC_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let (small, large) = panels_from(params);
        // Panel (c) reuses panel (b)'s seed successor, preserving the
        // serial drivers' 0x4B/0x4C pair; only panel (b) gets the live
        // handle (shared series names, single writer).
        Report {
            tables: vec![
                playability::playability_table(
                    "Figure 4(b): Playable % vs downloaded % — 5 MB, rarest-first",
                    &playability::run_playability_with(&small, None, metrics, seed),
                    None,
                ),
                playability::playability_table(
                    "Figure 4(c): Playable % vs downloaded % — large file, rarest-first",
                    &playability::run_playability_with(
                        &large,
                        None,
                        &MetricsHandle::disabled(),
                        seed + 1,
                    ),
                    None,
                ),
            ],
        }
    }
}

struct Fig8a;

impl Experiment for Fig8a {
    fn name(&self) -> &'static str {
        "fig8a"
    }
    fn title(&self) -> &'static str {
        "Throughput vs BER — default vs wP2P (age-based manipulation)"
    }
    fn default_params(&self) -> ExperimentParams {
        fig8::Fig8aParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        fig8::Fig8aParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        FIG8A_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = fig8::Fig8aParams::from_params(params);
        Report::single(fig8::fig8a_table(&fig8::run_fig8a_with(&p, metrics, seed)))
    }
}

struct Fig8b;

impl Experiment for Fig8b {
    fn name(&self) -> &'static str {
        "fig8b"
    }
    fn title(&self) -> &'static str {
        "Downloaded size vs time — identity retention under hand-offs"
    }
    fn default_params(&self) -> ExperimentParams {
        fig8::Fig8bParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        fig8::Fig8bParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        FIG8B_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = fig8::Fig8bParams::from_params(params);
        Report::single(fig8::fig8b_table(
            &fig8::run_fig8b_with(&p, metrics, seed),
            10,
        ))
    }
}

struct Fig8c;

impl Experiment for Fig8c {
    fn name(&self) -> &'static str {
        "fig8c"
    }
    fn title(&self) -> &'static str {
        "Download throughput vs wireless capacity — default vs wP2P (LIHD)"
    }
    fn default_params(&self) -> ExperimentParams {
        fig8::Fig8cParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        fig8::Fig8cParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        FIG8C_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = fig8::Fig8cParams::from_params(params);
        Report::single(fig8::fig8c_table(&fig8::run_fig8c_with(&p, metrics, seed)))
    }
}

struct Fig9ab;

impl Experiment for Fig9ab {
    fn name(&self) -> &'static str {
        "fig9ab"
    }
    fn title(&self) -> &'static str {
        "Playable vs downloaded fraction — rarest-first vs mobility-aware"
    }
    fn default_params(&self) -> ExperimentParams {
        panel_params(
            &PlayabilityParams::quick_5mb(),
            &PlayabilityParams::quick_large(),
        )
    }
    fn paper_params(&self) -> ExperimentParams {
        panel_params(
            &PlayabilityParams::paper_5mb(),
            &PlayabilityParams::paper_large(),
        )
    }
    fn default_seed(&self) -> u64 {
        FIG9AB_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let (small, large) = panels_from(params);
        // Panel (b) takes the seed successor (the serial 0x9A/0x9B pair);
        // only panel (a) gets the live handle.
        Report {
            tables: vec![
                fig9::fig9ab_table(
                    "Figure 9(a): Playable % vs downloaded % — 5 MB",
                    &fig9::run_fig9ab_with(&small, metrics, seed),
                ),
                fig9::fig9ab_table(
                    "Figure 9(b): Playable % vs downloaded % — large file",
                    &fig9::run_fig9ab_with(&large, &MetricsHandle::disabled(), seed + 1),
                ),
            ],
        }
    }
}

struct Fig9c;

impl Experiment for Fig9c {
    fn name(&self) -> &'static str {
        "fig9c"
    }
    fn title(&self) -> &'static str {
        "Mobile-seed upload throughput vs mobility — role reversal"
    }
    fn default_params(&self) -> ExperimentParams {
        fig9::Fig9cParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        fig9::Fig9cParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        FIG9C_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = fig9::Fig9cParams::from_params(params);
        Report::single(fig9::fig9c_table(&fig9::run_fig9c_with(&p, metrics, seed)))
    }
}

struct Scale;

impl Experiment for Scale {
    fn name(&self) -> &'static str {
        "scale"
    }
    fn title(&self) -> &'static str {
        "Large-swarm scale sweep — event-queue health vs swarm size"
    }
    fn default_params(&self) -> ExperimentParams {
        scale::ScaleParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        scale::ScaleParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        SCALE_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = scale::ScaleParams::from_params(params);
        Report::single(scale::scale_table(&scale::run_scale_with(
            &p, metrics, seed,
        )))
    }
}

struct Service;

impl Experiment for Service {
    fn name(&self) -> &'static str {
        "service"
    }
    fn title(&self) -> &'static str {
        "Multi-swarm service tier — sharded trackers, flash crowds, clustering"
    }
    fn default_params(&self) -> ExperimentParams {
        service::ServiceParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        service::ServiceParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        SERVICE_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = service::ServiceParams::from_params(params);
        Report::single(service::service_table(&service::run_service_with(
            &p, metrics, seed,
        )))
    }
}

struct Soak;

impl Experiment for Soak {
    fn name(&self) -> &'static str {
        "soak"
    }
    fn title(&self) -> &'static str {
        "Chaos soak — recovery time after composed fault windows"
    }
    fn default_params(&self) -> ExperimentParams {
        soak::SoakParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        soak::SoakParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        SOAK_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = soak::SoakParams::from_params(params);
        Report::single(soak::soak_table(&soak::run_soak_with(&p, metrics, seed)))
    }
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

struct Exploit;

impl Experiment for Exploit {
    fn name(&self) -> &'static str {
        "exploit"
    }
    fn title(&self) -> &'static str {
        "Identity-retention exploit probe — honest retainers vs deliberate id-churners"
    }
    fn default_params(&self) -> ExperimentParams {
        exploit::ExploitParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        exploit::ExploitParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        EXPLOIT_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = exploit::ExploitParams::from_params(params);
        Report::single(exploit::exploit_table(&exploit::run_exploit_with(
            &p, metrics, seed,
        )))
    }
}

struct Erosion;

impl Experiment for Erosion {
    fn name(&self) -> &'static str {
        "erosion"
    }
    fn title(&self) -> &'static str {
        "Free-rider erosion — fig8 retention lead vs adversarial population share"
    }
    fn default_params(&self) -> ExperimentParams {
        erosion::ErosionParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        erosion::ErosionParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        EROSION_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = erosion::ErosionParams::from_params(params);
        Report::single(erosion::erosion_table(&erosion::run_erosion_with(
            &p, metrics, seed,
        )))
    }
}

struct Blackout;

impl Experiment for Blackout {
    fn name(&self) -> &'static str {
        "blackout"
    }
    fn title(&self) -> &'static str {
        "Dark tracker tier — replica failover, overload shedding, PEX fallback"
    }
    fn default_params(&self) -> ExperimentParams {
        blackout::BlackoutParams::quick().to_params()
    }
    fn paper_params(&self) -> ExperimentParams {
        blackout::BlackoutParams::paper().to_params()
    }
    fn default_seed(&self) -> u64 {
        BLACKOUT_SEED
    }
    fn run(&self, params: &ExperimentParams, metrics: &MetricsHandle, seed: u64) -> Report {
        let p = blackout::BlackoutParams::from_params(params);
        Report::single(blackout::blackout_table(&blackout::run_blackout_with(
            &p, metrics, seed,
        )))
    }
}

static EXPERIMENTS: &[&dyn Experiment] = &[
    &Fig2a, &Fig2bc, &Fig3ab, &Fig3c, &Fig4a, &Fig4bc, &Fig8a, &Fig8b, &Fig8c, &Fig9ab, &Fig9c,
    &Scale, &Soak, &Service, &Exploit, &Erosion, &Blackout,
];

/// Every registered experiment, in the order `all_figures` runs them.
pub fn all() -> &'static [&'static dyn Experiment] {
    EXPERIMENTS
}

/// The experiment with exactly this name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    EXPERIMENTS.iter().copied().find(|e| e.name() == name)
}

/// Experiments whose name contains `pattern` (the `--only` filter).
pub fn matching(pattern: &str) -> Vec<&'static dyn Experiment> {
    EXPERIMENTS
        .iter()
        .copied()
        .filter(|e| e.name().contains(pattern))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_are_unique_and_resolvable() {
        let names: BTreeSet<&str> = all().iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), all().len(), "duplicate experiment name");
        for e in all() {
            let found = find(e.name()).expect("every name resolves");
            assert_eq!(found.name(), e.name());
            assert!(!e.title().is_empty());
        }
        assert!(find("fig2a").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn matching_implements_only_filter() {
        let fig8: Vec<&str> = matching("fig8").iter().map(|e| e.name()).collect();
        assert_eq!(fig8, vec!["fig8a", "fig8b", "fig8c"]);
        assert_eq!(matching("").len(), all().len());
        assert!(matching("zzz").is_empty());
    }

    #[test]
    fn params_json_round_trip_for_every_experiment() {
        for e in all() {
            for params in [e.default_params(), e.paper_params()] {
                let text = params.to_json();
                let back = ExperimentParams::from_json(&text)
                    .unwrap_or_else(|err| panic!("{}: {err}", e.name()));
                assert_eq!(params, back, "{} params round trip", e.name());
                assert!(!params.is_empty(), "{} has no params", e.name());
            }
        }
    }

    #[test]
    fn registry_runs_fig2bc_end_to_end() {
        let e = find("fig2bc").expect("fig2bc registered");
        let report = e.run(
            &e.default_params(),
            &MetricsHandle::disabled(),
            e.default_seed(),
        );
        assert_eq!(report.tables.len(), 1);
        assert!(!report.tables[0].is_empty());
    }
}
