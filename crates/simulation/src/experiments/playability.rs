//! Shared driver for the playability experiments (Figs. 4(b,c) and
//! 9(a,b)): download a media file in a swarm and record what fraction of
//! it is *playable* (in-sequence from the head) at each downloaded
//! fraction.

use super::common::{populate_swarm, synthetic_torrent, SwarmSetup};
use super::params::{builder_setters, ExperimentParams};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskSpec};
use crate::harness::SweepRunner;
use crate::report::Table;
use bittorrent::client::ClientConfig;
use media_model::playable_fraction;
use metrics::handle::MetricsHandle;
use simnet::time::{SimDuration, SimTime};
use wp2p::config::WP2pConfig;
use wp2p::ma::PrSchedule;

/// Parameters of one playability curve measurement.
#[derive(Clone, Debug)]
pub struct PlayabilityParams {
    /// File size (the paper uses 5 MB and 100 MB).
    pub file_size: u64,
    /// Piece length (the paper's default 256 KB).
    pub piece_length: u32,
    /// Background swarm.
    pub swarm: SwarmSetup,
    /// Access network of the measured client.
    pub client_access: Access,
    /// Runs to average (paper: 10 for Fig. 4, 20 for Fig. 9).
    pub runs: u64,
    /// Downloaded-fraction grid resolution (number of bins).
    pub grid: usize,
    /// Per-run timeout.
    pub timeout: SimDuration,
}

impl PlayabilityParams {
    /// The paper's 5 MB panel at reduced run count.
    pub fn quick_5mb() -> Self {
        PlayabilityParams {
            file_size: 5 * 1024 * 1024,
            piece_length: 256 * 1024,
            swarm: SwarmSetup::small(),
            client_access: Access::Wireless {
                capacity: 200_000.0,
            },
            runs: 4,
            grid: 20,
            timeout: SimDuration::from_mins(10),
        }
    }

    /// The paper's 5 MB panel.
    pub fn paper_5mb() -> Self {
        PlayabilityParams {
            runs: 10,
            ..Self::quick_5mb()
        }
    }

    /// The paper's 100 MB panel (quick variant scales the file down but
    /// keeps the piece count high enough for the effect).
    pub fn quick_large() -> Self {
        PlayabilityParams {
            file_size: 25 * 1024 * 1024,
            piece_length: 256 * 1024,
            swarm: SwarmSetup::small(),
            client_access: Access::Wireless {
                capacity: 400_000.0,
            },
            runs: 2,
            grid: 20,
            timeout: SimDuration::from_mins(20),
        }
    }

    /// The paper's 100 MB panel.
    pub fn paper_large() -> Self {
        PlayabilityParams {
            file_size: 100 * 1024 * 1024,
            runs: 10,
            timeout: SimDuration::from_mins(60),
            ..Self::quick_large()
        }
    }

    /// Converts to the registry's untyped parameter map, prefixing every
    /// key with `prefix` (two panels share one map).
    pub fn to_params_prefixed(&self, prefix: &str, p: &mut ExperimentParams) {
        p.set_num(&format!("{prefix}file_size"), self.file_size as f64);
        p.set_num(&format!("{prefix}piece_length"), self.piece_length as f64);
        p.set_swarm(&format!("{prefix}swarm"), &self.swarm);
        p.set_access(&format!("{prefix}client_access"), self.client_access);
        p.set_num(&format!("{prefix}runs"), self.runs as f64);
        p.set_num(&format!("{prefix}grid"), self.grid as f64);
        p.set_dur(&format!("{prefix}timeout_s"), self.timeout);
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        self.to_params_prefixed("", &mut p);
        p
    }

    /// Builds from an untyped map, filling gaps from `base`; reads the
    /// keys written by [`Self::to_params_prefixed`].
    pub fn from_params_prefixed(p: &ExperimentParams, prefix: &str, base: Self) -> Self {
        PlayabilityParams {
            file_size: p.u64_or(&format!("{prefix}file_size"), base.file_size),
            piece_length: p.u32_or(&format!("{prefix}piece_length"), base.piece_length),
            swarm: p.swarm_or(&format!("{prefix}swarm"), &base.swarm),
            client_access: p.access_or(&format!("{prefix}client_access"), base.client_access),
            runs: p.u64_or(&format!("{prefix}runs"), base.runs),
            grid: p.usize_or(&format!("{prefix}grid"), base.grid),
            timeout: p.dur_or(&format!("{prefix}timeout_s"), base.timeout),
        }
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick_5mb`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        Self::from_params_prefixed(p, "", Self::quick_5mb())
    }
}

builder_setters!(PlayabilityParams {
    file_size: u64,
    piece_length: u32,
    swarm: SwarmSetup,
    client_access: Access,
    runs: u64,
    grid: usize,
    timeout: SimDuration,
});

/// A playability curve: `playable[i]` is the playable fraction when
/// `downloaded ≈ (i+1)/grid`.
#[derive(Clone, Debug)]
pub struct PlayabilityCurve {
    /// Downloaded-fraction grid points (bin upper edges).
    pub downloaded: Vec<f64>,
    /// Mean playable fraction at each grid point.
    pub playable: Vec<f64>,
}

impl PlayabilityCurve {
    /// Playable fraction at the grid point closest to `downloaded`.
    pub fn playable_at(&self, downloaded: f64) -> f64 {
        let idx = self
            .downloaded
            .iter()
            .position(|&d| d >= downloaded)
            .unwrap_or(self.downloaded.len() - 1);
        self.playable[idx]
    }
}

/// [`run_playability`] with metrics: the first run's world is wired into
/// `metrics`, and the measured client's playable fraction is recorded as
/// the `playability.playable` series.
pub fn run_playability_with(
    params: &PlayabilityParams,
    fetching: Option<PrSchedule>,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> PlayabilityCurve {
    let grid = params.grid;
    // One sweep point, `runs` cells: each run simulates independently in
    // parallel and returns its forward-filled per-bin curve; the curves
    // are then averaged in cell order.
    let per_run_curves = SweepRunner::new("playability", base_seed)
        .with_metrics(metrics)
        .run(&[()], params.runs as usize, |_, cell| {
            let handle = if cell.run == 0 {
                metrics.clone()
            } else {
                MetricsHandle::disabled()
            };
            let seed = cell.run_seed;
            let mut w = FlowWorld::new(FlowConfig::default(), seed);
            w.set_metrics(&handle);
            let torrent =
                synthetic_torrent("media.mpg", params.piece_length, params.file_size, seed);
            populate_swarm(&mut w, torrent, &params.swarm);
            let node = w.add_node(params.client_access);
            let task = w.add_task(TaskSpec {
                node,
                torrent,
                start_complete: false,
                start_fraction: None,
                start_at: SimTime::ZERO,
                make_config: Box::new(ClientConfig::default),
                wp2p: WP2pConfig {
                    mobility_fetching: fetching,
                    ..WP2pConfig::default_client()
                },
            });
            w.start();
            // Sample (downloaded, playable) after every tick; record the
            // latest sample within each bin, so bin i reports the
            // playability when the download stood at ≈ its upper edge.
            let mut per_run: Vec<Option<f64>> = vec![None; grid];
            let piece_length = params.piece_length;
            let file_size = params.file_size;
            let deadline = SimTime::ZERO + params.timeout;
            let s_play = handle.series("playability.playable");
            w.run_until(deadline, |w| {
                let f = w.progress_fraction(task);
                if f <= 0.0 {
                    return;
                }
                let p = w.with_progress(task, |pr| {
                    playable_fraction(pr.have(), piece_length, file_size)
                });
                s_play.record(w.now(), p);
                let bin = ((f * grid as f64).ceil() as usize).clamp(1, grid) - 1;
                per_run[bin] = Some(p);
            });
            cell.add_virtual_secs(w.now().as_secs_f64());
            // Forward-fill bins that were jumped over (e.g. several
            // pieces in one tick) with the previous observation.
            let mut last = 0.0;
            per_run
                .into_iter()
                .map(|slot| {
                    last = slot.unwrap_or(last);
                    last
                })
                .collect::<Vec<f64>>()
        });
    let mut sums = vec![0.0f64; grid];
    let mut counts = vec![0u64; grid];
    for curve in per_run_curves.into_iter().flatten() {
        for (i, v) in curve.into_iter().enumerate() {
            sums[i] += v;
            counts[i] += 1;
        }
    }
    PlayabilityCurve {
        downloaded: (1..=grid).map(|i| i as f64 / grid as f64).collect(),
        playable: sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect(),
    }
}

/// Renders one or two playability curves as a table.
pub fn playability_table(
    title: &str,
    default_curve: &PlayabilityCurve,
    wp2p_curve: Option<&PlayabilityCurve>,
) -> Table {
    let mut t = Table::new(title);
    if wp2p_curve.is_some() {
        t.headers(["downloaded %", "default (rarest) %", "wP2P (MF) %"]);
    } else {
        t.headers(["downloaded %", "playable %"]);
    }
    for (i, &d) in default_curve.downloaded.iter().enumerate() {
        let mut row = vec![
            format!("{:.0}", d * 100.0),
            format!("{:.1}", default_curve.playable[i] * 100.0),
        ];
        if let Some(w) = wp2p_curve {
            row.push(format!("{:.1}", w.playable[i] * 100.0));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PlayabilityParams {
        PlayabilityParams::quick_5mb()
            .file_size(4 * 1024 * 1024)
            .piece_length(128 * 1024)
            .client_access(Access::Wireless {
                capacity: 300_000.0,
            })
            .runs(2)
            .grid(10)
            .timeout(SimDuration::from_mins(8))
    }

    fn run_plain(
        params: &PlayabilityParams,
        fetching: Option<PrSchedule>,
        seed: u64,
    ) -> PlayabilityCurve {
        run_playability_with(params, fetching, &MetricsHandle::disabled(), seed)
    }

    #[test]
    fn rarest_first_leaves_prefix_unplayable() {
        let curve = run_plain(&tiny(), None, 0xBEEF);
        // At half the download, the playable prefix is a small fraction.
        let mid = curve.playable_at(0.5);
        assert!(
            mid < 0.35,
            "rarest-first should scatter pieces: playable at 50% = {mid}"
        );
        // Complete download is fully playable.
        let end = curve.playable[curve.playable.len() - 1];
        assert!(end > 0.95, "full download must be playable, got {end}");
    }

    #[test]
    fn mobility_aware_fetching_keeps_prefix_playable() {
        let params = tiny();
        let default_curve = run_plain(&params, None, 0xAB);
        let mf_curve = run_plain(&params, Some(PrSchedule::DownloadedFraction), 0xAB);
        let d_mid = default_curve.playable_at(0.5);
        let m_mid = mf_curve.playable_at(0.5);
        assert!(
            m_mid > d_mid,
            "MF should beat rarest-first at 50%: mf={m_mid} default={d_mid}"
        );
        // And substantially so, per the paper (~30% vs ~5%).
        assert!(m_mid > 0.2, "MF playable at 50% too low: {m_mid}");
    }

    #[test]
    fn curves_are_monotone_nondecreasing() {
        let curve = run_plain(&tiny(), Some(PrSchedule::DownloadedFraction), 7);
        for w in curve.playable.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "playability must not decrease with more data: {:?}",
                curve.playable
            );
        }
    }

    #[test]
    fn table_renders_both_arms() {
        let params = tiny().runs(1);
        let a = run_plain(&params, None, 1);
        let b = run_plain(&params, Some(PrSchedule::DownloadedFraction), 1);
        let t = playability_table("demo", &a, Some(&b));
        assert_eq!(t.len(), params.grid);
    }

    #[test]
    fn playability_params_round_trip() {
        let p = PlayabilityParams::paper_large();
        let q = PlayabilityParams::from_params(
            &ExperimentParams::from_json(&p.to_params().to_json()).unwrap(),
        );
        assert_eq!(format!("{p:?}"), format!("{q:?}"));
    }
}
