//! **Free-rider erosion** — how much of the Fig. 8(b) mobile-host gain
//! survives an adversarial population?
//!
//! The paper evaluates identity retention in a cooperative swarm: every
//! fixed peer plays honest tit-for-tat, so a mobile client that keeps its
//! peer-id across hand-offs re-enters with standing and pulls ahead of one
//! that does not. This experiment erodes that assumption. A fraction `f`
//! of the background leeches run the [`FreeRider`](bittorrent::strategy::FreeRider)
//! strategy (serve nothing, camp optimistic slots); the two Fig. 8(b)
//! mobile probes — one default client, one with identity retention — ride
//! the same swarm, and we sweep `f` from 0 to 40 %.
//!
//! The free-rider assignment is *nested*: leech `i`'s class depends only
//! on `(mix, world seed, i)`, so the 20 % population is a superset of the
//! 10 % one and each share point differs from its neighbour exactly by the
//! newly-defected peers — the sweep measures erosion, not resampling
//! noise. Within one run every share point also reuses the same world
//! seed, so the swarms are identical up to the defections.

use super::common::{populate_swarm_with_mix, synthetic_torrent, SwarmSetup};
use super::params::{builder_setters, ExperimentParams};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskSpec};
use crate::harness::SweepRunner;
use crate::report::{mb, Table};
use bittorrent::client::ClientConfig;
use bittorrent::strategy::PopulationMix;
use metrics::handle::MetricsHandle;
use simnet::mobility::MobilityProcess;
use simnet::time::{SimDuration, SimTime};
use wp2p::config::WP2pConfig;

/// Base seed of the erosion sweep.
pub const EROSION_SEED: u64 = 0xE805;

/// Parameters for the erosion sweep.
#[derive(Clone, Debug)]
pub struct ErosionParams {
    /// Free-rider shares to sweep (fractions of background leeches).
    pub shares: Vec<f64>,
    /// File size.
    pub file_size: u64,
    /// Piece length.
    pub piece_length: u32,
    /// Background swarm (its leeches are the mixed population).
    pub swarm: SwarmSetup,
    /// Hand-off period of the two mobile probes.
    pub mobility_period: SimDuration,
    /// Hand-off outage.
    pub outage: SimDuration,
    /// Run length.
    pub duration: SimDuration,
    /// Wireless capacity of the two mobile probes.
    pub wireless_capacity: f64,
    /// Runs to average per share point.
    pub runs: u64,
}

impl ErosionParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        ErosionParams {
            shares: vec![0.0, 0.2, 0.4],
            file_size: 48 * 1024 * 1024,
            piece_length: 256 * 1024,
            swarm: SwarmSetup {
                seeds: 2,
                seed_access: Access::Wired {
                    up: 100_000.0,
                    down: 500_000.0,
                },
                leeches: 10,
                leech_access: Access::residential(),
                leech_head_start: 0.5,
            },
            mobility_period: SimDuration::from_secs(60),
            outage: SimDuration::from_secs(5),
            duration: SimDuration::from_mins(10),
            wireless_capacity: 250_000.0,
            runs: 3,
        }
    }

    /// Paper-scale preset: the Fig. 8(b) swarm with a five-point share
    /// sweep and averaging.
    pub fn paper() -> Self {
        ErosionParams {
            shares: vec![0.0, 0.1, 0.2, 0.3, 0.4],
            file_size: 688 * 1024 * 1024,
            piece_length: 256 * 1024,
            swarm: SwarmSetup {
                seeds: 20,
                seed_access: Access::Wired {
                    up: 150_000.0,
                    down: 500_000.0,
                },
                leeches: 180,
                leech_access: Access::residential(),
                leech_head_start: 0.5,
            },
            mobility_period: SimDuration::from_secs(60),
            outage: SimDuration::from_secs(5),
            duration: SimDuration::from_mins(50),
            wireless_capacity: 500_000.0,
            runs: 3,
        }
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_list("shares", &self.shares);
        p.set_num("file_size", self.file_size as f64);
        p.set_num("piece_length", self.piece_length as f64);
        p.set_swarm("swarm", &self.swarm);
        p.set_dur("mobility_period_s", self.mobility_period);
        p.set_dur("outage_s", self.outage);
        p.set_dur("duration_s", self.duration);
        p.set_num("wireless_capacity", self.wireless_capacity);
        p.set_num("runs", self.runs as f64);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        ErosionParams {
            shares: p.list_or("shares", &base.shares),
            file_size: p.u64_or("file_size", base.file_size),
            piece_length: p.u32_or("piece_length", base.piece_length),
            swarm: p.swarm_or("swarm", &base.swarm),
            mobility_period: p.dur_or("mobility_period_s", base.mobility_period),
            outage: p.dur_or("outage_s", base.outage),
            duration: p.dur_or("duration_s", base.duration),
            wireless_capacity: p.num_or("wireless_capacity", base.wireless_capacity),
            runs: p.u64_or("runs", base.runs),
        }
    }
}

builder_setters!(ErosionParams {
    shares: Vec<f64>,
    file_size: u64,
    piece_length: u32,
    swarm: SwarmSetup,
    mobility_period: SimDuration,
    outage: SimDuration,
    duration: SimDuration,
    wireless_capacity: f64,
    runs: u64,
});

/// One share point's result (means over runs).
#[derive(Clone, Debug, PartialEq)]
pub struct ErosionPoint {
    /// Free-rider share of the background leeches.
    pub share: f64,
    /// Free riders actually seated among the leeches (run-0 census).
    pub free_riders: usize,
    /// Mean final bytes of the default mobile probe.
    pub default_bytes: f64,
    /// Mean final bytes of the retaining mobile probe.
    pub retention_bytes: f64,
    /// Mean retention lead (retention − default; the Fig. 8(b) gain).
    pub lead: f64,
}

/// Gauge-name percentage for a share: `0.2` → `20`.
pub fn share_pct(share: f64) -> u32 {
    (share * 100.0).round() as u32
}

/// Runs the erosion sweep.
pub fn run_erosion_with(
    params: &ErosionParams,
    metrics: &MetricsHandle,
    seed: u64,
) -> Vec<ErosionPoint> {
    run_erosion_impl(params, metrics, seed, None)
}

/// [`run_erosion_with`] pinned to an explicit worker count (determinism
/// tests compare 1 vs many).
pub fn run_erosion_with_threads(
    params: &ErosionParams,
    metrics: &MetricsHandle,
    seed: u64,
    threads: usize,
) -> Vec<ErosionPoint> {
    run_erosion_impl(params, metrics, seed, Some(threads))
}

fn run_erosion_impl(
    params: &ErosionParams,
    metrics: &MetricsHandle,
    base_seed: u64,
    threads: Option<usize>,
) -> Vec<ErosionPoint> {
    let idxs: Vec<usize> = (0..params.shares.len()).collect();
    let dur = params.duration.as_secs_f64();
    let mut runner = SweepRunner::new("erosion", base_seed).with_metrics(metrics);
    if let Some(n) = threads {
        runner = runner.with_threads(n);
    }
    let cells = runner.run(&idxs, params.runs as usize, |&i, cell| {
        cell.add_virtual_secs(dur);
        let handle = if cell.point == 0 && cell.run == 0 {
            metrics.clone()
        } else {
            MetricsHandle::disabled()
        };
        // The *run* seed, not the cell seed: every share point of one run
        // rides the same world and the same nested mix assignment, so a
        // point differs from its neighbour only by the extra defectors.
        run_erosion_once(params, params.shares[i], &handle, cell.run_seed)
    });
    let points: Vec<ErosionPoint> = idxs
        .iter()
        .zip(cells)
        .map(|(&i, runs)| {
            let n = runs.len() as f64;
            let default_bytes = runs.iter().map(|r| r.default_bytes as f64).sum::<f64>() / n;
            let retention_bytes = runs.iter().map(|r| r.retention_bytes as f64).sum::<f64>() / n;
            ErosionPoint {
                share: params.shares[i],
                free_riders: runs[0].free_riders,
                default_bytes,
                retention_bytes,
                lead: retention_bytes - default_bytes,
            }
        })
        .collect();
    // Single sequential writer after the sweep: worker count cannot
    // reorder the gauges.
    for p in &points {
        let g = |suffix: &str| metrics.gauge(&format!("erosion.fr{}.{suffix}", share_pct(p.share)));
        g("default_bytes").set(p.default_bytes);
        g("retention_bytes").set(p.retention_bytes);
        g("lead").set(p.lead);
        g("free_riders").set(p.free_riders as f64);
    }
    points
}

/// One world: the Fig. 8(b) scenario over a mixed background population.
struct ErosionRun {
    free_riders: usize,
    default_bytes: u64,
    retention_bytes: u64,
}

fn run_erosion_once(
    params: &ErosionParams,
    share: f64,
    metrics: &MetricsHandle,
    world_seed: u64,
) -> ErosionRun {
    let mut cfg = FlowConfig::default();
    cfg.tracker.announce_interval = SimDuration::from_mins(5);
    let mut w = FlowWorld::new(cfg, world_seed);
    w.set_metrics(metrics);
    let torrent =
        synthetic_torrent("erosion.bin", params.piece_length, params.file_size, world_seed);
    let mix = PopulationMix::free_riders(share);
    populate_swarm_with_mix(&mut w, torrent, &params.swarm, mix, world_seed);
    let census = mix.census(world_seed, params.swarm.leeches as u64);
    let add_mobile = |w: &mut FlowWorld, retention: bool| {
        let node = w.add_node(Access::Wireless {
            capacity: params.wireless_capacity,
        });
        let task = w.add_task(TaskSpec {
            node,
            torrent,
            start_complete: false,
            start_fraction: None,
            start_at: SimTime::ZERO,
            make_config: Box::new(ClientConfig::default),
            wp2p: if retention {
                WP2pConfig::identity_only()
            } else {
                WP2pConfig::default_client()
            },
        });
        w.set_mobility(
            node,
            MobilityProcess::with_jitter(params.mobility_period, params.outage, 0.05),
        );
        task
    };
    let default_task = add_mobile(&mut w, false);
    let retention_task = add_mobile(&mut w, true);
    w.start();
    w.run_for(params.duration, |_| {});
    ErosionRun {
        free_riders: census[1],
        default_bytes: w.downloaded_bytes(default_task),
        retention_bytes: w.downloaded_bytes(retention_task),
    }
}

/// Renders the erosion sweep.
pub fn erosion_table(points: &[ErosionPoint]) -> Table {
    let mut t = Table::new(
        "Free-rider erosion: Fig. 8(b) retention lead vs free-rider share of background leeches",
    );
    t.headers([
        "free riders",
        "seated",
        "default (MB)",
        "retention (MB)",
        "lead (MB)",
    ]);
    for p in points {
        t.row([
            format!("{}%", share_pct(p.share)),
            p.free_riders.to_string(),
            mb(p.default_bytes as u64),
            mb(p.retention_bytes as u64),
            format!("{:.1}", p.lead / (1024.0 * 1024.0)),
        ]);
    }
    t.note(
        "identity retention's gain is earned standing with peers that reciprocate; \
free riders reciprocate with nobody, so each defection shrinks the pool the \
retained identity can collect from and the lead erodes toward zero",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::InvariantChecker;
    use simnet::addr::NodeId;
    use simnet::fault::{FaultInjector, FaultPlan, FaultPlanConfig};

    fn tiny() -> ErosionParams {
        ErosionParams::quick()
            .file_size(12 * 1024 * 1024)
            .duration(SimDuration::from_mins(5))
            .swarm(SwarmSetup {
                seeds: 2,
                seed_access: Access::Wired {
                    up: 100_000.0,
                    down: 500_000.0,
                },
                leeches: 8,
                leech_access: Access::residential(),
                leech_head_start: 0.5,
            })
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let p = tiny();
        let a = run_erosion_with(&p, &MetricsHandle::disabled(), EROSION_SEED);
        let b = run_erosion_with(&p, &MetricsHandle::disabled(), EROSION_SEED);
        assert_eq!(a, b, "erosion sweep not deterministic for a fixed seed");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let p = tiny();
        let one = run_erosion_with_threads(&p, &MetricsHandle::disabled(), EROSION_SEED, 1);
        let four = run_erosion_with_threads(&p, &MetricsHandle::disabled(), EROSION_SEED, 4);
        assert_eq!(one, four, "erosion sweep depends on worker count");
    }

    #[test]
    fn free_riders_erode_the_retention_lead() {
        let p = ErosionParams::quick();
        let points = run_erosion_with(&p, &MetricsHandle::disabled(), EROSION_SEED);
        assert_eq!(points.len(), 3);
        assert!(
            points[0].lead > 0.0,
            "cooperative swarm must reproduce the fig8 retention lead, got {:.0}",
            points[0].lead
        );
        // More defectors never seat fewer free riders (nested assignment)…
        assert!(points.windows(2).all(|w| w[0].free_riders <= w[1].free_riders));
        // …and the lead degrades monotonically with the share, modulo a
        // small tolerance for scheduling noise at these swarm sizes.
        let slack = 0.05 * points[0].lead.abs();
        for w in points.windows(2) {
            assert!(
                w[1].lead <= w[0].lead + slack,
                "lead should not grow with free-rider share: {:.0} -> {:.0} (share {} -> {})",
                w[0].lead,
                w[1].lead,
                w[0].share,
                w[1].share
            );
        }
        assert!(
            points[2].lead < 0.6 * points[0].lead,
            "40% free riders should erode most of the lead: {:.0} vs {:.0}",
            points[2].lead,
            points[0].lead
        );
    }

    /// Satellite of the strategy-determinism contract: a mixed population
    /// under seeded fault injection replays byte-identically, trace
    /// included — the strategy hooks add no hidden nondeterminism to the
    /// `--faults` path.
    #[test]
    fn mixed_population_fault_replay_is_byte_identical() {
        let replay = |seed: u64| {
            let torrent = synthetic_torrent("erosion-faults.bin", 256 * 1024, 4 * 1024 * 1024, seed);
            let mut w = FlowWorld::new(FlowConfig::default(), seed);
            let mix = PopulationMix {
                free_rider: 0.25,
                strategic: 0.25,
                hybrid: 0.25,
                hybrid_degrade: 0.5,
            };
            let (_seeds, tasks) = populate_swarm_with_mix(
                &mut w,
                torrent,
                &SwarmSetup::small(),
                mix,
                seed,
            );
            let nodes: Vec<NodeId> = (0..w.node_count()).map(|n| NodeId(n as u32)).collect();
            let horizon = SimDuration::from_secs(60);
            let mut cfg = FaultPlanConfig::new(horizon, nodes);
            cfg.events = 8;
            cfg.tracker_outages = true;
            cfg.crashes = true;
            let plan = FaultPlan::generate(seed, &cfg);
            let mut inj = FaultInjector::new(&plan);
            let mut ck = InvariantChecker::new();
            w.start();
            w.run_until(SimTime::ZERO + horizon, |w| {
                inj.poll(w);
                ck.check_flow(w);
            });
            let progress: Vec<f64> = tasks.iter().map(|&t| w.progress_fraction(t)).collect();
            (plan.render(), w.trace().render(), inj.applied(), progress)
        };
        let a = replay(0xE8_05FA);
        let b = replay(0xE8_05FA);
        assert_eq!(a.0, b.0, "fault schedule not deterministic");
        assert_eq!(a.1, b.1, "mixed-population world trace not deterministic");
        assert_eq!(a.2, b.2);
        assert_eq!(a.3, b.3);
    }
}
