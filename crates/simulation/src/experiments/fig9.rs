//! **Figure 9 — wP2P evaluation: mobility-aware fetching and role
//! reversal** (paper §5.2.3–5.2.4).
//!
//! * Panels (a, b): playable fraction vs. downloaded fraction for the
//!   default rarest-first client vs. wP2P's mobility-aware fetching with
//!   `p_r = downloaded fraction` (the paper's evaluation setting), for a
//!   small and a large file.
//! * Panel (c): upload throughput of two mobile *seeds* vs. their hand-off
//!   rate, default vs. role reversal. A default seed that moves goes dark
//!   until leeches re-poll the tracker; a role-reversing seed dials its
//!   stored peers the moment it reconnects.

use super::common::{synthetic_torrent, SwarmSetup};
use super::params::{builder_setters, decode_periods, encode_periods, ExperimentParams};
use super::playability::{run_playability_with, PlayabilityCurve, PlayabilityParams};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskSpec};
use crate::harness::SweepRunner;
use crate::report::{kbps, Table};
use bittorrent::client::ClientConfig;
use bittorrent::tracker::TrackerConfig;
use metrics::handle::MetricsHandle;
use metrics::stats::RunSummary;
use simnet::mobility::MobilityProcess;
use simnet::time::{SimDuration, SimTime};
use wp2p::config::WP2pConfig;
use wp2p::ma::PrSchedule;

/// Seed of the Fig. 9(a) panel ((b) uses the successor).
pub const FIG9AB_SEED: u64 = 0x9A;
/// Base seed of the Fig. 9(c) sweep.
pub const FIG9C_SEED: u64 = 0xF9C;

// ---------------------------------------------------------------------
// Fig. 9(a, b): mobility-aware fetching
// ---------------------------------------------------------------------

/// Result of one Fig. 9(a)/(b) panel: both arms' curves.
#[derive(Clone, Debug)]
pub struct Fig9abResult {
    /// Default rarest-first curve.
    pub default_curve: PlayabilityCurve,
    /// wP2P mobility-aware fetching curve.
    pub wp2p_curve: PlayabilityCurve,
}

/// [`run_fig9ab`] with metrics: only the default arm is wired into
/// `metrics` (the series writers must stay single-run deterministic).
pub fn run_fig9ab_with(
    params: &PlayabilityParams,
    metrics: &MetricsHandle,
    seed: u64,
) -> Fig9abResult {
    Fig9abResult {
        default_curve: run_playability_with(params, None, metrics, seed),
        wp2p_curve: run_playability_with(
            params,
            Some(PrSchedule::DownloadedFraction),
            &MetricsHandle::disabled(),
            seed,
        ),
    }
}

/// Renders a Fig. 9(a)/(b) panel.
pub fn fig9ab_table(title: &str, result: &Fig9abResult) -> Table {
    super::playability::playability_table(title, &result.default_curve, Some(&result.wp2p_curve))
}

// ---------------------------------------------------------------------
// Fig. 9(c): role reversal
// ---------------------------------------------------------------------

/// Parameters for Fig. 9(c).
#[derive(Clone, Debug)]
pub struct Fig9cParams {
    /// Hand-off periods to sweep (paper: 6, 4, 2 minutes).
    pub periods: Vec<SimDuration>,
    /// File size (paper: the 688 MB Fedora image; scaled here).
    pub file_size: u64,
    /// Piece length.
    pub piece_length: u32,
    /// Background swarm (has its own seed so leeches are never starved —
    /// the mobile seeds' dead time is pure upload loss).
    pub swarm: SwarmSetup,
    /// Wireless capacity of each mobile seed.
    pub seed_capacity: f64,
    /// Hand-off outage.
    pub outage: SimDuration,
    /// Measurement duration.
    pub duration: SimDuration,
    /// Runs to average (paper: 10).
    pub runs: u64,
    /// Tracker announce interval (bounds leech rediscovery).
    pub tracker_interval: SimDuration,
}

impl Fig9cParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        Fig9cParams {
            periods: vec![SimDuration::from_secs(240), SimDuration::from_secs(120)],
            file_size: 64 * 1024 * 1024,
            piece_length: 256 * 1024,
            swarm: SwarmSetup {
                seeds: 1,
                seed_access: Access::Wired {
                    up: 60_000.0,
                    down: 500_000.0,
                },
                leeches: 8,
                leech_access: Access::residential(),
                leech_head_start: 0.5,
            },
            seed_capacity: 150_000.0,
            outage: SimDuration::from_secs(5),
            duration: SimDuration::from_mins(10),
            runs: 1,
            tracker_interval: SimDuration::from_secs(150),
        }
    }

    /// Paper-scale preset.
    pub fn paper() -> Self {
        Fig9cParams {
            periods: vec![
                SimDuration::from_secs(360),
                SimDuration::from_secs(240),
                SimDuration::from_secs(120),
            ],
            file_size: 256 * 1024 * 1024,
            piece_length: 256 * 1024,
            swarm: SwarmSetup {
                seeds: 2,
                seed_access: Access::Wired {
                    up: 60_000.0,
                    down: 500_000.0,
                },
                leeches: 16,
                leech_access: Access::residential(),
                leech_head_start: 0.5,
            },
            seed_capacity: 150_000.0,
            outage: SimDuration::from_secs(5),
            duration: SimDuration::from_mins(20),
            runs: 5,
            tracker_interval: SimDuration::from_secs(150),
        }
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_list("periods_s", &encode_periods(&self.periods));
        p.set_num("file_size", self.file_size as f64);
        p.set_num("piece_length", self.piece_length as f64);
        p.set_swarm("swarm", &self.swarm);
        p.set_num("seed_capacity", self.seed_capacity);
        p.set_dur("outage_s", self.outage);
        p.set_dur("duration_s", self.duration);
        p.set_num("runs", self.runs as f64);
        p.set_dur("tracker_interval_s", self.tracker_interval);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        Fig9cParams {
            periods: decode_periods(&p.list_or("periods_s", &encode_periods(&base.periods))),
            file_size: p.u64_or("file_size", base.file_size),
            piece_length: p.u32_or("piece_length", base.piece_length),
            swarm: p.swarm_or("swarm", &base.swarm),
            seed_capacity: p.num_or("seed_capacity", base.seed_capacity),
            outage: p.dur_or("outage_s", base.outage),
            duration: p.dur_or("duration_s", base.duration),
            runs: p.u64_or("runs", base.runs),
            tracker_interval: p.dur_or("tracker_interval_s", base.tracker_interval),
        }
    }
}

builder_setters!(Fig9cParams {
    periods: Vec<SimDuration>,
    file_size: u64,
    piece_length: u32,
    swarm: SwarmSetup,
    seed_capacity: f64,
    outage: SimDuration,
    duration: SimDuration,
    runs: u64,
    tracker_interval: SimDuration,
});

/// One Fig. 9(c) point.
#[derive(Clone, Copy, Debug)]
pub struct Fig9cPoint {
    /// Hand-off period.
    pub period: SimDuration,
    /// Default mobile seeds' aggregate upload throughput (bytes/s).
    pub default: RunSummary,
    /// Role-reversing mobile seeds' aggregate upload throughput.
    pub wp2p: RunSummary,
}

fn run_9c_once(
    params: &Fig9cParams,
    rr: bool,
    period: SimDuration,
    metrics: &MetricsHandle,
    seed: u64,
) -> f64 {
    let cfg = FlowConfig {
        tracker: TrackerConfig {
            announce_interval: params.tracker_interval,
            ..TrackerConfig::default()
        },
        ..FlowConfig::default()
    };
    let mut w = FlowWorld::new(cfg, seed);
    w.set_metrics(metrics);
    let torrent = synthetic_torrent("fig9c.iso", params.piece_length, params.file_size, seed);
    super::common::populate_swarm(&mut w, torrent, &params.swarm);
    let mut tasks = Vec::new();
    for _ in 0..2 {
        let node = w.add_node(Access::Wireless {
            capacity: params.seed_capacity,
        });
        let task = w.add_task(TaskSpec {
            node,
            torrent,
            start_complete: true,
            start_fraction: None,
            start_at: SimTime::ZERO,
            make_config: Box::new(ClientConfig::default),
            wp2p: if rr {
                WP2pConfig::role_reversal_only()
            } else {
                WP2pConfig::default_client()
            },
        });
        w.set_mobility(
            node,
            MobilityProcess::with_jitter(period, params.outage, 0.1),
        );
        tasks.push(task);
    }
    w.start();
    w.run_for(params.duration, |_| {});
    let total: u64 = tasks.iter().map(|&t| w.delivered_up_bytes(t)).sum();
    total as f64 / params.duration.as_secs_f64() / 2.0
}

/// [`run_fig9c`] with metrics: the first cell's role-reversal world is
/// wired into `metrics`.
pub fn run_fig9c_with(
    params: &Fig9cParams,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> Vec<Fig9cPoint> {
    let dur = params.duration.as_secs_f64();
    let cells = SweepRunner::new("fig9c", base_seed)
        .with_metrics(metrics)
        .run(&params.periods, params.runs as usize, |&period, cell| {
            cell.add_virtual_secs(2.0 * dur);
            let handle = if cell.point == 0 && cell.run == 0 {
                metrics.clone()
            } else {
                MetricsHandle::disabled()
            };
            (
                run_9c_once(
                    params,
                    false,
                    period,
                    &MetricsHandle::disabled(),
                    cell.run_seed,
                ),
                run_9c_once(params, true, period, &handle, cell.run_seed),
            )
        });
    params
        .periods
        .iter()
        .zip(cells)
        .map(|(&period, runs)| {
            let default: Vec<f64> = runs.iter().map(|&(d, _)| d).collect();
            let wp2p: Vec<f64> = runs.iter().map(|&(_, w)| w).collect();
            Fig9cPoint {
                period,
                default: RunSummary::of(&default),
                wp2p: RunSummary::of(&wp2p),
            }
        })
        .collect()
}

/// Renders Fig. 9(c).
pub fn fig9c_table(points: &[Fig9cPoint]) -> Table {
    let mut t = Table::new(
        "Figure 9(c): Mobile-seed upload throughput (KBps) vs mobility rate — default vs wP2P (role reversal)",
    );
    t.headers(["mobility", "default", "wP2P", "gain"]);
    for p in points {
        t.row([
            format!("every {:.0} min", p.period.as_secs_f64() / 60.0),
            kbps(p.default.mean),
            kbps(p.wp2p.mean),
            format!(
                "{:+.0}%",
                (p.wp2p.mean / p.default.mean.max(1.0) - 1.0) * 100.0
            ),
        ]);
    }
    t.note("paper: both fall with mobility; wP2P's advantage grows, ≈ +50% at 2 min");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9c_role_reversal_restores_upload_throughput() {
        let params = Fig9cParams::quick()
            .periods(vec![SimDuration::from_secs(90)])
            .duration(SimDuration::from_mins(8));
        let pts = run_fig9c_with(&params, &MetricsHandle::disabled(), FIG9C_SEED);
        let p = &pts[0];
        assert!(
            p.wp2p.mean > p.default.mean,
            "RR should out-upload the default under fast mobility: \
             wp2p={} default={}",
            p.wp2p.mean,
            p.default.mean
        );
        assert!(fig9c_table(&pts).len() == 1);
    }

    #[test]
    fn fig9ab_quick_panel_shapes() {
        let params = PlayabilityParams::quick_5mb().runs(2);
        let r = run_fig9ab_with(&params, &MetricsHandle::disabled(), 0x9AB);
        let d50 = r.default_curve.playable_at(0.5);
        let w50 = r.wp2p_curve.playable_at(0.5);
        assert!(
            w50 > d50,
            "MF must beat rarest-first at 50%: mf={w50} default={d50}"
        );
        assert!(fig9ab_table("t", &r).len() == params.grid);
    }

    #[test]
    fn fig9c_params_round_trip() {
        let p = Fig9cParams::paper();
        let q = Fig9cParams::from_params(
            &ExperimentParams::from_json(&p.to_params().to_json()).unwrap(),
        );
        assert_eq!(format!("{p:?}"), format!("{q:?}"));
    }
}
