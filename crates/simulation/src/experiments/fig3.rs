//! **Figure 3 — Uploads-based incentives** (paper §3.3–3.4).
//!
//! * Panel (a): aggregate download rate of five simultaneous tasks vs. the
//!   upload rate limit, on *wired* asymmetric access — monotonically
//!   increasing (tit-for-tat rewards uploads; up and down pipes are
//!   independent).
//! * Panel (b): the same sweep on a *wireless* shared channel — rises,
//!   peaks well below the maximum, then falls as uploads steal channel
//!   capacity from downloads.
//! * Panel (c): downloaded size vs. time for a 100 MB file under the four
//!   arms {mobility, no mobility} × {uploading, no uploading}: without
//!   mobility, uploading clearly helps (incentives); with mobility the
//!   periodically regenerated peer-id voids accumulated credit and the
//!   two mobility arms collapse together.

use super::common::{populate_swarm, synthetic_torrent, SwarmSetup};
use super::params::{builder_setters, ExperimentParams};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskSpec};
use crate::harness::SweepRunner;
use crate::report::{kbps, mb, Table};
use bittorrent::client::ClientConfig;
use metrics::handle::MetricsHandle;
use metrics::stats::TimeSeries;
use simnet::mobility::MobilityProcess;
use simnet::time::{SimDuration, SimTime};
use wp2p::config::WP2pConfig;

/// Base seed of the Fig. 3(a)/(b) sweeps (pinned by shape tests).
pub const FIG3AB_SEED: u64 = 0xF3A;
/// Seed of the Fig. 3(c) four-arm comparison.
pub const FIG3C_SEED: u64 = 0x3C;

/// Parameters for Fig. 3(a) and 3(b).
#[derive(Clone, Debug)]
pub struct Fig3abParams {
    /// Upload limit as a fraction of the physical upload capacity.
    pub fractions: Vec<f64>,
    /// Simultaneous download tasks (paper: 5).
    pub tasks: usize,
    /// File size per task.
    pub file_size: u64,
    /// Piece length.
    pub piece_length: u32,
    /// Background swarm per task.
    pub swarm: SwarmSetup,
    /// Measurement duration.
    pub duration: SimDuration,
    /// Runs to average.
    pub runs: u64,
}

impl Fig3abParams {
    /// CI-sized preset. The swarm has the completion diversity of a real
    /// swarm (staggered head starts) so mutual interest — and therefore
    /// tit-for-tat — actually binds.
    pub fn quick() -> Self {
        Fig3abParams {
            fractions: vec![0.1, 0.3, 0.5, 0.7, 0.9],
            tasks: 2,
            file_size: 96 * 1024 * 1024,
            piece_length: 256 * 1024,
            swarm: SwarmSetup {
                seeds: 1,
                seed_access: Access::Wired {
                    up: 30_000.0,
                    down: 500_000.0,
                },
                leeches: 16,
                leech_access: Access::residential(),
                leech_head_start: 0.6,
            },
            duration: SimDuration::from_secs(480),
            runs: 2,
        }
    }

    /// Paper-scale preset: five tasks, larger swarms (scarcer optimistic
    /// slots, so the incentive gradient is steeper), longer measurement.
    pub fn paper() -> Self {
        Fig3abParams {
            fractions: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            tasks: 5,
            file_size: 192 * 1024 * 1024,
            piece_length: 256 * 1024,
            swarm: SwarmSetup {
                seeds: 1,
                seed_access: Access::Wired {
                    up: 30_000.0,
                    down: 500_000.0,
                },
                leeches: 32,
                leech_access: Access::residential(),
                leech_head_start: 0.6,
            },
            duration: SimDuration::from_mins(15),
            runs: 3,
        }
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_list("fractions", &self.fractions);
        p.set_num("tasks", self.tasks as f64);
        p.set_num("file_size", self.file_size as f64);
        p.set_num("piece_length", self.piece_length as f64);
        p.set_swarm("swarm", &self.swarm);
        p.set_dur("duration_s", self.duration);
        p.set_num("runs", self.runs as f64);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        Fig3abParams {
            fractions: p.list_or("fractions", &base.fractions),
            tasks: p.usize_or("tasks", base.tasks),
            file_size: p.u64_or("file_size", base.file_size),
            piece_length: p.u32_or("piece_length", base.piece_length),
            swarm: p.swarm_or("swarm", &base.swarm),
            duration: p.dur_or("duration_s", base.duration),
            runs: p.u64_or("runs", base.runs),
        }
    }
}

builder_setters!(Fig3abParams {
    fractions: Vec<f64>,
    tasks: usize,
    file_size: u64,
    piece_length: u32,
    swarm: SwarmSetup,
    duration: SimDuration,
    runs: u64,
});

/// One point of Fig. 3(a)/(b).
#[derive(Clone, Copy, Debug)]
pub struct Fig3abPoint {
    /// Upload limit fraction of the physical capacity.
    pub fraction: f64,
    /// Aggregate download throughput, bytes/second.
    pub download: f64,
}

fn run_3ab_once(
    params: &Fig3abParams,
    access: Access,
    fraction: f64,
    metrics: &MetricsHandle,
    seed: u64,
) -> f64 {
    let physical_up = match access {
        Access::Wired { up, .. } => up,
        Access::Wireless { capacity } => capacity,
    };
    let per_task_limit = fraction * physical_up / params.tasks as f64;
    let mut w = FlowWorld::new(FlowConfig::default(), seed);
    w.set_metrics(metrics);
    let our_node = w.add_node(access);
    let mut our_tasks = Vec::new();
    for i in 0..params.tasks {
        // Each task is a distinct swarm (the paper's five "tasks").
        let torrent = synthetic_torrent(
            &format!("task{i}.bin"),
            params.piece_length,
            params.file_size,
            seed ^ (i as u64) << 8,
        );
        populate_swarm(&mut w, torrent, &params.swarm);
        our_tasks.push(w.add_task(TaskSpec {
            node: our_node,
            torrent,
            start_complete: false,
            // The measured client has been in the swarm for a while (as
            // the paper's had): it owns a random quarter of the pieces,
            // so its upload capacity is actually in demand.
            start_fraction: Some(0.25),
            start_at: SimTime::ZERO,
            make_config: {
                let limit = per_task_limit.max(512.0);
                Box::new(move || ClientConfig {
                    upload_limit: Some(limit),
                    ..ClientConfig::default()
                })
            },
            wp2p: WP2pConfig::default_client(),
        }));
    }
    w.start();
    w.run_for(params.duration, |_| {});
    let total: u64 = our_tasks.iter().map(|&t| w.downloaded_bytes(t)).sum();
    let secs = params.duration.as_secs_f64();
    if std::env::var("FIG3_DEBUG").is_ok() {
        let up: u64 = our_tasks.iter().map(|&t| w.delivered_up_bytes(t)).sum();
        eprintln!(
            "  [debug] fraction={fraction:.1} down={:.1} up={:.1} KB/s",
            total as f64 / secs / 1024.0,
            up as f64 / secs / 1024.0
        );
    }
    total as f64 / secs
}

fn run_3ab(
    name: &str,
    params: &Fig3abParams,
    access: Access,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> Vec<Fig3abPoint> {
    let dur = params.duration.as_secs_f64();
    let cells = SweepRunner::new(name, base_seed).with_metrics(metrics).run(
        &params.fractions,
        params.runs as usize,
        |&fraction, cell| {
            cell.add_virtual_secs(dur);
            let handle = if cell.point == 0 && cell.run == 0 {
                metrics.clone()
            } else {
                MetricsHandle::disabled()
            };
            run_3ab_once(params, access, fraction, &handle, cell.run_seed)
        },
    );
    params
        .fractions
        .iter()
        .zip(cells)
        .map(|(&fraction, xs)| Fig3abPoint {
            fraction,
            download: metrics::stats::mean(&xs),
        })
        .collect()
}

/// [`run_fig3a`] on an explicit metrics handle and sweep base seed. The
/// first cell's world is wired into `metrics`.
pub fn run_fig3a_with(
    params: &Fig3abParams,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> Vec<Fig3abPoint> {
    run_3ab("fig3a", params, Access::residential(), metrics, base_seed)
}

/// [`run_fig3b`] on an explicit metrics handle and sweep base seed.
pub fn run_fig3b_with(
    params: &Fig3abParams,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> Vec<Fig3abPoint> {
    run_fig3b_custom_with(params, 80_000.0, metrics, base_seed)
}

/// Runs the Fig. 3(b) sweep at an explicit wireless capacity
/// (bytes/second).
pub fn run_fig3b_custom(params: &Fig3abParams, capacity: f64) -> Vec<Fig3abPoint> {
    run_fig3b_custom_with(params, capacity, &MetricsHandle::disabled(), FIG3AB_SEED)
}

/// [`run_fig3b_custom`] on an explicit metrics handle and base seed.
pub fn run_fig3b_custom_with(
    params: &Fig3abParams,
    capacity: f64,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> Vec<Fig3abPoint> {
    run_3ab(
        "fig3b",
        params,
        Access::Wireless { capacity },
        metrics,
        base_seed,
    )
}

/// Renders a Fig. 3(a)/(b) sweep.
pub fn fig3ab_table(title: &str, points: &[Fig3abPoint], expect: &str) -> Table {
    let mut t = Table::new(title);
    t.headers(["upload limit (%)", "download (KBps)"]);
    for p in points {
        t.row([format!("{:.0}", p.fraction * 100.0), kbps(p.download)]);
    }
    t.note(expect);
    t
}

/// Parameters for Fig. 3(c).
#[derive(Clone, Debug)]
pub struct Fig3cParams {
    /// File size (paper: 100 MB).
    pub file_size: u64,
    /// Piece length.
    pub piece_length: u32,
    /// Run length (paper: 40 minutes).
    pub duration: SimDuration,
    /// Mobility period for the mobility arms.
    pub mobility_period: SimDuration,
    /// Hand-off outage.
    pub outage: SimDuration,
    /// Background swarm.
    pub swarm: SwarmSetup,
    /// Wireless capacity of the measured client.
    pub wireless_capacity: f64,
}

impl Fig3cParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        Fig3cParams {
            file_size: 64 * 1024 * 1024,
            piece_length: 256 * 1024,
            duration: SimDuration::from_mins(10),
            mobility_period: SimDuration::from_secs(60),
            outage: SimDuration::from_secs(8),
            swarm: SwarmSetup {
                seeds: 1,
                seed_access: Access::Wired {
                    up: 60_000.0,
                    down: 500_000.0,
                },
                leeches: 12,
                leech_access: Access::residential(),
                leech_head_start: 0.5,
            },
            wireless_capacity: 200_000.0,
        }
    }

    /// Paper-scale preset: 100 MB, 40 minutes.
    pub fn paper() -> Self {
        Fig3cParams {
            file_size: 100 * 1024 * 1024,
            piece_length: 256 * 1024,
            duration: SimDuration::from_mins(40),
            mobility_period: SimDuration::from_secs(120),
            outage: SimDuration::from_secs(5),
            swarm: SwarmSetup {
                seeds: 2,
                seed_access: Access::Wired {
                    up: 80_000.0,
                    down: 500_000.0,
                },
                leeches: 24,
                leech_access: Access::residential(),
                leech_head_start: 0.5,
            },
            wireless_capacity: 250_000.0,
        }
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_num("file_size", self.file_size as f64);
        p.set_num("piece_length", self.piece_length as f64);
        p.set_dur("duration_s", self.duration);
        p.set_dur("mobility_period_s", self.mobility_period);
        p.set_dur("outage_s", self.outage);
        p.set_swarm("swarm", &self.swarm);
        p.set_num("wireless_capacity", self.wireless_capacity);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        Fig3cParams {
            file_size: p.u64_or("file_size", base.file_size),
            piece_length: p.u32_or("piece_length", base.piece_length),
            duration: p.dur_or("duration_s", base.duration),
            mobility_period: p.dur_or("mobility_period_s", base.mobility_period),
            outage: p.dur_or("outage_s", base.outage),
            swarm: p.swarm_or("swarm", &base.swarm),
            wireless_capacity: p.num_or("wireless_capacity", base.wireless_capacity),
        }
    }
}

builder_setters!(Fig3cParams {
    file_size: u64,
    piece_length: u32,
    duration: SimDuration,
    mobility_period: SimDuration,
    outage: SimDuration,
    swarm: SwarmSetup,
    wireless_capacity: f64,
});

/// The four arms of Fig. 3(c).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fig3cArm {
    /// Whether the client's address changes periodically.
    pub mobility: bool,
    /// Whether the client uploads.
    pub uploading: bool,
}

impl Fig3cArm {
    /// All four arms in the paper's legend order.
    pub fn all() -> [Fig3cArm; 4] {
        [
            Fig3cArm {
                mobility: false,
                uploading: true,
            },
            Fig3cArm {
                mobility: false,
                uploading: false,
            },
            Fig3cArm {
                mobility: true,
                uploading: true,
            },
            Fig3cArm {
                mobility: true,
                uploading: false,
            },
        ]
    }

    /// Legend label.
    pub fn label(&self) -> String {
        format!(
            "{}, {}",
            if self.mobility {
                "Mobility"
            } else {
                "No Mobility"
            },
            if self.uploading {
                "Uploading"
            } else {
                "No Uploading"
            }
        )
    }
}

/// Result of one Fig. 3(c) arm: downloaded bytes over time.
#[derive(Clone, Debug)]
pub struct Fig3cResult {
    /// The arm.
    pub arm: Fig3cArm,
    /// Sampled downloaded-bytes series.
    pub series: TimeSeries,
    /// Final downloaded bytes.
    pub final_bytes: u64,
}

/// [`run_fig3c_arm`] with the world wired into `metrics`.
pub fn run_fig3c_arm_with(
    params: &Fig3cParams,
    arm: Fig3cArm,
    metrics: &MetricsHandle,
    seed: u64,
) -> Fig3cResult {
    let mut cfg = FlowConfig::default();
    cfg.tracker.announce_interval = SimDuration::from_mins(5);
    let mut w = FlowWorld::new(cfg, seed);
    w.set_metrics(metrics);
    let torrent = synthetic_torrent("fig3c.bin", params.piece_length, params.file_size, seed);
    populate_swarm(&mut w, torrent, &params.swarm);
    let node = w.add_node(Access::Wireless {
        capacity: params.wireless_capacity,
    });
    let uploading = arm.uploading;
    let task = w.add_task(TaskSpec {
        node,
        torrent,
        start_complete: false,
        start_fraction: None,
        start_at: SimTime::ZERO,
        make_config: Box::new(move || bittorrent::client::ClientConfig {
            allow_upload: uploading,
            ..Default::default()
        }),
        wp2p: WP2pConfig::default_client(),
    });
    if arm.mobility {
        w.set_mobility(
            node,
            MobilityProcess::with_jitter(params.mobility_period, params.outage, 0.1),
        );
    }
    w.start();
    w.run_for(params.duration, |_| {});
    Fig3cResult {
        arm,
        series: w.download_series(task).clone(),
        final_bytes: w.downloaded_bytes(task),
    }
}

/// [`run_fig3c`] with metrics: the first arm (no-mobility, uploading) is
/// wired into `metrics` — one world per handle keeps every series
/// single-writer and the dump deterministic.
pub fn run_fig3c_with(
    params: &Fig3cParams,
    metrics: &MetricsHandle,
    seed: u64,
) -> Vec<Fig3cResult> {
    let arms = Fig3cArm::all();
    let dur = params.duration.as_secs_f64();
    SweepRunner::new("fig3c", seed)
        .with_metrics(metrics)
        .run(&arms, 1, |&arm, cell| {
            cell.add_virtual_secs(dur);
            let handle = if cell.point == 0 {
                metrics.clone()
            } else {
                MetricsHandle::disabled()
            };
            run_fig3c_arm_with(params, arm, &handle, seed)
        })
        .into_iter()
        .flatten()
        .collect()
}

/// Renders Fig. 3(c): downloaded MB at regular timestamps per arm.
pub fn fig3c_table(results: &[Fig3cResult], samples: usize) -> Table {
    let mut t = Table::new("Figure 3(c): Downloaded size (MB) vs time — incentive & mobility");
    let mut headers = vec!["t (min)".to_string()];
    headers.extend(results.iter().map(|r| r.arm.label()));
    t.headers(headers);
    let horizon = results
        .iter()
        .filter_map(|r| r.series.points().last().map(|&(t, _)| t))
        .max()
        .unwrap_or(SimTime::ZERO);
    for i in 1..=samples {
        let ts = SimTime::from_micros(horizon.as_micros() * i as u64 / samples as u64);
        let mut row = vec![format!("{:.1}", ts.as_secs_f64() / 60.0)];
        for r in results {
            let v = r.series.value_at(ts).unwrap_or(0.0);
            row.push(mb(v as u64));
        }
        t.row(row);
    }
    t.note("paper: no-mobility+uploading highest; mobility arms lowest and nearly equal");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_3ab() -> Fig3abParams {
        Fig3abParams::quick().fractions(vec![0.1, 0.9]).runs(1)
    }

    fn run_fig3a_plain(params: &Fig3abParams) -> Vec<Fig3abPoint> {
        run_fig3a_with(params, &MetricsHandle::disabled(), FIG3AB_SEED)
    }

    fn run_fig3b_plain(params: &Fig3abParams) -> Vec<Fig3abPoint> {
        run_fig3b_with(params, &MetricsHandle::disabled(), FIG3AB_SEED)
    }

    #[test]
    fn fig3a_download_grows_with_upload_limit() {
        let pts = run_fig3a_plain(&tiny_3ab());
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].download > pts[0].download,
            "wired: more upload should mean more download: {:?}",
            pts
        );
    }

    #[test]
    fn fig3b_wireless_upload_hurts_at_the_top() {
        let p = tiny_3ab();
        let pts = run_fig3b_plain(&p);
        // On a shared channel, cranking upload to 90% of capacity must
        // cost download throughput (self-contention).
        assert!(
            pts[1].download < pts[0].download,
            "wireless: 90% upload should trail 10%: {:?}",
            pts
        );
        // ... while the same sweep on wired helps (checked above); the
        // *contrast* is the paper's point.
        let wired = run_fig3a_plain(&p);
        let wireless_gain = pts[1].download / pts[0].download.max(1.0);
        let wired_gain = wired[1].download / wired[0].download.max(1.0);
        assert!(wireless_gain < wired_gain);
    }

    #[test]
    fn fig3b_quick_preset_rise_peak_fall_shape() {
        // Seeded regression pinning the EXPERIMENTS.md quick-preset shape:
        // the wireless sweep rises to an interior peak near 30% of
        // capacity, then falls well below it by 90% (reported:
        // 42.3 → 43.2 @30% → 29.9 @90%). The sweep seed is fixed inside
        // SweepRunner, so a shape change here is a behaviour change, not
        // noise.
        // The full preset (fractions and 2-run averaging included): sweep
        // seeds are per-cell, so trimming the sweep would change every
        // cell's seed and measure a different trace than the one
        // EXPERIMENTS.md reports.
        let pts = run_fig3b_plain(&Fig3abParams::quick());
        let peak_at = pts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.download.total_cmp(&b.1.download))
            .map(|(i, _)| i)
            .unwrap();
        let peak = pts[peak_at].download;
        let top = pts.last().unwrap().download;
        assert!(
            peak_at < pts.len() - 1,
            "peak must be interior, not at the 90% endpoint: {pts:?}"
        );
        assert!(
            top < 0.85 * peak,
            "90% must fall well below the peak: peak {peak:.0}, top {top:.0} B/s"
        );
        assert!(
            top < pts[0].download,
            "endpoint should land below the start of the sweep: {pts:?}"
        );
    }

    #[test]
    fn fig3c_params_round_trip() {
        let p = Fig3cParams::paper();
        let q = Fig3cParams::from_params(&p.to_params());
        assert_eq!(p.to_params(), q.to_params());
        let p = Fig3abParams::paper();
        let q = Fig3abParams::from_params(&p.to_params());
        assert_eq!(p.to_params(), q.to_params());
    }

    #[test]
    fn fig3c_arms_order_correctly() {
        let params = Fig3cParams::quick()
            .duration(SimDuration::from_mins(6))
            .swarm(SwarmSetup {
                seeds: 1,
                seed_access: Access::Wired {
                    up: 60_000.0,
                    down: 500_000.0,
                },
                leeches: 4,
                leech_access: Access::residential(),
                leech_head_start: 0.5,
            })
            .wireless_capacity(120_000.0);
        let results = run_fig3c_with(&params, &MetricsHandle::disabled(), 3);
        let get = |mob: bool, up: bool| {
            results
                .iter()
                .find(|r| r.arm.mobility == mob && r.arm.uploading == up)
                .unwrap()
                .final_bytes as f64
        };
        let still_up = get(false, true);
        let mob_up = get(true, true);
        let mob_noup = get(true, false);
        // Mobility hurts relative to the stationary uploading arm.
        assert!(
            still_up > mob_up,
            "mobility should hurt: still={still_up} mobile={mob_up}"
        );
        // Under mobility, uploading buys little (credit keeps resetting):
        // the two mobility arms land within a factor of ~2 of each other.
        let ratio = mob_up / mob_noup.max(1.0);
        assert!(
            (0.4..2.5).contains(&ratio),
            "mobility arms should be comparable, ratio={ratio:.2}"
        );
        let table = fig3c_table(&results, 8);
        assert_eq!(table.len(), 8);
    }
}
