//! **Scale sweep** — swarm-size scaling of the flow world.
//!
//! Not a paper figure: an engineering experiment backing the ROADMAP's
//! large-swarm target. One torrent, swarms of 16 → 2048 peers with a
//! fixed/mobile mix (mobile leeches sit on wireless access with a
//! hand-off schedule), measured for a fixed virtual duration. The
//! per-connection stall watchdog is enabled: a lazy timer armed once per
//! busy spell that re-arms itself on fire while progress keeps landing,
//! so steady transfer costs a timestamp write instead of the old
//! cancel-plus-reschedule churn per tick. The observables are the
//! event-queue health counters the timer-wheel scheduler is meant to
//! improve — events processed, queue-depth high-water mark, cancellation
//! volume — plus swarm progress so a scheduler bug that stalls transfers
//! cannot hide. Wall-clock comparisons between the `heap` and `wheel`
//! schedulers live in the `scale_sweep` bench bin (`BENCH_scale.json`),
//! not here: the registry run must stay deterministic.

use super::common::synthetic_torrent;
use super::params::{builder_setters, ExperimentParams};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskSpec};
use crate::harness::SweepRunner;
use crate::report::{pct, Table};
use metrics::handle::MetricsHandle;
use simnet::event::Scheduler;
use simnet::mobility::MobilityProcess;
use simnet::time::SimDuration;

/// Base seed of the scale sweep (pinned by the determinism tests).
pub const SCALE_SEED: u64 = 0x5CA1E;

/// Parameters of the scale sweep.
#[derive(Clone, Debug)]
pub struct ScaleParams {
    /// Swarm sizes (total peers per cell).
    pub sizes: Vec<usize>,
    /// Fraction of leeches that are mobile (wireless + hand-offs).
    pub mobile_fraction: f64,
    /// File size per swarm.
    pub file_size: u64,
    /// Piece length.
    pub piece_length: u32,
    /// Measured virtual duration.
    pub duration: SimDuration,
    /// Hand-off period of mobile leeches.
    pub mobility_period: SimDuration,
    /// Hand-off outage of mobile leeches.
    pub outage: SimDuration,
    /// Per-connection stall watchdog (zero disables). The watchdog is
    /// lazy: armed once when a connection turns busy, progress merely
    /// stamps a timestamp, and the timer re-arms itself at
    /// `last_progress + timeout` when it fires early — so a healthy
    /// swarm schedules few timers and cancels almost none.
    pub stall_timeout: SimDuration,
    /// Runs to average (progress only; queue counters come from run 0).
    pub runs: u64,
}

impl ScaleParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        ScaleParams {
            sizes: vec![16, 64, 256],
            mobile_fraction: 0.25,
            file_size: 8 * 1024 * 1024,
            piece_length: 256 * 1024,
            duration: SimDuration::from_secs(120),
            mobility_period: SimDuration::from_secs(45),
            outage: SimDuration::from_secs(5),
            stall_timeout: SimDuration::from_secs(15),
            runs: 1,
        }
    }

    /// Extra-large preset: quick-run durations at the 16k/65k swarm
    /// sizes the incremental solver + arena layout unlock. Progress is
    /// near zero at these sizes within the short window — the preset
    /// exists to measure wall/vsec headroom, not swarm dynamics.
    pub fn xl() -> Self {
        ScaleParams {
            sizes: vec![16_384, 65_536],
            ..Self::quick()
        }
    }

    /// Paper-scale preset: the full 16 → 2048 sweep.
    pub fn paper() -> Self {
        ScaleParams {
            sizes: vec![16, 32, 64, 128, 256, 512, 1024, 2048],
            mobile_fraction: 0.25,
            file_size: 32 * 1024 * 1024,
            piece_length: 256 * 1024,
            duration: SimDuration::from_mins(10),
            mobility_period: SimDuration::from_secs(60),
            outage: SimDuration::from_secs(5),
            stall_timeout: SimDuration::from_secs(15),
            runs: 2,
        }
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        let sizes: Vec<f64> = self.sizes.iter().map(|&s| s as f64).collect();
        p.set_list("sizes", &sizes);
        p.set_num("mobile_fraction", self.mobile_fraction);
        p.set_num("file_size", self.file_size as f64);
        p.set_num("piece_length", self.piece_length as f64);
        p.set_dur("duration_s", self.duration);
        p.set_dur("mobility_period_s", self.mobility_period);
        p.set_dur("outage_s", self.outage);
        p.set_dur("stall_timeout_s", self.stall_timeout);
        p.set_num("runs", self.runs as f64);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        let base_sizes: Vec<f64> = base.sizes.iter().map(|&s| s as f64).collect();
        ScaleParams {
            sizes: p
                .list_or("sizes", &base_sizes)
                .iter()
                .map(|&s| (s as usize).max(2))
                .collect(),
            mobile_fraction: p.num_or("mobile_fraction", base.mobile_fraction),
            file_size: p.u64_or("file_size", base.file_size),
            piece_length: p.u32_or("piece_length", base.piece_length),
            duration: p.dur_or("duration_s", base.duration),
            mobility_period: p.dur_or("mobility_period_s", base.mobility_period),
            outage: p.dur_or("outage_s", base.outage),
            stall_timeout: p.dur_or("stall_timeout_s", base.stall_timeout),
            runs: p.u64_or("runs", base.runs),
        }
    }
}

builder_setters!(ScaleParams {
    sizes: Vec<usize>,
    mobile_fraction: f64,
    file_size: u64,
    piece_length: u32,
    duration: SimDuration,
    mobility_period: SimDuration,
    outage: SimDuration,
    stall_timeout: SimDuration,
    runs: u64,
});

/// One cell's deterministic observables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleCell {
    /// Leeches that finished the file within the duration.
    pub completed: usize,
    /// Mean downloaded fraction over all leeches at the end.
    pub mean_progress: f64,
    /// Simulator events processed.
    pub events: u64,
    /// Event-queue depth high-water mark.
    pub queue_peak: usize,
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Cancellations that removed a live event.
    pub cancelled: u64,
    /// Cancellations of already-fired/cancelled tokens.
    pub cancel_noops: u64,
    /// Connections aborted by the stall watchdog.
    pub stall_aborts: u64,
    /// Rate solves that re-filled the whole population.
    pub solver_full: u64,
    /// Rate solves confined to the dirty components.
    pub solver_incremental: u64,
    /// Flow equivalence classes filled across all solves.
    pub solver_class: u64,
    /// Resources visited across all solves (the incremental win shows
    /// up as this growing far slower than `solves × resources`).
    pub solver_resources_touched: u64,
}

/// One point of the sweep (one swarm size).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalePoint {
    /// Total peers in the swarm.
    pub peers: usize,
    /// Seeds among them.
    pub seeds: usize,
    /// Mobile leeches among them.
    pub mobile: usize,
    /// Run-0 observables (deterministic; pinned by tests).
    pub cell: ScaleCell,
    /// Run-0 events per virtual second.
    pub events_per_vsec: f64,
    /// `completed` averaged over runs.
    pub mean_completed: f64,
    /// `mean_progress` averaged over runs.
    pub mean_progress: f64,
}

/// How a swarm of `size` splits into seeds / mobile / fixed leeches.
pub fn swarm_mix(size: usize, mobile_fraction: f64) -> (usize, usize, usize) {
    let seeds = (size / 16).clamp(1, size - 1);
    let leeches = size - seeds;
    let mobile = ((leeches as f64) * mobile_fraction.clamp(0.0, 1.0)).round() as usize;
    (seeds, mobile.min(leeches), leeches - mobile.min(leeches))
}

/// Runs one swarm of `size` peers and collects the queue observables,
/// using the scheduler selected by `WP2P_SCHEDULER`.
pub fn run_scale_once(
    params: &ScaleParams,
    size: usize,
    metrics: &MetricsHandle,
    seed: u64,
) -> ScaleCell {
    run_scale_once_sched(params, size, Scheduler::from_env(), metrics, seed)
}

/// [`run_scale_once`] on an explicit scheduler — the `scale_sweep` bench
/// compares heap and wheel back to back in one process.
pub fn run_scale_once_sched(
    params: &ScaleParams,
    size: usize,
    scheduler: Scheduler,
    metrics: &MetricsHandle,
    seed: u64,
) -> ScaleCell {
    let (seeds, mobile, fixed) = swarm_mix(size, params.mobile_fraction);
    let mut w = FlowWorld::new(
        FlowConfig {
            scheduler,
            stall_timeout: (params.stall_timeout > SimDuration::ZERO)
                .then_some(params.stall_timeout),
            ..FlowConfig::default()
        },
        seed,
    );
    w.set_metrics(metrics);
    let torrent = synthetic_torrent("scale.bin", params.piece_length, params.file_size, seed);
    for _ in 0..seeds {
        let n = w.add_node(Access::campus());
        w.add_task(TaskSpec::default_client(n, torrent, true));
    }
    let mut leech_tasks = Vec::new();
    let leeches = mobile + fixed;
    for i in 0..leeches {
        // Mobile leeches: shared wireless channel plus a hand-off
        // schedule — every hand-off kills and re-initiates the client,
        // stranding stalled flows for the watchdog to reap.
        let n = if i < mobile {
            let n = w.add_node(Access::Wireless {
                capacity: 100_000.0,
            });
            w.set_mobility(
                n,
                MobilityProcess::with_jitter(params.mobility_period, params.outage, 0.1),
            );
            n
        } else {
            w.add_node(Access::residential())
        };
        let mut spec = TaskSpec::default_client(n, torrent, false);
        // Completion diversity, as in real swarms (mutual interest).
        spec.start_fraction = Some(0.5 * (i + 1) as f64 / (leeches + 1) as f64);
        leech_tasks.push(w.add_task(spec));
    }
    w.start();
    w.run_for(params.duration, |_| {});
    let completed = leech_tasks
        .iter()
        .filter(|&&t| w.completed_at(t).is_some())
        .count();
    let mean_progress = if leech_tasks.is_empty() {
        0.0
    } else {
        leech_tasks
            .iter()
            .map(|&t| w.progress_fraction(t))
            .sum::<f64>()
            / leech_tasks.len() as f64
    };
    let q = w.queue_stats();
    let s = w.solver_stats();
    ScaleCell {
        completed,
        mean_progress,
        events: w.events_processed(),
        queue_peak: q.max_live,
        scheduled: q.scheduled,
        cancelled: q.cancelled,
        cancel_noops: q.cancel_noops,
        stall_aborts: w.stall_aborts(),
        solver_full: s.full_solves,
        solver_incremental: s.incremental_solves,
        solver_class: s.class_solves,
        solver_resources_touched: s.resources_touched,
    }
}

fn run_scale_impl(
    params: &ScaleParams,
    metrics: &MetricsHandle,
    base_seed: u64,
    threads: Option<usize>,
) -> Vec<ScalePoint> {
    let dur = params.duration.as_secs_f64();
    let mut runner = SweepRunner::new("scale", base_seed).with_metrics(metrics);
    if let Some(n) = threads {
        runner = runner.with_threads(n);
    }
    let cells = runner.run(&params.sizes, params.runs as usize, |&size, cell| {
        cell.add_virtual_secs(dur);
        let handle = if cell.point == 0 && cell.run == 0 {
            metrics.clone()
        } else {
            MetricsHandle::disabled()
        };
        run_scale_once(params, size, &handle, cell.run_seed)
    });
    let points: Vec<ScalePoint> = params
        .sizes
        .iter()
        .zip(cells)
        .map(|(&size, runs)| {
            let (seeds, mobile, _) = swarm_mix(size, params.mobile_fraction);
            let n = runs.len().max(1) as f64;
            ScalePoint {
                peers: size,
                seeds,
                mobile,
                cell: runs[0],
                events_per_vsec: runs[0].events as f64 / dur.max(f64::MIN_POSITIVE),
                mean_completed: runs.iter().map(|c| c.completed as f64).sum::<f64>() / n,
                mean_progress: runs.iter().map(|c| c.mean_progress).sum::<f64>() / n,
            }
        })
        .collect();
    // Per-size queue-health gauges. Written after the sweep from the
    // deterministic run-0 cells, so worker count cannot reorder them.
    for p in &points {
        let g = |suffix: &str| metrics.gauge(&format!("scale.n{}.{suffix}", p.peers));
        g("events").set(p.cell.events as f64);
        g("queue_depth_max").set(p.cell.queue_peak as f64);
        g("cancelled").set(p.cell.cancelled as f64);
        g("cancel_rate").set(p.cell.cancelled as f64 / p.cell.scheduled.max(1) as f64);
        g("stall_aborts").set(p.cell.stall_aborts as f64);
        g("solver_full").set(p.cell.solver_full as f64);
        g("solver_incremental").set(p.cell.solver_incremental as f64);
        g("solver_class").set(p.cell.solver_class as f64);
        g("solver_resources_touched").set(p.cell.solver_resources_touched as f64);
    }
    points
}

/// Runs the scale sweep on an explicit metrics handle and base seed.
pub fn run_scale_with(
    params: &ScaleParams,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> Vec<ScalePoint> {
    run_scale_impl(params, metrics, base_seed, None)
}

/// [`run_scale_with`] pinned to a worker count (the determinism tests
/// compare 1 vs 4 without touching `WP2P_THREADS`).
pub fn run_scale_with_threads(
    params: &ScaleParams,
    metrics: &MetricsHandle,
    base_seed: u64,
    threads: usize,
) -> Vec<ScalePoint> {
    run_scale_impl(params, metrics, base_seed, Some(threads))
}

/// Renders the sweep. Deliberately no wall-clock column: the table is
/// part of the deterministic report surface.
pub fn scale_table(points: &[ScalePoint]) -> Table {
    let mut t = Table::new("Scale sweep: event-queue health vs swarm size");
    t.headers([
        "peers",
        "seeds",
        "mobile",
        "done",
        "progress",
        "events",
        "ev/vsec",
        "queue peak",
        "cancelled",
        "cancel noop",
        "stall aborts",
        "solves full/incr",
        "classes",
    ]);
    for p in points {
        t.row([
            p.peers.to_string(),
            p.seeds.to_string(),
            p.mobile.to_string(),
            format!("{:.1}", p.mean_completed),
            pct(p.mean_progress),
            p.cell.events.to_string(),
            format!("{:.0}", p.events_per_vsec),
            p.cell.queue_peak.to_string(),
            p.cell.cancelled.to_string(),
            p.cell.cancel_noops.to_string(),
            p.cell.stall_aborts.to_string(),
            format!("{}/{}", p.cell.solver_full, p.cell.solver_incremental),
            p.cell.solver_class.to_string(),
        ]);
    }
    t.note("expect: events grow with swarm size; cancellations stay bounded by schedules");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleParams {
        ScaleParams::quick()
            .sizes(vec![8, 12])
            .file_size(2 * 1024 * 1024)
            .duration(SimDuration::from_secs(40))
            .runs(2)
    }

    #[test]
    fn params_round_trip() {
        let p = ScaleParams::paper();
        let back = ScaleParams::from_params(&p.to_params());
        assert_eq!(p.sizes, back.sizes);
        assert_eq!(p.file_size, back.file_size);
        assert_eq!(p.duration, back.duration);
        assert_eq!(p.runs, back.runs);
    }

    #[test]
    fn swarm_mix_is_sane() {
        for size in [2, 16, 64, 2048] {
            let (seeds, mobile, fixed) = swarm_mix(size, 0.25);
            assert!(seeds >= 1);
            assert_eq!(seeds + mobile + fixed, size);
        }
        // A fully fixed mix has no mobile peers.
        assert_eq!(swarm_mix(64, 0.0).1, 0);
    }

    #[test]
    fn heap_and_wheel_worlds_agree() {
        // World-level differential: the same seeded swarm must evolve
        // identically under both schedulers (pop-order equivalence).
        let params = tiny();
        let a = run_scale_once_sched(&params, 10, Scheduler::Heap, &MetricsHandle::disabled(), 42);
        let b = run_scale_once_sched(&params, 10, Scheduler::Wheel, &MetricsHandle::disabled(), 42);
        assert_eq!(a, b, "schedulers diverged on an identical run");
        assert!(a.events > 0);
    }

    #[test]
    fn scale_sweep_deterministic_across_worker_counts() {
        let params = tiny();
        let a = run_scale_with_threads(&params, &MetricsHandle::disabled(), SCALE_SEED, 1);
        let b = run_scale_with_threads(&params, &MetricsHandle::disabled(), SCALE_SEED, 4);
        assert_eq!(a, b, "scale sweep must not depend on worker count");
        assert!(a.iter().all(|p| p.cell.events > 0));
        assert!(a.iter().all(|p| p.mean_progress > 0.0));
    }
}
