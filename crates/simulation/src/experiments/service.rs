//! **Multi-swarm service tier** — a tracker operator's view of the paper
//! (`all_figures -- --service <seed>`).
//!
//! Not a paper figure: ROADMAP item 2 at deployment scale. One flow
//! world hosts hundreds of concurrent swarms sharing a sharded tracker
//! tier ([`bittorrent::tracker::TrackerTier`]) and cross-swarm seed
//! capacity. A seeded workload generator draws Zipf-distributed swarm
//! sizes, Poisson flash-crowd arrivals (late joiners via
//! [`TaskSpec::start_at`]), diurnally modulated mobile hand-off periods,
//! and multi-swarm membership (shared leech nodes; super-seeds whose
//! uplink is one token bucket across every swarm they serve, via
//! [`FlowWorld::set_node_upload_cap`]). Mid-run one tracker shard goes
//! down — a partial-service fault: only the swarms it owns lose
//! announces.
//!
//! Two **probe swarms** ride along, each three upload classes à la
//! Legout et al. ("Clustering and Sharing Incentives in BitTorrent
//! Systems"): one all fixed hosts, one with 30% mobile hosts. With
//! [`FlowConfig::track_peer_bytes`] on, the run computes the upload-class
//! clustering coefficient (same-class download share over the
//! random-mixing baseline) for both and asserts clustering *emerges* in
//! the fixed swarm; the mobile swarm's coefficient measures how hand-off
//! churn distorts it.
//!
//! Every observable is a pure function of the seed: the workload, the
//! per-swarm completion-time distributions, the per-shard tracker-load
//! series, and both clustering coefficients replay byte-identically
//! under any worker count.

use super::common::synthetic_torrent;
use super::params::{builder_setters, ExperimentParams};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskKey, TaskSpec, TorrentSpec};
use crate::harness::SweepRunner;
use crate::report::{pct, Table};
use metrics::handle::MetricsHandle;
use simnet::mobility::MobilityProcess;
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

/// Base seed of the service run (pinned by the determinism tests).
pub const SERVICE_SEED: u64 = 0x5E71;

/// Number of upload classes in the probe swarms (Legout's setup).
pub const CLASSES: usize = 3;

/// Upload capacity of each probe class, bytes/second (16× spread end to
/// end — wide enough that tit-for-tat reciprocation separates them).
pub const CLASS_UP: [f64; CLASSES] = [24_000.0, 96_000.0, 384_000.0];

/// Leech-phase clustering warmup: the probe byte-count baseline is
/// snapshotted here, a few rechoke intervals in, once tit-for-tat has
/// had time to converge and the seed no longer dominates transfers.
const CLUSTER_WARMUP: SimDuration = SimDuration::from_secs(40);

/// Parameters of the multi-swarm service run.
#[derive(Clone, Debug)]
pub struct ServiceParams {
    /// Background swarms (two probe swarms are added on top).
    pub swarms: usize,
    /// Tracker shards in the tier.
    pub tracker_shards: usize,
    /// Target total background memberships (seeds + leeches) across all
    /// swarms; Zipf clamping can push the realised total slightly above.
    pub total_peers: usize,
    /// Zipf exponent of the swarm-size distribution.
    pub zipf_s: f64,
    /// Smallest background swarm (members, incl. its seed).
    pub min_swarm: usize,
    /// File size of background swarms.
    pub file_size: u64,
    /// File size of the probe swarms (longer transfer: the clustering
    /// signal needs several rechoke rounds).
    pub probe_file_size: u64,
    /// Piece length everywhere.
    pub piece_length: u32,
    /// Probe leeches per upload class (each probe swarm has
    /// `CLASSES * this` leeches plus one campus seed).
    pub probe_leeches_per_class: usize,
    /// Mobile share of the mobile probe swarm's leeches.
    pub probe_mobile_fraction: f64,
    /// Mobile share of background leeches (wireless + hand-offs).
    pub mobile_fraction: f64,
    /// Share of background leech memberships placed on shared
    /// multi-swarm nodes.
    pub multi_swarm_fraction: f64,
    /// Every k-th background swarm is seeded by a shared super-seed
    /// node instead of a dedicated one (0 = never).
    pub super_seed_every: usize,
    /// Swarms served per super-seed node.
    pub super_seed_swarms: usize,
    /// Shared uplink of a super-seed across its swarms, bytes/second —
    /// the cross-swarm token bucket.
    pub super_seed_cap: f64,
    /// Maximum flash-crowd events (the Poisson process is truncated at
    /// this count or half the horizon, whichever first).
    pub flash_crowds: usize,
    /// Mean inter-arrival of flash crowds.
    pub flash_mean_gap: SimDuration,
    /// Nominal burst size of one flash crowd (the draw jitters ±50%).
    pub flash_size: usize,
    /// Length of the compressed "day" for diurnal modulation.
    pub day_length: SimDuration,
    /// Diurnal amplitude in [0, 1): hand-off periods swing by this
    /// factor across the day.
    pub diurnal_amp: f64,
    /// Base mobile hand-off period (before diurnal modulation).
    pub handoff_period: SimDuration,
    /// Hand-off outage length.
    pub handoff_outage: SimDuration,
    /// Shard taken down mid-run (the partial-service fault).
    pub outage_shard: usize,
    /// When the shard goes down.
    pub outage_at: SimDuration,
    /// How long it stays down.
    pub outage_len: SimDuration,
    /// Per-shard load sampling cadence.
    pub sample_every: SimDuration,
    /// Virtual horizon of the run.
    pub horizon: SimDuration,
    /// Fixed-probe clustering coefficient the run asserts (emergence
    /// margin; the mobile probe is measured, not asserted).
    pub cluster_margin: f64,
    /// Runs (replays) per sweep cell.
    pub runs: u64,
}

impl ServiceParams {
    /// CI-sized preset: 256 swarms / 4 shards / ≥8k memberships.
    pub fn quick() -> Self {
        ServiceParams {
            swarms: 256,
            tracker_shards: 4,
            total_peers: 8192,
            zipf_s: 1.0,
            min_swarm: 5,
            file_size: 1024 * 1024,
            // Sized so the fastest class leeches for ~12 rechoke
            // intervals past the clustering warmup (384 KB/s × ~125 s)
            // — small probe files finish inside one or two rechokes
            // and tit-for-tat clustering never converges.
            probe_file_size: 48 * 1024 * 1024,
            piece_length: 256 * 1024,
            probe_leeches_per_class: 8,
            probe_mobile_fraction: 0.3,
            mobile_fraction: 0.15,
            multi_swarm_fraction: 0.15,
            super_seed_every: 8,
            super_seed_swarms: 4,
            super_seed_cap: 400_000.0,
            flash_crowds: 12,
            flash_mean_gap: SimDuration::from_secs(20),
            flash_size: 12,
            day_length: SimDuration::from_secs(300),
            diurnal_amp: 0.6,
            handoff_period: SimDuration::from_secs(40),
            handoff_outage: SimDuration::from_secs(2),
            outage_shard: 1,
            outage_at: SimDuration::from_secs(120),
            outage_len: SimDuration::from_secs(60),
            sample_every: SimDuration::from_secs(10),
            horizon: SimDuration::from_secs(600),
            cluster_margin: 1.05,
            runs: 1,
        }
    }

    /// Paper-scale preset: 1024 swarms / 8 shards / 32k memberships.
    pub fn paper() -> Self {
        ServiceParams {
            swarms: 1024,
            tracker_shards: 8,
            total_peers: 32_768,
            file_size: 4 * 1024 * 1024,
            probe_file_size: 96 * 1024 * 1024,
            flash_crowds: 32,
            flash_mean_gap: SimDuration::from_secs(60),
            flash_size: 24,
            day_length: SimDuration::from_secs(1800),
            outage_at: SimDuration::from_secs(600),
            outage_len: SimDuration::from_secs(300),
            sample_every: SimDuration::from_secs(30),
            horizon: SimDuration::from_secs(3600),
            ..Self::quick()
        }
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_num("swarms", self.swarms as f64);
        p.set_num("tracker_shards", self.tracker_shards as f64);
        p.set_num("total_peers", self.total_peers as f64);
        p.set_num("zipf_s", self.zipf_s);
        p.set_num("min_swarm", self.min_swarm as f64);
        p.set_num("file_size", self.file_size as f64);
        p.set_num("probe_file_size", self.probe_file_size as f64);
        p.set_num("piece_length", self.piece_length as f64);
        p.set_num("probe_leeches_per_class", self.probe_leeches_per_class as f64);
        p.set_num("probe_mobile_fraction", self.probe_mobile_fraction);
        p.set_num("mobile_fraction", self.mobile_fraction);
        p.set_num("multi_swarm_fraction", self.multi_swarm_fraction);
        p.set_num("super_seed_every", self.super_seed_every as f64);
        p.set_num("super_seed_swarms", self.super_seed_swarms as f64);
        p.set_num("super_seed_cap", self.super_seed_cap);
        p.set_num("flash_crowds", self.flash_crowds as f64);
        p.set_dur("flash_mean_gap_s", self.flash_mean_gap);
        p.set_num("flash_size", self.flash_size as f64);
        p.set_dur("day_length_s", self.day_length);
        p.set_num("diurnal_amp", self.diurnal_amp);
        p.set_dur("handoff_period_s", self.handoff_period);
        p.set_dur("handoff_outage_s", self.handoff_outage);
        p.set_num("outage_shard", self.outage_shard as f64);
        p.set_dur("outage_at_s", self.outage_at);
        p.set_dur("outage_len_s", self.outage_len);
        p.set_dur("sample_every_s", self.sample_every);
        p.set_dur("horizon_s", self.horizon);
        p.set_num("cluster_margin", self.cluster_margin);
        p.set_num("runs", self.runs as f64);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        ServiceParams {
            swarms: p.usize_or("swarms", base.swarms),
            tracker_shards: p.usize_or("tracker_shards", base.tracker_shards),
            total_peers: p.usize_or("total_peers", base.total_peers),
            zipf_s: p.num_or("zipf_s", base.zipf_s),
            min_swarm: p.usize_or("min_swarm", base.min_swarm),
            file_size: p.u64_or("file_size", base.file_size),
            probe_file_size: p.u64_or("probe_file_size", base.probe_file_size),
            piece_length: p.u32_or("piece_length", base.piece_length),
            probe_leeches_per_class: p
                .usize_or("probe_leeches_per_class", base.probe_leeches_per_class),
            probe_mobile_fraction: p.num_or("probe_mobile_fraction", base.probe_mobile_fraction),
            mobile_fraction: p.num_or("mobile_fraction", base.mobile_fraction),
            multi_swarm_fraction: p.num_or("multi_swarm_fraction", base.multi_swarm_fraction),
            super_seed_every: p.usize_or("super_seed_every", base.super_seed_every),
            super_seed_swarms: p.usize_or("super_seed_swarms", base.super_seed_swarms),
            super_seed_cap: p.num_or("super_seed_cap", base.super_seed_cap),
            flash_crowds: p.usize_or("flash_crowds", base.flash_crowds),
            flash_mean_gap: p.dur_or("flash_mean_gap_s", base.flash_mean_gap),
            flash_size: p.usize_or("flash_size", base.flash_size),
            day_length: p.dur_or("day_length_s", base.day_length),
            diurnal_amp: p.num_or("diurnal_amp", base.diurnal_amp),
            handoff_period: p.dur_or("handoff_period_s", base.handoff_period),
            handoff_outage: p.dur_or("handoff_outage_s", base.handoff_outage),
            outage_shard: p.usize_or("outage_shard", base.outage_shard),
            outage_at: p.dur_or("outage_at_s", base.outage_at),
            outage_len: p.dur_or("outage_len_s", base.outage_len),
            sample_every: p.dur_or("sample_every_s", base.sample_every),
            horizon: p.dur_or("horizon_s", base.horizon),
            cluster_margin: p.num_or("cluster_margin", base.cluster_margin),
            runs: p.u64_or("runs", base.runs),
        }
    }
}

builder_setters!(ServiceParams {
    swarms: usize,
    tracker_shards: usize,
    total_peers: usize,
    zipf_s: f64,
    min_swarm: usize,
    file_size: u64,
    probe_file_size: u64,
    piece_length: u32,
    probe_leeches_per_class: usize,
    probe_mobile_fraction: f64,
    mobile_fraction: f64,
    multi_swarm_fraction: f64,
    super_seed_every: usize,
    super_seed_swarms: usize,
    super_seed_cap: f64,
    flash_crowds: usize,
    flash_mean_gap: SimDuration,
    flash_size: usize,
    day_length: SimDuration,
    diurnal_amp: f64,
    handoff_period: SimDuration,
    handoff_outage: SimDuration,
    outage_shard: usize,
    outage_at: SimDuration,
    outage_len: SimDuration,
    sample_every: SimDuration,
    horizon: SimDuration,
    cluster_margin: f64,
    runs: u64,
});

// ---------------------------------------------------------------------
// Workload generator
// ---------------------------------------------------------------------

/// What a swarm is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwarmKind {
    /// All-fixed-host 3-class probe (clustering must emerge here).
    FixedProbe,
    /// 3-class probe with a mobile share (clustering distortion).
    MobileProbe,
    /// Zipf-sized background swarm.
    Background,
}

/// One planned leech membership.
#[derive(Clone, Debug)]
pub struct LeechPlan {
    /// Upload class (probes only; background leeches carry 0).
    pub class: u8,
    /// Mobile hand-off process: `(period, outage)` after diurnal
    /// modulation. `None` = fixed host.
    pub mobile: Option<(SimDuration, SimDuration)>,
    /// Initial completion fraction (mutual-interest spread).
    pub head_start: f64,
    /// Shared multi-swarm node, as an index into the shared-node pool.
    pub shared_node: Option<usize>,
    /// When the member joins; non-zero = flash-crowd arrival.
    pub start_at: SimTime,
}

/// One planned swarm.
#[derive(Clone, Debug)]
pub struct SwarmPlan {
    /// Role of the swarm.
    pub kind: SwarmKind,
    /// Its torrent (the info-hash decides the owning shard).
    pub torrent: TorrentSpec,
    /// Owning tracker shard.
    pub shard: usize,
    /// Super-seed pool index serving it (`None` = dedicated seed).
    pub super_seed: Option<usize>,
    /// Planned leeches (flash arrivals included, appended last).
    pub leeches: Vec<LeechPlan>,
}

/// One flash-crowd event.
#[derive(Clone, Debug, PartialEq)]
pub struct FlashCrowd {
    /// Arrival instant.
    pub at: SimTime,
    /// Target swarm index.
    pub swarm: usize,
    /// Burst size (late joiners added to the swarm).
    pub size: usize,
}

/// The full seeded workload: everything the world builder consumes.
#[derive(Clone, Debug)]
pub struct ServiceWorkload {
    /// Probes first (fixed, mobile), then background swarms by
    /// popularity rank.
    pub swarms: Vec<SwarmPlan>,
    /// Flash-crowd events in arrival order.
    pub flash: Vec<FlashCrowd>,
    /// Size of the shared multi-swarm leech-node pool.
    pub shared_nodes: usize,
    /// Size of the super-seed node pool.
    pub super_seeds: usize,
}

impl ServiceWorkload {
    /// Total planned memberships (seeds + leeches, flash included).
    pub fn memberships(&self) -> usize {
        self.swarms.iter().map(|s| 1 + s.leeches.len()).sum()
    }

    /// Renders the workload to a stable text form — the determinism
    /// anchor (byte-compared across replays and worker counts).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (k, s) in self.swarms.iter().enumerate() {
            let h = s.torrent.info_hash.0;
            let _ = writeln!(
                out,
                "swarm {k} {:?} ih={:02x}{:02x}{:02x}{:02x} shard={} seed={} leeches={}",
                s.kind,
                h[0],
                h[1],
                h[2],
                h[3],
                s.shard,
                match s.super_seed {
                    Some(i) => format!("super{i}"),
                    None => "own".to_string(),
                },
                s.leeches.len(),
            );
            for (i, l) in s.leeches.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  l{i} c{} {} hs={:.3} node={} at={}",
                    l.class,
                    match l.mobile {
                        Some((p, o)) => format!("mobile({p},{o})"),
                        None => "fixed".to_string(),
                    },
                    l.head_start,
                    match l.shared_node {
                        Some(n) => format!("shared{n}"),
                        None => "own".to_string(),
                    },
                    l.start_at,
                );
            }
        }
        for f in &self.flash {
            let _ = writeln!(out, "flash at={} swarm={} size={}", f.at, f.swarm, f.size);
        }
        out
    }

    /// FNV-1a digest of [`Self::render`] — a compact determinism anchor
    /// carried in the outcome.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.render().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Diurnal modulation factor at a phase in [0, 1): activity peaks
/// mid-day (shorter hand-off periods = more churn), troughs at night.
fn diurnal_factor(phase: f64, amp: f64) -> f64 {
    let f = 1.0 - amp * (std::f64::consts::TAU * phase).sin();
    f.max(0.25)
}

/// A diurnally modulated mobile hand-off assignment. The phase is where
/// the host's activity falls in the compressed day: flash arrivals use
/// their arrival time, initial members draw a personal offset.
fn mobile_assignment(
    params: &ServiceParams,
    phase: f64,
    rng: &mut SimRng,
) -> (SimDuration, SimDuration) {
    let f = diurnal_factor(phase, params.diurnal_amp);
    let base = params.handoff_period.as_secs_f64() * f;
    let period = rng.jitter(base, 0.2).max(2.0);
    (SimDuration::from_secs_f64(period), params.handoff_outage)
}

/// Generates the full service workload: a pure function of
/// `(params, seed)`. All draws come from forked RNG streams, so the
/// plan is byte-identical across replays and worker counts.
pub fn generate_workload(params: &ServiceParams, seed: u64) -> ServiceWorkload {
    let mut rng = SimRng::new(seed).fork(0x5e71_0001);
    let shards = params.tracker_shards.max(1);
    let mut swarms = Vec::with_capacity(params.swarms + 2);

    // Probe swarms first: 3 upload classes round-robin; the mobile
    // probe marks an exact `probe_mobile_fraction` share mobile,
    // spread across classes.
    for kind in [SwarmKind::FixedProbe, SwarmKind::MobileProbe] {
        let n = CLASSES * params.probe_leeches_per_class;
        let mobile_count = if kind == SwarmKind::MobileProbe {
            (params.probe_mobile_fraction * n as f64).round() as usize
        } else {
            0
        };
        let name = match kind {
            SwarmKind::FixedProbe => "svc-probe-fixed.bin",
            SwarmKind::MobileProbe => "svc-probe-mobile.bin",
            SwarmKind::Background => unreachable!(),
        };
        let torrent = synthetic_torrent(
            name,
            params.piece_length,
            params.probe_file_size,
            seed ^ 0x9e37,
        );
        let mut leeches = Vec::with_capacity(n);
        for i in 0..n {
            // i*mobile_count/n < mobile_count exactly mobile_count
            // times, and classes cycle, so every class gets its share
            // of mobile hosts.
            let mobile = (i * mobile_count) / n.max(1) < mobile_count
                && ((i + 1) * mobile_count) / n.max(1) > (i * mobile_count) / n.max(1);
            let phase = rng.unit();
            // Probes start empty: a head start would shorten some peers'
            // leech phase and blur the class signal the probe measures.
            leeches.push(LeechPlan {
                class: (i % CLASSES) as u8,
                mobile: mobile.then(|| mobile_assignment(params, phase, &mut rng)),
                head_start: 0.0,
                shared_node: None,
                start_at: SimTime::ZERO,
            });
        }
        swarms.push(SwarmPlan {
            kind,
            shard: bittorrent::tracker::shard_of(torrent.info_hash, shards),
            torrent,
            super_seed: None,
            leeches,
        });
    }

    // Background swarms: Zipf-distributed sizes summing to roughly the
    // membership target (min-size clamping can only push it up).
    let harmonic: f64 = (0..params.swarms)
        .map(|k| 1.0 / ((k + 1) as f64).powf(params.zipf_s))
        .sum();
    let scale = params.total_peers as f64 / harmonic.max(1e-9);
    let shared_pool = ((params.total_peers as f64 * params.multi_swarm_fraction / 2.5) as usize)
        .max(1);
    let super_pool = params
        .swarms
        .checked_div(params.super_seed_every)
        .map_or(0, |per| (per / params.super_seed_swarms.max(1)).max(1));
    let mut super_assigned = 0usize;
    for k in 0..params.swarms {
        let raw = scale / ((k + 1) as f64).powf(params.zipf_s);
        let size = (raw.round() as usize).max(params.min_swarm);
        let torrent = synthetic_torrent(
            &format!("svc-{k}.bin"),
            params.piece_length,
            params.file_size,
            seed.wrapping_add(k as u64),
        );
        let super_seed = if params.super_seed_every != 0
            && k % params.super_seed_every == 0
            && super_pool > 0
        {
            let idx = super_assigned % super_pool;
            super_assigned += 1;
            Some(idx)
        } else {
            None
        };
        let mut leeches = Vec::with_capacity(size - 1);
        let mut used_shared: Vec<usize> = Vec::new();
        for i in 0..size - 1 {
            let mobile = rng.chance(params.mobile_fraction);
            let shared_node = if !mobile && rng.chance(params.multi_swarm_fraction) {
                let cand = rng.range(0..shared_pool);
                if used_shared.contains(&cand) {
                    None
                } else {
                    used_shared.push(cand);
                    Some(cand)
                }
            } else {
                None
            };
            let phase = rng.unit();
            leeches.push(LeechPlan {
                class: 0,
                mobile: mobile.then(|| mobile_assignment(params, phase, &mut rng)),
                head_start: 0.4 * (i + 1) as f64 / size as f64,
                shared_node,
                start_at: SimTime::ZERO,
            });
        }
        swarms.push(SwarmPlan {
            kind: SwarmKind::Background,
            shard: bittorrent::tracker::shard_of(torrent.info_hash, shards),
            torrent,
            super_seed,
            leeches,
        });
    }

    // Flash crowds: a Poisson process over the first half of the
    // horizon, popularity-biased toward the head of the Zipf ranking.
    let mut flash = Vec::new();
    let mut frng = SimRng::new(seed).fork(0x5e71_0002);
    let window = params.horizon.as_secs_f64() * 0.5;
    let mut t = 15.0;
    while flash.len() < params.flash_crowds {
        t += frng.exp(params.flash_mean_gap.as_secs_f64());
        if t >= window {
            break;
        }
        // unit()^2 biases toward rank 0 (the most popular swarms).
        let rank = (frng.unit().powi(2) * params.swarms as f64) as usize;
        let swarm = 2 + rank.min(params.swarms - 1);
        let size = frng.range(params.flash_size / 2..=params.flash_size * 3 / 2).max(1);
        let at = SimTime::ZERO + SimDuration::from_secs_f64(t);
        for j in 0..size {
            let jitter = SimDuration::from_millis((j as u64 % 8) * 250);
            let phase = (t / params.day_length.as_secs_f64()).fract();
            let mobile = frng.chance(params.mobile_fraction);
            swarms[swarm].leeches.push(LeechPlan {
                class: 0,
                mobile: mobile.then(|| mobile_assignment(params, phase, &mut frng)),
                head_start: 0.0,
                shared_node: None,
                start_at: at + jitter,
            });
        }
        flash.push(FlashCrowd { at, swarm, size });
    }

    ServiceWorkload {
        swarms,
        flash,
        shared_nodes: shared_pool,
        super_seeds: super_pool,
    }
}

// ---------------------------------------------------------------------
// World construction and the run itself
// ---------------------------------------------------------------------

struct BuiltService {
    world: FlowWorld,
    /// Leech tasks per swarm (plan order: flash arrivals last).
    swarm_leeches: Vec<Vec<TaskKey>>,
    nodes: usize,
    tasks: usize,
}

/// Downlink shared by all leeches, bytes/second.
const LEECH_DOWN: f64 = 4_000_000.0 / 8.0;

fn leech_access(class: u8, mobile: bool) -> Access {
    let up = CLASS_UP[class as usize % CLASSES];
    if mobile {
        // One contended channel sized so the uplink class is preserved
        // on top of a typical WLAN downlink share.
        Access::Wireless {
            capacity: up + 2_000_000.0 / 8.0,
        }
    } else {
        Access::Wired {
            up,
            down: LEECH_DOWN,
        }
    }
}

fn build_service_world(
    params: &ServiceParams,
    workload: &ServiceWorkload,
    seed: u64,
) -> BuiltService {
    let cfg = FlowConfig {
        tracker_shards: params.tracker_shards,
        track_peer_bytes: true,
        ..FlowConfig::default()
    };
    let mut w = FlowWorld::new(cfg, seed);
    let mut rng = SimRng::new(seed).fork(0x5e71_0003);

    // Shared node pools, created up front in index order.
    let super_nodes: Vec<usize> = (0..workload.super_seeds)
        .map(|_| {
            let n = w.add_node(Access::campus());
            w.set_node_upload_cap(n, Some(params.super_seed_cap));
            n
        })
        .collect();
    let shared_nodes: Vec<usize> = (0..workload.shared_nodes)
        .map(|_| {
            w.add_node(Access::Wired {
                up: 2.0 * CLASS_UP[0],
                down: LEECH_DOWN,
            })
        })
        .collect();

    let mut swarm_leeches = Vec::with_capacity(workload.swarms.len());
    let mut tasks = 0usize;
    for plan in &workload.swarms {
        // The seed.
        let seed_node = match plan.super_seed {
            Some(i) => super_nodes[i % super_nodes.len().max(1)],
            None => w.add_node(Access::campus()),
        };
        w.add_task(TaskSpec::default_client(seed_node, plan.torrent, true));
        tasks += 1;

        let mut leeches = Vec::with_capacity(plan.leeches.len());
        for l in &plan.leeches {
            let node = match l.shared_node {
                Some(i) => shared_nodes[i % shared_nodes.len().max(1)],
                None => w.add_node(leech_access(l.class, l.mobile.is_some())),
            };
            if let Some((period, outage)) = l.mobile {
                w.set_mobility(node, MobilityProcess::with_jitter(period, outage, 0.2));
            }
            let mut spec = TaskSpec::default_client(node, plan.torrent, false);
            if l.head_start > 0.0 {
                spec.start_fraction = Some(l.head_start);
            }
            spec.start_at = l.start_at;
            leeches.push(w.add_task(spec));
            tasks += 1;
        }
        swarm_leeches.push(leeches);
    }
    // Shared multi-swarm leech nodes get a modest cross-swarm uplink
    // cap too: their tasks contend for one token bucket like the
    // super-seeds (exercises the same scheduling path from day one).
    for &n in &shared_nodes {
        w.set_node_upload_cap(n, Some(2.0 * CLASS_UP[0] * rng.jitter(1.0, 0.1)));
    }
    let nodes = w.node_count();
    BuiltService {
        world: w,
        swarm_leeches,
        nodes,
        tasks,
    }
}

/// Per-swarm completion-time distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct SwarmStats {
    /// Swarm index (0 = fixed probe, 1 = mobile probe).
    pub swarm: usize,
    /// Owning tracker shard.
    pub shard: usize,
    /// Leeches planned (flash arrivals included).
    pub size: usize,
    /// Leeches that completed within the horizon.
    pub completed: usize,
    /// Median completion time, seconds since each member's join.
    pub p50_s: f64,
    /// 90th-percentile completion time.
    pub p90_s: f64,
    /// Worst completion time.
    pub worst_s: f64,
}

/// The deterministic observables of one service run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceOutcome {
    /// Swarms simulated (probes included).
    pub swarms: usize,
    /// Tracker shards.
    pub shards: usize,
    /// Nodes in the world.
    pub nodes: usize,
    /// Tasks (memberships) in the world.
    pub tasks: usize,
    /// Flash-crowd events injected.
    pub flash_crowds: usize,
    /// Per-swarm completion stats, swarm order.
    pub per_swarm: Vec<SwarmStats>,
    /// `(t_secs, cumulative announces per shard)` samples.
    pub shard_samples: Vec<(f64, Vec<u64>)>,
    /// Final announce totals per shard.
    pub shard_totals: Vec<u64>,
    /// Clustering coefficient of the fixed probe (must exceed the
    /// emergence margin).
    pub fixed_coeff: f64,
    /// Clustering coefficient of the mobile probe (measured).
    pub mobile_coeff: f64,
    /// Completed leeches / all leeches.
    pub completed_frac: f64,
    /// [`ServiceWorkload::digest`] of the plan that ran.
    pub workload_digest: u64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-leech cumulative download bytes, keyed by sending task (sorted).
/// Row `i` belongs to `leeches[i]`.
type ByteMatrix = Vec<Vec<(TaskKey, u64)>>;

fn probe_bytes(w: &FlowWorld, leeches: &[TaskKey]) -> ByteMatrix {
    leeches.iter().map(|&t| w.peer_download_bytes(t)).collect()
}

/// Upload-class clustering coefficient of one probe swarm: the
/// byte-weighted same-class download share across its leeches, over the
/// random-mixing baseline `(per-class peers - 1) / (peers - 1)`.
/// `1.0` = no clustering; seeds are excluded on both axes. When `base`
/// is given, only bytes transferred *since* that snapshot count — the
/// window that excludes both the seed-dominated startup transient and
/// the classless post-completion seeding phase.
fn clustering_coefficient(leeches: &[TaskKey], now: &ByteMatrix, base: Option<&ByteMatrix>) -> f64 {
    let class_of = |t: TaskKey| -> usize {
        leeches.iter().position(|&x| x == t).map_or(usize::MAX, |i| i % CLASSES)
    };
    let mut same = 0u64;
    let mut total = 0u64;
    for (i, &t) in leeches.iter().enumerate() {
        let c = class_of(t);
        for &(src, bytes) in &now[i] {
            let sc = class_of(src);
            if sc == usize::MAX {
                continue; // seed or out-of-swarm sender
            }
            let before = base
                .and_then(|b| {
                    b[i].binary_search_by_key(&src, |&(s, _)| s).ok().map(|j| b[i][j].1)
                })
                .unwrap_or(0);
            let delta = bytes.saturating_sub(before);
            total += delta;
            if sc == c {
                same += delta;
            }
        }
    }
    if total == 0 {
        return 0.0;
    }
    let n = leeches.len() as f64;
    let per_class = n / CLASSES as f64;
    let baseline = (per_class - 1.0) / (n - 1.0);
    (same as f64 / total as f64) / baseline.max(1e-9)
}

/// Runs one seeded service world end to end and extracts every
/// observable. Pure in `(params, seed)`.
pub fn run_service_world(params: &ServiceParams, seed: u64) -> ServiceOutcome {
    let workload = generate_workload(params, seed);
    let digest = workload.digest();
    let mut built = build_service_world(params, &workload, seed);
    let w = &mut built.world;
    w.start();

    let mut samples: Vec<(f64, Vec<u64>)> = Vec::new();
    let mut next_sample = SimTime::ZERO;
    let sample_every = params.sample_every;
    let shards = params.tracker_shards;
    // The clustering coefficient is a *leech-phase* measure (Legout):
    // early on the seed dominates and rechoke hasn't converged; once
    // fast-class peers complete they seed everyone, and that classless
    // upload washes the signal out. Each probe's coefficient is
    // therefore computed over the byte deltas between a warmup snapshot
    // (a few rechoke intervals in) and the instant its first leeches
    // complete, falling back to the end-of-run window if the probe
    // never completes anyone.
    let warmup = SimTime::ZERO + CLUSTER_WARMUP;
    let probe_leeches: [Vec<TaskKey>; 2] =
        [built.swarm_leeches[0].clone(), built.swarm_leeches[1].clone()];
    let mut probe_base: [Option<ByteMatrix>; 2] = [None, None];
    let mut probe_coeff: [Option<f64>; 2] = [None, None];
    let mut sampler = |w: &mut FlowWorld| {
        if w.now() >= next_sample {
            let cum: Vec<u64> = (0..shards).map(|s| w.tracker_shard_announces(s)).collect();
            samples.push((w.now().as_secs_f64(), cum));
            next_sample = w.now() + sample_every;
        }
        for (p, leeches) in probe_leeches.iter().enumerate() {
            if probe_coeff[p].is_some() {
                continue;
            }
            if probe_base[p].is_none() && w.now() >= warmup {
                probe_base[p] = Some(probe_bytes(w, leeches));
            }
            let done = leeches.iter().filter(|&&t| w.completed_at(t).is_some()).count();
            if done >= 2 {
                let now_bytes = probe_bytes(w, leeches);
                probe_coeff[p] =
                    Some(clustering_coefficient(leeches, &now_bytes, probe_base[p].as_ref()));
            }
        }
    };

    // Phase 1: up to the shard outage.
    let outage_at = SimTime::ZERO + params.outage_at;
    w.run_until(outage_at.min(SimTime::ZERO + params.horizon), &mut sampler);
    // The partial-service fault: one shard dark, the rest keep serving.
    if params.outage_len > SimDuration::ZERO && params.outage_shard < shards {
        w.set_tracker_shard_down(params.outage_shard, true);
        w.run_until(outage_at + params.outage_len, &mut sampler);
        w.set_tracker_shard_down(params.outage_shard, false);
    }
    // Phase 3: to the horizon.
    w.run_until(SimTime::ZERO + params.horizon, &mut sampler);

    let shard_totals: Vec<u64> = (0..shards).map(|s| w.tracker_shard_announces(s)).collect();

    let mut per_swarm = Vec::with_capacity(workload.swarms.len());
    let mut done = 0usize;
    let mut all = 0usize;
    for (k, leeches) in built.swarm_leeches.iter().enumerate() {
        let mut times: Vec<f64> = Vec::new();
        for (&t, plan) in leeches.iter().zip(&workload.swarms[k].leeches) {
            all += 1;
            if let Some(at) = w.completed_at(t) {
                done += 1;
                times.push(at.saturating_since(plan.start_at).as_secs_f64());
            }
        }
        times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        per_swarm.push(SwarmStats {
            swarm: k,
            shard: workload.swarms[k].shard,
            size: leeches.len(),
            completed: times.len(),
            p50_s: percentile(&times, 0.5),
            p90_s: percentile(&times, 0.9),
            worst_s: times.last().copied().unwrap_or(0.0),
        });
    }

    let final_coeff = |p: usize| {
        let now_bytes = probe_bytes(w, &probe_leeches[p]);
        clustering_coefficient(&probe_leeches[p], &now_bytes, probe_base[p].as_ref())
    };
    let fixed_coeff = probe_coeff[0].unwrap_or_else(|| final_coeff(0));
    let mobile_coeff = probe_coeff[1].unwrap_or_else(|| final_coeff(1));

    ServiceOutcome {
        swarms: workload.swarms.len(),
        shards,
        nodes: built.nodes,
        tasks: built.tasks,
        flash_crowds: workload.flash.len(),
        per_swarm,
        shard_samples: samples,
        shard_totals,
        fixed_coeff,
        mobile_coeff,
        completed_frac: done as f64 / all.max(1) as f64,
        workload_digest: digest,
    }
}

fn run_service_impl(
    params: &ServiceParams,
    metrics: &MetricsHandle,
    base_seed: u64,
    threads: Option<usize>,
) -> ServiceOutcome {
    let mut runner = SweepRunner::new("service", base_seed).with_metrics(metrics);
    if let Some(n) = threads {
        runner = runner.with_threads(n);
    }
    let points = [0usize];
    let cells = runner.run(&points, params.runs as usize, |_, cell| {
        cell.add_virtual_secs(params.horizon.as_secs_f64());
        run_service_world(params, cell.seed)
    });
    let outcome = cells.into_iter().next().expect("one point")
        .into_iter().next().expect("one run");

    // Clustering must *emerge* in the all-fixed probe; the mobile probe
    // is measured, not asserted — its gap to the fixed coefficient is
    // the churn distortion.
    assert!(
        outcome.fixed_coeff >= params.cluster_margin,
        "upload-class clustering did not emerge in the fixed probe swarm: \
coefficient {:.3} < margin {:.3}",
        outcome.fixed_coeff,
        params.cluster_margin
    );

    // All metric writes happen here, after the sweep, from the run-0
    // outcome — one sequential writer, so worker count cannot reorder
    // anything.
    let g = |name: &str| metrics.gauge(name);
    g("service.swarms").set(outcome.swarms as f64);
    g("service.shards").set(outcome.shards as f64);
    g("service.nodes").set(outcome.nodes as f64);
    g("service.tasks").set(outcome.tasks as f64);
    g("service.flash_crowds").set(outcome.flash_crowds as f64);
    g("service.completed_frac").set(outcome.completed_frac);
    g("service.cluster.fixed").set(outcome.fixed_coeff);
    g("service.cluster.mobile").set(outcome.mobile_coeff);
    g("service.cluster.distortion").set(outcome.fixed_coeff - outcome.mobile_coeff);

    for s in 0..outcome.shards {
        let series = metrics.series(&format!("service.shard{s}.qps"));
        let mut peak = 0.0f64;
        for pair in outcome.shard_samples.windows(2) {
            let (t0, ref a) = pair[0];
            let (t1, ref b) = pair[1];
            let dt = (t1 - t0).max(1e-9);
            let qps = (b[s].saturating_sub(a[s])) as f64 / dt;
            peak = peak.max(qps);
            series.record(SimTime::ZERO + SimDuration::from_secs_f64(t1), qps);
        }
        g(&format!("service.shard{s}.peak_qps")).set(peak);
        g(&format!("service.shard{s}.announces")).set(
            outcome.shard_totals[s] as f64,
        );
    }

    let p50 = metrics.series("service.swarm.p50_s");
    let p90 = metrics.series("service.swarm.p90_s");
    let hist = metrics.histogram(
        "service.completion_s",
        &[15.0, 30.0, 60.0, 120.0, 240.0, 480.0],
    );
    for s in &outcome.per_swarm {
        if s.completed > 0 {
            p50.record(SimTime::from_secs(s.swarm as u64), s.p50_s);
            p90.record(SimTime::from_secs(s.swarm as u64), s.p90_s);
            hist.record(s.p50_s);
        }
    }
    outcome
}

/// Runs the service tier on an explicit metrics handle and base seed.
///
/// # Panics
///
/// Panics when upload-class clustering fails to emerge in the fixed
/// probe swarm — emergence is asserted, not reported.
pub fn run_service_with(
    params: &ServiceParams,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> ServiceOutcome {
    run_service_impl(params, metrics, base_seed, None)
}

/// [`run_service_with`] pinned to a worker count (the determinism tests
/// compare 1 vs 4 without touching `WP2P_THREADS`).
pub fn run_service_with_threads(
    params: &ServiceParams,
    metrics: &MetricsHandle,
    base_seed: u64,
    threads: usize,
) -> ServiceOutcome {
    run_service_impl(params, metrics, base_seed, Some(threads))
}

/// Renders the service run: tier shape, clustering, per-shard load
/// peaks, and completion percentiles over the swarm population.
pub fn service_table(o: &ServiceOutcome) -> Table {
    let mut t = Table::new("Multi-swarm service tier: sharded trackers under flash crowds");
    t.headers(["metric", "value"]);
    t.row(["swarms".into(), o.swarms.to_string()]);
    t.row(["tracker shards".into(), o.shards.to_string()]);
    t.row(["nodes".into(), o.nodes.to_string()]);
    t.row(["memberships (tasks)".into(), o.tasks.to_string()]);
    t.row(["flash crowds".into(), o.flash_crowds.to_string()]);
    t.row(["completed leeches".into(), pct(o.completed_frac)]);
    t.row([
        "clustering (fixed probe)".into(),
        format!("{:.3}", o.fixed_coeff),
    ]);
    t.row([
        "clustering (30% mobile probe)".into(),
        format!("{:.3}", o.mobile_coeff),
    ]);
    t.row([
        "clustering distortion".into(),
        format!("{:.3}", o.fixed_coeff - o.mobile_coeff),
    ]);
    for s in 0..o.shards {
        let peak = o
            .shard_samples
            .windows(2)
            .map(|p| {
                (p[1].1[s].saturating_sub(p[0].1[s])) as f64 / (p[1].0 - p[0].0).max(1e-9)
            })
            .fold(0.0f64, f64::max);
        t.row([
            format!("shard {s} announces / peak qps"),
            format!("{} / {:.1}", o.shard_totals[s], peak),
        ]);
    }
    // Completion percentiles across the swarm population (of per-swarm
    // medians), probes excluded — the service-level view.
    let mut p50s: Vec<f64> = o
        .per_swarm
        .iter()
        .skip(2)
        .filter(|s| s.completed > 0)
        .map(|s| s.p50_s)
        .collect();
    p50s.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
    t.row([
        "swarm p50 completion (p50/p90/worst)".into(),
        format!(
            "{:.0}s / {:.0}s / {:.0}s",
            percentile(&p50s, 0.5),
            percentile(&p50s, 0.9),
            p50s.last().copied().unwrap_or(0.0)
        ),
    ]);
    t.note("clustering emergence in the fixed probe is asserted, not reported");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately tiny tier: seconds, not minutes, per run.
    fn tiny() -> ServiceParams {
        ServiceParams::quick()
            .swarms(8)
            .tracker_shards(2)
            .total_peers(96)
            .min_swarm(4)
            .file_size(256 * 1024)
            .probe_file_size(1024 * 1024)
            .probe_leeches_per_class(4)
            .flash_crowds(2)
            .flash_size(4)
            .flash_mean_gap(SimDuration::from_secs(10))
            .outage_at(SimDuration::from_secs(60))
            .outage_len(SimDuration::from_secs(20))
            .day_length(SimDuration::from_secs(120))
            .horizon(SimDuration::from_secs(240))
            // Probes this small finish within a couple of rechoke
            // intervals, so clustering can't converge; emergence is
            // asserted by `legout_clustering_*` on a full-size probe
            // and by the quick preset, not by the tiny harness.
            .cluster_margin(0.0)
    }

    #[test]
    fn params_round_trip() {
        let p = ServiceParams::paper();
        let back = ServiceParams::from_params(&p.to_params());
        assert_eq!(p.swarms, back.swarms);
        assert_eq!(p.tracker_shards, back.tracker_shards);
        assert_eq!(p.total_peers, back.total_peers);
        assert_eq!(p.flash_mean_gap, back.flash_mean_gap);
        assert_eq!(p.day_length, back.day_length);
        assert_eq!(p.outage_shard, back.outage_shard);
        assert_eq!(p.horizon, back.horizon);
        assert_eq!(p.runs, back.runs);
    }

    #[test]
    fn workload_generator_is_deterministic() {
        let p = tiny();
        let a = generate_workload(&p, 42);
        let b = generate_workload(&p, 42);
        assert_eq!(a.render(), b.render(), "same seed must replay byte-identically");
        assert_eq!(a.digest(), b.digest());
        let c = generate_workload(&p, 43);
        assert_ne!(a.render(), c.render(), "different seeds must differ");
    }

    #[test]
    fn workload_meets_the_floors() {
        let p = ServiceParams::quick();
        let w = generate_workload(&p, SERVICE_SEED);
        assert!(w.swarms.len() >= 256 + 2, "swarm floor");
        assert!(w.memberships() >= 8192, "membership floor: {}", w.memberships());
        assert_eq!(p.tracker_shards, 4);
        // Every shard owns at least one swarm, and the probe swarms are
        // first with full 3-class rosters.
        let mut owned = vec![false; p.tracker_shards];
        for s in &w.swarms {
            owned[s.shard] = true;
        }
        assert!(owned.iter().all(|&o| o), "a shard owns no swarms");
        assert_eq!(w.swarms[0].kind, SwarmKind::FixedProbe);
        assert_eq!(w.swarms[1].kind, SwarmKind::MobileProbe);
        assert!(w.swarms[0].leeches.iter().all(|l| l.mobile.is_none()));
        let mobile = w.swarms[1].leeches.iter().filter(|l| l.mobile.is_some()).count();
        let n = w.swarms[1].leeches.len();
        assert_eq!(mobile, (0.3 * n as f64).round() as usize);
    }

    #[test]
    fn diurnal_modulation_swings_handoff_periods() {
        let p = ServiceParams::quick();
        // Mid-day (phase 0.25) churns hardest; night (0.75) least.
        let day = diurnal_factor(0.25, p.diurnal_amp);
        let night = diurnal_factor(0.75, p.diurnal_amp);
        assert!(day < 1.0 && night > 1.0 && night / day > 2.0);
        // The floor keeps periods positive at any amplitude.
        assert!(diurnal_factor(0.25, 1.5) >= 0.25);
    }

    #[test]
    fn flash_crowds_arrive_late_and_popularity_biased() {
        let p = tiny();
        let w = generate_workload(&p, 7);
        for f in &w.flash {
            assert!(f.at > SimTime::ZERO);
            assert!(f.swarm >= 2, "flash crowds only hit background swarms");
            assert!(f.size >= 1);
            let late = w.swarms[f.swarm]
                .leeches
                .iter()
                .filter(|l| l.start_at >= f.at)
                .count();
            assert!(late >= f.size, "burst members carry start_at >= arrival");
        }
    }

    #[test]
    fn service_run_replays_byte_identically() {
        let a = run_service_world(&tiny(), 42);
        let b = run_service_world(&tiny(), 42);
        assert_eq!(a, b, "service run diverged between replays");
        assert!(a.shard_totals.iter().sum::<u64>() > 0);
        assert!(a.completed_frac > 0.0);
    }

    #[test]
    fn service_sweep_deterministic_across_worker_counts() {
        let p = tiny();
        let a = run_service_with_threads(&p, &MetricsHandle::disabled(), SERVICE_SEED, 1);
        let b = run_service_with_threads(&p, &MetricsHandle::disabled(), SERVICE_SEED, 4);
        assert_eq!(a, b, "service run must not depend on worker count");
    }

    #[test]
    fn legout_clustering_emerges_fixed_and_distorts_mobile() {
        // The Legout regression: three upload classes, all fixed hosts
        // vs 30% mobile. Clustering must emerge in the fixed probe and
        // the mobile probe must not cluster harder than the fixed one.
        // The probes get a 30-leech roster and a longer transfer: the
        // coefficient is statistical, and a smaller probe is too noisy
        // to order the two reliably.
        let p = tiny()
            .swarms(2)
            .total_peers(16)
            .probe_leeches_per_class(10)
            .probe_file_size(48 * 1024 * 1024)
            .flash_crowds(0)
            .horizon(SimDuration::from_secs(360));
        let o = run_service_world(&p, SERVICE_SEED);
        assert!(
            o.fixed_coeff > 1.0,
            "no clustering in the fixed probe: {:.3}",
            o.fixed_coeff
        );
        assert!(
            o.mobile_coeff <= o.fixed_coeff,
            "mobile churn should distort clustering: fixed {:.3} vs mobile {:.3}",
            o.fixed_coeff,
            o.mobile_coeff
        );
    }

    #[test]
    fn shard_outage_dents_only_that_shards_load() {
        let o = run_service_world(&tiny(), 42);
        // During the outage window the dark shard's cumulative announce
        // count must go flat while some other shard keeps serving.
        let p = tiny();
        let t0 = p.outage_at.as_secs_f64();
        let t1 = (p.outage_at + p.outage_len).as_secs_f64();
        let in_window: Vec<&(f64, Vec<u64>)> = o
            .shard_samples
            .iter()
            .filter(|(t, _)| *t >= t0 && *t <= t1)
            .collect();
        assert!(in_window.len() >= 2, "need samples inside the outage window");
        let first = in_window.first().expect("nonempty");
        let last = in_window.last().expect("nonempty");
        let dark = p.outage_shard;
        assert_eq!(
            first.1[dark], last.1[dark],
            "dark shard served announces during its outage"
        );
        let others_moved = (0..p.tracker_shards)
            .filter(|&s| s != dark)
            .any(|s| last.1[s] > first.1[s]);
        assert!(others_moved, "healthy shards should keep serving");
    }
}
