//! Seeded fault-plan replay (`all_figures -- --faults <seed>`).
//!
//! Not a paper figure: a debugging and robustness harness. Given a seed,
//! it generates a deterministic [`FaultPlan`], replays it into a small
//! flow-world swarm *and* a packet-world transfer, and runs the full
//! [`InvariantChecker`] explicitly (release builds included). The same
//! seed always produces byte-identical fault schedules and world traces,
//! so a failing seed found in CI can be replayed locally unchanged.

use crate::experiments::common::{populate_swarm, synthetic_torrent, SwarmSetup};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskSpec};
use crate::invariants::InvariantChecker;
use crate::packet::{PacketConfig, PacketWorld};
use crate::report::Table;
use metrics::handle::MetricsHandle;
use simnet::addr::NodeId;
use simnet::fault::{FaultInjector, FaultPlan, FaultPlanConfig};
use simnet::time::{SimDuration, SimTime};
use simnet::wireless::WirelessConfig;

/// Everything a flow-world replay produces, rendered to strings so tests
/// can assert determinism byte-for-byte.
#[derive(Debug)]
pub struct FlowReplay {
    /// `FaultPlan::render()` of the schedule that was injected.
    pub schedule: String,
    /// The world's full event trace after the run.
    pub trace: String,
    /// Fault actions (window begins/ends) actually applied.
    pub applied: usize,
    /// Invariant passes completed with zero violations.
    pub checks: u64,
    /// Final completion fraction of every task.
    pub progress: Vec<f64>,
}

/// Replays the seed's fault plan into a 7-node flow swarm (1 campus
/// seed, 4 residential leeches, 1 wireless mobile leech) for `horizon`.
///
/// Panics if any invariant is violated during the run.
pub fn replay_flow(seed: u64, horizon: SimDuration) -> FlowReplay {
    replay_flow_with(seed, horizon, &MetricsHandle::disabled())
}

/// [`replay_flow`] with the world wired into `handle` (fault events,
/// hand-off latency, per-task series). Pass a disabled handle for the
/// plain replay.
pub fn replay_flow_with(seed: u64, horizon: SimDuration, handle: &MetricsHandle) -> FlowReplay {
    let torrent = synthetic_torrent("faults.bin", 256 * 1024, 4 * 1024 * 1024, seed);
    let mut w = FlowWorld::new(FlowConfig::default(), seed);
    w.set_metrics(handle);
    let (_seeds, mut tasks) = populate_swarm(&mut w, torrent, &SwarmSetup::small());
    let mobile = w.add_node(Access::Wireless {
        capacity: 2_000_000.0 / 8.0,
    });
    tasks.push(w.add_task(TaskSpec::default_client(mobile, torrent, false)));

    let nodes: Vec<NodeId> = (0..w.node_count()).map(|n| NodeId(n as u32)).collect();
    let mut cfg = FaultPlanConfig::new(horizon, nodes);
    cfg.events = 8;
    cfg.tracker_outages = true;
    cfg.crashes = true;
    let plan = FaultPlan::generate(seed, &cfg);
    let schedule = plan.render();
    let mut inj = FaultInjector::new(&plan);
    let mut ck = InvariantChecker::new();

    w.start();
    w.run_until(SimTime::ZERO + horizon, |w| {
        inj.poll(w);
        ck.check_flow(w);
    });
    FlowReplay {
        schedule,
        trace: w.trace().render(),
        applied: inj.applied(),
        checks: ck.checks(),
        progress: tasks.iter().map(|&t| w.progress_fraction(t)).collect(),
    }
}

/// Everything a packet-world replay produces.
#[derive(Debug)]
pub struct PacketReplay {
    /// `FaultPlan::render()` of the schedule that was injected.
    pub schedule: String,
    /// Fault actions actually applied.
    pub applied: usize,
    /// Invariant passes completed with zero violations.
    pub checks: u64,
    /// In-order bytes the receiver got (faults may keep this short of
    /// the 16 MB written — a churn event severs the raw connection).
    pub delivered: u64,
}

/// Replays the seed's fault plan into a two-node packet world (wired
/// sender, wireless receiver) carrying a 2 MB raw TCP transfer.
///
/// Panics if any invariant is violated during the run.
pub fn replay_packet(seed: u64, horizon: SimDuration) -> PacketReplay {
    replay_packet_with(seed, horizon, &MetricsHandle::disabled())
}

/// [`replay_packet`] with the world wired into `handle` (fault events
/// plus per-endpoint TCP series). Pass a disabled handle for the plain
/// replay.
pub fn replay_packet_with(seed: u64, horizon: SimDuration, handle: &MetricsHandle) -> PacketReplay {
    let mut w = PacketWorld::new(PacketConfig::default(), seed);
    w.set_metrics(handle);
    let a = w.add_node(None);
    let b = w.add_node(Some(WirelessConfig::wlan_80211g()));
    let conn = w.open_tcp(a, b);
    // Big enough that the stream is still flowing when the plan's events
    // (all within the first 5 s) fire: a fault after the last simulator
    // event would never be polled.
    w.tcp_write(conn, true, 16_000_000);

    // Concentrate the plan into the transfer's first seconds: the raw
    // stream finishes in single-digit virtual seconds, and a fault after
    // the last event would never be polled.
    let plan_span = SimDuration::from_secs(5).min(horizon);
    let mut cfg = FaultPlanConfig::new(plan_span, vec![NodeId(a as u32), NodeId(b as u32)]);
    cfg.events = 5;
    cfg.tracker_outages = false; // no overlay clients in this world
    cfg.crashes = false;
    let plan = FaultPlan::generate(seed, &cfg);
    let schedule = plan.render();
    let mut inj = FaultInjector::new(&plan);
    let mut ck = InvariantChecker::new();

    w.run_until(SimTime::ZERO + horizon, |w| {
        inj.poll(w);
        ck.check_packet(w);
    });
    PacketReplay {
        schedule,
        applied: inj.applied(),
        checks: ck.checks(),
        delivered: w.tcp_delivered(conn, false),
    }
}

/// Summary table for one replayed seed.
pub fn fault_table(seed: u64, flow: &FlowReplay, pkt: &PacketReplay) -> Table {
    let mut t = Table::new(&format!("Fault replay: seed {seed}"));
    t.headers(["world", "fault actions", "invariant checks", "outcome"]);
    let done = flow.progress.iter().filter(|&&p| p >= 1.0).count();
    t.row([
        "flow (6-peer swarm)".to_string(),
        flow.applied.to_string(),
        flow.checks.to_string(),
        format!("{done}/{} tasks complete", flow.progress.len()),
    ]);
    t.row([
        "packet (raw TCP)".to_string(),
        pkt.applied.to_string(),
        pkt.checks.to_string(),
        format!("{} of 16000000 bytes delivered", pkt.delivered),
    ]);
    t.note("zero invariant violations (a violation panics the replay)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_replay_is_byte_identical_for_same_seed() {
        let a = replay_flow(7, SimDuration::from_secs(60));
        let b = replay_flow(7, SimDuration::from_secs(60));
        assert_eq!(a.schedule, b.schedule, "fault schedule not deterministic");
        assert_eq!(a.trace, b.trace, "world trace not deterministic");
        assert_eq!(a.progress, b.progress);
        assert!(a.applied > 0, "plan applied no faults");
        assert!(a.checks > 0);
    }

    #[test]
    fn packet_replay_is_deterministic_and_checked() {
        let a = replay_packet(7, SimDuration::from_secs(30));
        let b = replay_packet(7, SimDuration::from_secs(30));
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.delivered, b.delivered);
        assert!(a.checks > 0);
    }
}
