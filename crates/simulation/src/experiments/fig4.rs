//! **Figure 4 — Server mobility and rarest-first fetching** (paper
//! §3.5–3.6).
//!
//! * Panel (a): a fixed peer downloads from three mobile seeds; throughput
//!   vs. the seeds' hand-off rate, for "one peer mobile" and "all peers
//!   mobile". Each hand-off silently invalidates the seed's address; the
//!   fixed peer keeps trying the dead address and recovers only via the
//!   tracker — so faster mobility means steeper degradation, amplified
//!   when every peer is mobile.
//! * Panels (b, c): playable fraction vs. downloaded fraction under
//!   rarest-first for a 5 MB and a 100 MB file (see
//!   [`super::playability`]).

use super::common::synthetic_torrent;
use super::params::{builder_setters, decode_opt_periods, encode_opt_periods, ExperimentParams};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskSpec};
use crate::harness::SweepRunner;
use crate::report::{kbps, Table};
use bittorrent::client::ClientConfig;
use bittorrent::tracker::TrackerConfig;
use metrics::handle::MetricsHandle;
use metrics::stats::RunSummary;
use simnet::mobility::MobilityProcess;
use simnet::time::{SimDuration, SimTime};
use wp2p::config::WP2pConfig;

/// Base seed of the Fig. 4(a) sweep.
pub const FIG4A_SEED: u64 = 0xF4A;
/// Seed of the Fig. 4(b) panel ((c) uses the successor).
pub const FIG4BC_SEED: u64 = 0x4B;

pub use super::playability::{
    playability_table, run_playability_with, PlayabilityCurve, PlayabilityParams,
};

/// Parameters for Fig. 4(a).
#[derive(Clone, Debug)]
pub struct Fig4aParams {
    /// Hand-off periods to sweep; `None` is the no-mobility baseline.
    pub periods: Vec<Option<SimDuration>>,
    /// Number of mobile seeds serving the fixed peer (paper: 3).
    pub seeds: usize,
    /// Per-seed wireless capacity (bytes/second).
    pub seed_capacity: f64,
    /// Hand-off outage.
    pub outage: SimDuration,
    /// Measurement duration per run.
    pub duration: SimDuration,
    /// Runs to average.
    pub runs: u64,
    /// Tracker announce interval (short enough that recovery happens
    /// within the sweep's timescales, as on the paper's testbed).
    pub tracker_interval: SimDuration,
}

impl Fig4aParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        Fig4aParams {
            periods: vec![
                None,
                Some(SimDuration::from_secs(120)),
                Some(SimDuration::from_secs(30)),
            ],
            seeds: 3,
            seed_capacity: 200_000.0,
            outage: SimDuration::from_secs(5),
            duration: SimDuration::from_mins(10),
            runs: 1,
            tracker_interval: SimDuration::from_secs(120),
        }
    }

    /// Paper-scale preset: {∞, 2, 1.5, 1, 0.5} minutes.
    pub fn paper() -> Self {
        Fig4aParams {
            periods: vec![
                None,
                Some(SimDuration::from_secs(120)),
                Some(SimDuration::from_secs(90)),
                Some(SimDuration::from_secs(60)),
                Some(SimDuration::from_secs(30)),
            ],
            seeds: 3,
            seed_capacity: 200_000.0,
            outage: SimDuration::from_secs(5),
            duration: SimDuration::from_mins(20),
            runs: 3,
            tracker_interval: SimDuration::from_secs(120),
        }
    }

    /// Converts to the registry's untyped parameter map (`None` periods
    /// encode as `-1`).
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_list("periods_s", &encode_opt_periods(&self.periods));
        p.set_num("seeds", self.seeds as f64);
        p.set_num("seed_capacity", self.seed_capacity);
        p.set_dur("outage_s", self.outage);
        p.set_dur("duration_s", self.duration);
        p.set_num("runs", self.runs as f64);
        p.set_dur("tracker_interval_s", self.tracker_interval);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        Fig4aParams {
            periods: decode_opt_periods(
                &p.list_or("periods_s", &encode_opt_periods(&base.periods)),
            ),
            seeds: p.usize_or("seeds", base.seeds),
            seed_capacity: p.num_or("seed_capacity", base.seed_capacity),
            outage: p.dur_or("outage_s", base.outage),
            duration: p.dur_or("duration_s", base.duration),
            runs: p.u64_or("runs", base.runs),
            tracker_interval: p.dur_or("tracker_interval_s", base.tracker_interval),
        }
    }
}

builder_setters!(Fig4aParams {
    periods: Vec<Option<SimDuration>>,
    seeds: usize,
    seed_capacity: f64,
    outage: SimDuration,
    duration: SimDuration,
    runs: u64,
    tracker_interval: SimDuration,
});

/// One point of Fig. 4(a).
#[derive(Clone, Copy, Debug)]
pub struct Fig4aPoint {
    /// Hand-off period (`None` = stationary).
    pub period: Option<SimDuration>,
    /// Fixed-peer download throughput with one mobile seed.
    pub one_mobile: RunSummary,
    /// Fixed-peer download throughput with all seeds mobile.
    pub all_mobile: RunSummary,
}

fn run_4a_once(
    params: &Fig4aParams,
    period: Option<SimDuration>,
    mobile_seeds: usize,
    metrics: &MetricsHandle,
    seed: u64,
) -> f64 {
    let cfg = FlowConfig {
        tracker: TrackerConfig {
            announce_interval: params.tracker_interval,
            ..TrackerConfig::default()
        },
        ..FlowConfig::default()
    };
    let mut w = FlowWorld::new(cfg, seed);
    w.set_metrics(metrics);
    // Large enough that the download never completes within the run.
    let torrent = synthetic_torrent("big.iso", 256 * 1024, 4 * 1024 * 1024 * 1024, seed);
    for i in 0..params.seeds {
        let node = w.add_node(Access::Wireless {
            capacity: params.seed_capacity,
        });
        w.add_task(TaskSpec::default_client(node, torrent, true));
        if i < mobile_seeds {
            if let Some(p) = period {
                w.set_mobility(node, MobilityProcess::with_jitter(p, params.outage, 0.1));
            }
        }
    }
    let fixed = w.add_node(Access::campus());
    let task = w.add_task(TaskSpec {
        node: fixed,
        torrent,
        start_complete: false,
        start_fraction: None,
        start_at: SimTime::ZERO,
        make_config: Box::new(ClientConfig::default),
        wp2p: WP2pConfig::default_client(),
    });
    w.start();
    w.run_for(params.duration, |_| {});
    w.downloaded_bytes(task) as f64 / params.duration.as_secs_f64()
}

/// [`run_fig4a`] with metrics: the first cell's one-mobile world is
/// wired into `metrics` (hand-off counters/latency histogram included).
pub fn run_fig4a_with(
    params: &Fig4aParams,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> Vec<Fig4aPoint> {
    let dur = params.duration.as_secs_f64();
    let cells = SweepRunner::new("fig4a", base_seed)
        .with_metrics(metrics)
        .run(&params.periods, params.runs as usize, |&period, cell| {
            cell.add_virtual_secs(2.0 * dur);
            let handle = if cell.point == 0 && cell.run == 0 {
                metrics.clone()
            } else {
                MetricsHandle::disabled()
            };
            (
                run_4a_once(params, period, 1, &handle, cell.run_seed),
                run_4a_once(
                    params,
                    period,
                    params.seeds,
                    &MetricsHandle::disabled(),
                    cell.run_seed,
                ),
            )
        });
    params
        .periods
        .iter()
        .zip(cells)
        .map(|(&period, runs)| {
            let one: Vec<f64> = runs.iter().map(|&(o, _)| o).collect();
            let all: Vec<f64> = runs.iter().map(|&(_, a)| a).collect();
            Fig4aPoint {
                period,
                one_mobile: RunSummary::of(&one),
                all_mobile: RunSummary::of(&all),
            }
        })
        .collect()
}

/// Renders Fig. 4(a).
pub fn fig4a_table(points: &[Fig4aPoint]) -> Table {
    let mut t = Table::new("Figure 4(a): Fixed-peer throughput (KBps) vs server mobility rate");
    t.headers(["mobility", "one mobile", "all mobile"]);
    for p in points {
        let label = match p.period {
            None => "none".to_string(),
            Some(d) => format!("every {:.1} min", d.as_secs_f64() / 60.0),
        };
        t.row([label, kbps(p.one_mobile.mean), kbps(p.all_mobile.mean)]);
    }
    t.note("paper: throughput falls as mobility quickens; all-mobile falls harder");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_mobility_degrades_fixed_peer_throughput() {
        let params = Fig4aParams::quick()
            .periods(vec![None, Some(SimDuration::from_secs(45))])
            .duration(SimDuration::from_mins(8));
        let pts = run_fig4a_with(&params, &MetricsHandle::disabled(), FIG4A_SEED);
        let baseline = pts[0].all_mobile.mean;
        let fast_one = pts[1].one_mobile.mean;
        let fast_all = pts[1].all_mobile.mean;
        assert!(
            fast_all < baseline,
            "all-mobile at 45 s must trail no-mobility: {fast_all} vs {baseline}"
        );
        assert!(
            fast_all < fast_one,
            "all-mobile must trail one-mobile: all={fast_all} one={fast_one}"
        );
        let t = fig4a_table(&pts);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fig4a_params_round_trip() {
        let p = Fig4aParams::paper();
        let q = Fig4aParams::from_params(
            &ExperimentParams::from_json(&p.to_params().to_json()).unwrap(),
        );
        assert_eq!(format!("{p:?}"), format!("{q:?}"));
    }
}
