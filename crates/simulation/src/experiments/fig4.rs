//! **Figure 4 — Server mobility and rarest-first fetching** (paper
//! §3.5–3.6).
//!
//! * Panel (a): a fixed peer downloads from three mobile seeds; throughput
//!   vs. the seeds' hand-off rate, for "one peer mobile" and "all peers
//!   mobile". Each hand-off silently invalidates the seed's address; the
//!   fixed peer keeps trying the dead address and recovers only via the
//!   tracker — so faster mobility means steeper degradation, amplified
//!   when every peer is mobile.
//! * Panels (b, c): playable fraction vs. downloaded fraction under
//!   rarest-first for a 5 MB and a 100 MB file (see
//!   [`super::playability`]).

use super::common::{rate, synthetic_torrent};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskSpec};
use crate::harness::SweepRunner;
use crate::report::{kbps, Table};
use bittorrent::client::ClientConfig;
use bittorrent::tracker::TrackerConfig;
use simnet::mobility::MobilityProcess;
use simnet::stats::RunSummary;
use simnet::time::SimDuration;
use wp2p::config::WP2pConfig;

pub use super::playability::{
    playability_table, run_playability, PlayabilityCurve, PlayabilityParams,
};

/// Parameters for Fig. 4(a).
#[derive(Clone, Debug)]
pub struct Fig4aParams {
    /// Hand-off periods to sweep; `None` is the no-mobility baseline.
    pub periods: Vec<Option<SimDuration>>,
    /// Number of mobile seeds serving the fixed peer (paper: 3).
    pub seeds: usize,
    /// Per-seed wireless capacity (bytes/second).
    pub seed_capacity: f64,
    /// Hand-off outage.
    pub outage: SimDuration,
    /// Measurement duration per run.
    pub duration: SimDuration,
    /// Runs to average.
    pub runs: u64,
    /// Tracker announce interval (short enough that recovery happens
    /// within the sweep's timescales, as on the paper's testbed).
    pub tracker_interval: SimDuration,
}

impl Fig4aParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        Fig4aParams {
            periods: vec![
                None,
                Some(SimDuration::from_secs(120)),
                Some(SimDuration::from_secs(30)),
            ],
            seeds: 3,
            seed_capacity: 200_000.0,
            outage: SimDuration::from_secs(5),
            duration: SimDuration::from_mins(10),
            runs: 1,
            tracker_interval: SimDuration::from_secs(120),
        }
    }

    /// Paper-scale preset: {∞, 2, 1.5, 1, 0.5} minutes.
    pub fn paper() -> Self {
        Fig4aParams {
            periods: vec![
                None,
                Some(SimDuration::from_secs(120)),
                Some(SimDuration::from_secs(90)),
                Some(SimDuration::from_secs(60)),
                Some(SimDuration::from_secs(30)),
            ],
            seeds: 3,
            seed_capacity: 200_000.0,
            outage: SimDuration::from_secs(5),
            duration: SimDuration::from_mins(20),
            runs: 3,
            tracker_interval: SimDuration::from_secs(120),
        }
    }
}

/// One point of Fig. 4(a).
#[derive(Clone, Copy, Debug)]
pub struct Fig4aPoint {
    /// Hand-off period (`None` = stationary).
    pub period: Option<SimDuration>,
    /// Fixed-peer download throughput with one mobile seed.
    pub one_mobile: RunSummary,
    /// Fixed-peer download throughput with all seeds mobile.
    pub all_mobile: RunSummary,
}

fn run_4a_once(
    params: &Fig4aParams,
    period: Option<SimDuration>,
    mobile_seeds: usize,
    seed: u64,
) -> f64 {
    let cfg = FlowConfig {
        tracker: TrackerConfig {
            announce_interval: params.tracker_interval,
            ..TrackerConfig::default()
        },
        ..FlowConfig::default()
    };
    let mut w = FlowWorld::new(cfg, seed);
    // Large enough that the download never completes within the run.
    let torrent = synthetic_torrent(
        "big.iso",
        256 * 1024,
        4 * 1024 * 1024 * 1024,
        seed,
    );
    for i in 0..params.seeds {
        let node = w.add_node(Access::Wireless {
            capacity: params.seed_capacity,
        });
        w.add_task(TaskSpec::default_client(node, torrent, true));
        if i < mobile_seeds {
            if let Some(p) = period {
                w.set_mobility(node, MobilityProcess::with_jitter(p, params.outage, 0.1));
            }
        }
    }
    let fixed = w.add_node(Access::campus());
    let task = w.add_task(TaskSpec {
        node: fixed,
        torrent,
        start_complete: false,
        start_fraction: None,
        make_config: Box::new(ClientConfig::default),
        wp2p: WP2pConfig::default_client(),
    });
    w.start();
    w.run_for(params.duration, |_| {});
    rate(w.downloaded_bytes(task), params.duration)
}

/// Runs the Fig. 4(a) sweep on the harness. Both arms (one/all mobile)
/// share a cell and its point-invariant seed, preserving the paired
/// comparison of the serial driver.
pub fn run_fig4a(params: &Fig4aParams) -> Vec<Fig4aPoint> {
    let dur = params.duration.as_secs_f64();
    let cells = SweepRunner::new("fig4a", 0xF4A).run(
        &params.periods,
        params.runs as usize,
        |&period, cell| {
            cell.add_virtual_secs(2.0 * dur);
            (
                run_4a_once(params, period, 1, cell.run_seed),
                run_4a_once(params, period, params.seeds, cell.run_seed),
            )
        },
    );
    params
        .periods
        .iter()
        .zip(cells)
        .map(|(&period, runs)| {
            let one: Vec<f64> = runs.iter().map(|&(o, _)| o).collect();
            let all: Vec<f64> = runs.iter().map(|&(_, a)| a).collect();
            Fig4aPoint {
                period,
                one_mobile: RunSummary::of(&one),
                all_mobile: RunSummary::of(&all),
            }
        })
        .collect()
}

/// Renders Fig. 4(a).
pub fn fig4a_table(points: &[Fig4aPoint]) -> Table {
    let mut t = Table::new("Figure 4(a): Fixed-peer throughput (KBps) vs server mobility rate");
    t.headers(["mobility", "one mobile", "all mobile"]);
    for p in points {
        let label = match p.period {
            None => "none".to_string(),
            Some(d) => format!("every {:.1} min", d.as_secs_f64() / 60.0),
        };
        t.row([label, kbps(p.one_mobile.mean), kbps(p.all_mobile.mean)]);
    }
    t.note("paper: throughput falls as mobility quickens; all-mobile falls harder");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_mobility_degrades_fixed_peer_throughput() {
        let params = Fig4aParams {
            periods: vec![None, Some(SimDuration::from_secs(45))],
            seeds: 3,
            seed_capacity: 200_000.0,
            outage: SimDuration::from_secs(5),
            duration: SimDuration::from_mins(8),
            runs: 1,
            tracker_interval: SimDuration::from_secs(120),
        };
        let pts = run_fig4a(&params);
        let baseline = pts[0].all_mobile.mean;
        let fast_one = pts[1].one_mobile.mean;
        let fast_all = pts[1].all_mobile.mean;
        assert!(
            fast_all < baseline,
            "all-mobile at 45 s must trail no-mobility: {fast_all} vs {baseline}"
        );
        assert!(
            fast_all < fast_one,
            "all-mobile must trail one-mobile: all={fast_all} one={fast_one}"
        );
        let t = fig4a_table(&pts);
        assert_eq!(t.len(), 2);
    }
}
