//! **Dark tracker tier** — the degradation ladder end to end
//! (`all_figures -- --blackout <seed>`).
//!
//! Not a paper figure: the robustness follow-up to the service tier.
//! One swarm, four arms, every observable a pure function of the seed:
//!
//! * **tracker-on** — the tier stays up, but the swarm's primary shard
//!   goes dark for a window mid-transfer. With
//!   [`FlowConfig::tracker_replicas`] on, announces fail over to the
//!   deterministic secondary shard
//!   ([`bittorrent::tracker::secondary_shard_of`]), and the start-burst
//!   of announces pushes the shard past its
//!   [`bittorrent::tracker::TrackerConfig::shed_capacity`], so overload
//!   shedding scales the advertised intervals — rungs one and two of
//!   the ladder, both asserted.
//! * **dark** — at `blackout_at` the *entire* tier goes down and stays
//!   down. Announce circuit breakers open
//!   ([`bittorrent::lifecycle::ResilienceConfig::breaker_threshold`]),
//!   probes go out at the cooloff cadence instead of hammering the dead
//!   shards, and peer discovery falls back to PEX gossip
//!   ([`bittorrent::client::PexConfig`]) — rung three. The arm asserts
//!   the swarm still reaches **100% completions** with no tracker at
//!   all.
//!
//! Both arms run twice: all fixed hosts, and with a 30% mobile share
//! whose hand-offs invalidate gossiped addresses mid-blackout (the
//! moved host re-dials its saved correspondents from its new address —
//! the paper's knowledge-retention story with the tracker subtracted).
//! The reported *degradation* is the dark arm's median completion time
//! over the tracker-on arm's, per population.

use super::common::synthetic_torrent;
use super::params::{builder_setters, ExperimentParams};
use crate::flow::{Access, FlowConfig, FlowWorld, TaskKey, TaskSpec};
use crate::harness::SweepRunner;
use crate::report::{pct, Table};
use bittorrent::client::{ClientConfig, PexConfig};
use bittorrent::lifecycle::ResilienceConfig;
use bittorrent::tracker::{secondary_shard_of, shard_of, TrackerConfig};
use metrics::handle::MetricsHandle;
use simnet::mobility::MobilityProcess;
use simnet::time::{SimDuration, SimTime};

/// Base seed of the blackout run (pinned by the determinism tests).
pub const BLACKOUT_SEED: u64 = 0xB1AC;

/// Parameters of the dark-tier blackout run.
#[derive(Clone, Copy, Debug)]
pub struct BlackoutParams {
    /// Leeches in the swarm (plus one seed).
    pub leeches: usize,
    /// Mobile share of the mobile arms' leeches.
    pub mobile_fraction: f64,
    /// File size.
    pub file_size: u64,
    /// Piece length.
    pub piece_length: u32,
    /// Seed uplink, bytes/second — sized so the transfer spans the
    /// blackout instant (a swarm that finishes during warmup proves
    /// nothing about the dark tier).
    pub seed_up: f64,
    /// Tracker shards in the tier.
    pub tracker_shards: usize,
    /// Peers returned per announce — deliberately small, so tracker
    /// discovery alone leaves the swarm sparsely connected and PEX is
    /// load-bearing, not decorative.
    pub max_peers_returned: usize,
    /// Advertised re-announce interval (short: the failover window must
    /// see periodic announces).
    pub announce_interval: SimDuration,
    /// Advertised early re-announce floor.
    pub min_announce: SimDuration,
    /// Announces per shed window before a shard pushes back.
    pub shed_capacity: u64,
    /// Shed-accounting window.
    pub shed_window: SimDuration,
    /// PEX gossip cadence.
    pub gossip_interval: SimDuration,
    /// Most addresses per PEX message.
    pub pex_max_entries: usize,
    /// Oldest address worth gossiping or believing.
    pub pex_max_age: SimDuration,
    /// Consecutive announce failures before the breaker opens.
    pub breaker_threshold: u32,
    /// Open-breaker probe spacing.
    pub breaker_cooloff: SimDuration,
    /// Mobile hand-off period (jittered ±20%).
    pub handoff_period: SimDuration,
    /// Mobile hand-off outage length.
    pub handoff_outage: SimDuration,
    /// Tracker-on arms: when the primary shard goes dark.
    pub failover_at: SimDuration,
    /// Tracker-on arms: how long the primary stays dark.
    pub failover_len: SimDuration,
    /// Dark arms: when the whole tier goes dark (and stays dark).
    pub blackout_at: SimDuration,
    /// Virtual horizon.
    pub horizon: SimDuration,
    /// Runs (replays) per sweep cell.
    pub runs: u64,
}

impl BlackoutParams {
    /// CI-sized preset.
    pub fn quick() -> Self {
        BlackoutParams {
            leeches: 12,
            mobile_fraction: 0.3,
            file_size: 16 * 1024 * 1024,
            piece_length: 256 * 1024,
            seed_up: 256_000.0,
            tracker_shards: 4,
            max_peers_returned: 3,
            announce_interval: SimDuration::from_secs(30),
            min_announce: SimDuration::from_secs(15),
            shed_capacity: 8,
            shed_window: SimDuration::from_secs(30),
            gossip_interval: SimDuration::from_secs(20),
            pex_max_entries: 8,
            pex_max_age: SimDuration::from_secs(240),
            breaker_threshold: 2,
            breaker_cooloff: SimDuration::from_secs(120),
            handoff_period: SimDuration::from_secs(60),
            handoff_outage: SimDuration::from_secs(2),
            failover_at: SimDuration::from_secs(120),
            failover_len: SimDuration::from_secs(120),
            blackout_at: SimDuration::from_secs(90),
            horizon: SimDuration::from_secs(900),
            runs: 1,
        }
    }

    /// Paper-scale preset: a bigger swarm, a longer transfer, the same
    /// ladder.
    pub fn paper() -> Self {
        BlackoutParams {
            leeches: 40,
            file_size: 64 * 1024 * 1024,
            seed_up: 512_000.0,
            shed_capacity: 16,
            failover_at: SimDuration::from_secs(240),
            failover_len: SimDuration::from_secs(240),
            blackout_at: SimDuration::from_secs(180),
            horizon: SimDuration::from_secs(2400),
            ..Self::quick()
        }
    }

    /// Converts to the registry's untyped parameter map.
    pub fn to_params(&self) -> ExperimentParams {
        let mut p = ExperimentParams::new();
        p.set_num("leeches", self.leeches as f64);
        p.set_num("mobile_fraction", self.mobile_fraction);
        p.set_num("file_size", self.file_size as f64);
        p.set_num("piece_length", self.piece_length as f64);
        p.set_num("seed_up", self.seed_up);
        p.set_num("tracker_shards", self.tracker_shards as f64);
        p.set_num("max_peers_returned", self.max_peers_returned as f64);
        p.set_dur("announce_interval_s", self.announce_interval);
        p.set_dur("min_announce_s", self.min_announce);
        p.set_num("shed_capacity", self.shed_capacity as f64);
        p.set_dur("shed_window_s", self.shed_window);
        p.set_dur("gossip_interval_s", self.gossip_interval);
        p.set_num("pex_max_entries", self.pex_max_entries as f64);
        p.set_dur("pex_max_age_s", self.pex_max_age);
        p.set_num("breaker_threshold", self.breaker_threshold as f64);
        p.set_dur("breaker_cooloff_s", self.breaker_cooloff);
        p.set_dur("handoff_period_s", self.handoff_period);
        p.set_dur("handoff_outage_s", self.handoff_outage);
        p.set_dur("failover_at_s", self.failover_at);
        p.set_dur("failover_len_s", self.failover_len);
        p.set_dur("blackout_at_s", self.blackout_at);
        p.set_dur("horizon_s", self.horizon);
        p.set_num("runs", self.runs as f64);
        p
    }

    /// Builds from an untyped map, filling gaps from [`Self::quick`].
    pub fn from_params(p: &ExperimentParams) -> Self {
        let base = Self::quick();
        BlackoutParams {
            leeches: p.usize_or("leeches", base.leeches),
            mobile_fraction: p.num_or("mobile_fraction", base.mobile_fraction),
            file_size: p.u64_or("file_size", base.file_size),
            piece_length: p.u32_or("piece_length", base.piece_length),
            seed_up: p.num_or("seed_up", base.seed_up),
            tracker_shards: p.usize_or("tracker_shards", base.tracker_shards),
            max_peers_returned: p.usize_or("max_peers_returned", base.max_peers_returned),
            announce_interval: p.dur_or("announce_interval_s", base.announce_interval),
            min_announce: p.dur_or("min_announce_s", base.min_announce),
            shed_capacity: p.u64_or("shed_capacity", base.shed_capacity),
            shed_window: p.dur_or("shed_window_s", base.shed_window),
            gossip_interval: p.dur_or("gossip_interval_s", base.gossip_interval),
            pex_max_entries: p.usize_or("pex_max_entries", base.pex_max_entries),
            pex_max_age: p.dur_or("pex_max_age_s", base.pex_max_age),
            breaker_threshold: p.u32_or("breaker_threshold", base.breaker_threshold),
            breaker_cooloff: p.dur_or("breaker_cooloff_s", base.breaker_cooloff),
            handoff_period: p.dur_or("handoff_period_s", base.handoff_period),
            handoff_outage: p.dur_or("handoff_outage_s", base.handoff_outage),
            failover_at: p.dur_or("failover_at_s", base.failover_at),
            failover_len: p.dur_or("failover_len_s", base.failover_len),
            blackout_at: p.dur_or("blackout_at_s", base.blackout_at),
            horizon: p.dur_or("horizon_s", base.horizon),
            runs: p.u64_or("runs", base.runs),
        }
    }
}

builder_setters!(BlackoutParams {
    leeches: usize,
    mobile_fraction: f64,
    file_size: u64,
    piece_length: u32,
    seed_up: f64,
    tracker_shards: usize,
    max_peers_returned: usize,
    announce_interval: SimDuration,
    min_announce: SimDuration,
    shed_capacity: u64,
    shed_window: SimDuration,
    gossip_interval: SimDuration,
    pex_max_entries: usize,
    pex_max_age: SimDuration,
    breaker_threshold: u32,
    breaker_cooloff: SimDuration,
    handoff_period: SimDuration,
    handoff_outage: SimDuration,
    failover_at: SimDuration,
    failover_len: SimDuration,
    blackout_at: SimDuration,
    horizon: SimDuration,
    runs: u64,
});

/// The four arms, in outcome order.
pub const ARM_NAMES: [&str; 4] = ["on_fixed", "on_mobile", "dark_fixed", "dark_mobile"];

/// The deterministic observables of one arm.
#[derive(Clone, Debug, PartialEq)]
pub struct ArmOutcome {
    /// One of [`ARM_NAMES`].
    pub name: &'static str,
    /// Leeches in the swarm.
    pub leeches: usize,
    /// Leeches that completed within the horizon.
    pub completed: usize,
    /// Median completion time, seconds.
    pub p50_s: f64,
    /// 90th-percentile completion time.
    pub p90_s: f64,
    /// Worst completion time.
    pub worst_s: f64,
    /// Final announce totals per shard.
    pub shard_announces: Vec<u64>,
    /// Final shed counts per shard.
    pub shard_sheds: Vec<u64>,
    /// PEX messages sent, swarm-wide (seed included).
    pub pex_sent: u64,
    /// PEX messages received.
    pub pex_received: u64,
    /// Addresses first learned through PEX.
    pub pex_learned: u64,
    /// Announce circuit-breaker trips.
    pub breaker_trips: u64,
}

impl ArmOutcome {
    /// Completed leeches / all leeches.
    pub fn completed_frac(&self) -> f64 {
        self.completed as f64 / self.leeches.max(1) as f64
    }
}

/// The deterministic observables of one blackout run.
#[derive(Clone, Debug, PartialEq)]
pub struct BlackoutOutcome {
    /// `[on_fixed, on_mobile, dark_fixed, dark_mobile]`.
    pub arms: Vec<ArmOutcome>,
    /// Primary shard of the swarm (all arms share the torrent).
    pub primary_shard: usize,
    /// Its deterministic failover secondary.
    pub secondary_shard: usize,
    /// Dark p50 over tracker-on p50, all-fixed population.
    pub degradation_fixed: f64,
    /// Dark p50 over tracker-on p50, 30%-mobile population.
    pub degradation_mobile: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one arm of the blackout experiment. Pure in
/// `(params, seed, dark, mobile)`.
pub fn run_blackout_arm(
    params: &BlackoutParams,
    seed: u64,
    dark: bool,
    mobile: bool,
) -> ArmOutcome {
    let name = ARM_NAMES[usize::from(dark) * 2 + usize::from(mobile)];
    let torrent = synthetic_torrent(
        "blackout.bin",
        params.piece_length,
        params.file_size,
        seed ^ 0xB1AC,
    );
    let shards = params.tracker_shards.max(1);
    let cfg = FlowConfig {
        tracker_shards: shards,
        tracker_replicas: true,
        tracker: TrackerConfig {
            announce_interval: params.announce_interval,
            min_interval: params.min_announce,
            max_peers_returned: params.max_peers_returned,
            shed_capacity: params.shed_capacity,
            shed_window: params.shed_window,
            ..TrackerConfig::default()
        },
        ..FlowConfig::default()
    };
    let mut w = FlowWorld::new(cfg, seed);

    // Every client in the arm runs the full ladder: PEX gossip on, armed
    // resilience, announce breaker armed.
    let p = *params;
    let make_config = move || ClientConfig {
        resilience: ResilienceConfig {
            breaker_threshold: p.breaker_threshold,
            breaker_cooloff: p.breaker_cooloff,
            ..ResilienceConfig::armed()
        },
        pex: PexConfig {
            enabled: true,
            gossip_interval: p.gossip_interval,
            max_entries: p.pex_max_entries,
            max_age: p.pex_max_age,
        },
        ..ClientConfig::default()
    };

    let seed_node = w.add_node(Access::Wired {
        up: params.seed_up,
        down: 500_000.0,
    });
    let mut seed_spec = TaskSpec::default_client(seed_node, torrent, true);
    seed_spec.make_config = Box::new(make_config);
    let seed_task = w.add_task(seed_spec);

    let mobile_count = if mobile {
        (params.mobile_fraction * params.leeches as f64).round() as usize
    } else {
        0
    };
    let mut leeches: Vec<TaskKey> = Vec::with_capacity(params.leeches);
    for i in 0..params.leeches {
        let is_mobile = i < mobile_count;
        let node = if is_mobile {
            // One contended WLAN channel; hand-offs change the address.
            let n = w.add_node(Access::Wireless {
                capacity: 500_000.0,
            });
            w.set_mobility(
                n,
                MobilityProcess::with_jitter(params.handoff_period, params.handoff_outage, 0.2),
            );
            n
        } else {
            w.add_node(Access::residential())
        };
        let mut spec = TaskSpec::default_client(node, torrent, false);
        spec.make_config = Box::new(make_config);
        leeches.push(w.add_task(spec));
    }
    w.start();

    let horizon = SimTime::ZERO + params.horizon;
    let primary = shard_of(torrent.info_hash, shards);
    if dark {
        // Rung three: at blackout_at the whole tier goes down and never
        // comes back — PEX is the only discovery path left.
        let at = (SimTime::ZERO + params.blackout_at).min(horizon);
        w.run_until(at, |_| {});
        for s in 0..shards {
            w.set_tracker_shard_down(s, true);
        }
        w.run_until(horizon, |_| {});
    } else {
        // Rungs one and two: the primary shard alone goes dark for a
        // window; replicas route announces to the secondary, whose shed
        // accounting pushes the pacing back.
        let at = (SimTime::ZERO + params.failover_at).min(horizon);
        w.run_until(at, |_| {});
        w.set_tracker_shard_down(primary, true);
        w.run_until((at + params.failover_len).min(horizon), |_| {});
        w.set_tracker_shard_down(primary, false);
        w.run_until(horizon, |_| {});
    }

    let mut times: Vec<f64> = leeches
        .iter()
        .filter_map(|&t| w.completed_at(t))
        .map(|at| at.as_secs_f64())
        .collect();
    times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));

    let mut pex = (0u64, 0u64, 0u64, 0u64);
    for &t in leeches.iter().chain(std::iter::once(&seed_task)) {
        let (s, r, l, b) = w.task_pex_stats(t);
        pex.0 += s;
        pex.1 += r;
        pex.2 += l;
        pex.3 += b;
    }

    ArmOutcome {
        name,
        leeches: params.leeches,
        completed: times.len(),
        p50_s: percentile(&times, 0.5),
        p90_s: percentile(&times, 0.9),
        worst_s: times.last().copied().unwrap_or(0.0),
        shard_announces: (0..shards).map(|s| w.tracker_shard_announces(s)).collect(),
        shard_sheds: (0..shards).map(|s| w.tracker_shard_sheds(s)).collect(),
        pex_sent: pex.0,
        pex_received: pex.1,
        pex_learned: pex.2,
        breaker_trips: pex.3,
    }
}

/// Runs all four arms from one seed and extracts every observable.
/// Pure in `(params, seed)`.
pub fn run_blackout_world(params: &BlackoutParams, seed: u64) -> BlackoutOutcome {
    let arms: Vec<ArmOutcome> = [(false, false), (false, true), (true, false), (true, true)]
        .into_iter()
        .map(|(dark, mobile)| run_blackout_arm(params, seed, dark, mobile))
        .collect();
    let shards = params.tracker_shards.max(1);
    let torrent = synthetic_torrent(
        "blackout.bin",
        params.piece_length,
        params.file_size,
        seed ^ 0xB1AC,
    );
    let primary = shard_of(torrent.info_hash, shards);
    let secondary = secondary_shard_of(torrent.info_hash, shards);
    let deg = |dark: &ArmOutcome, on: &ArmOutcome| dark.p50_s / on.p50_s.max(1e-9);
    BlackoutOutcome {
        degradation_fixed: deg(&arms[2], &arms[0]),
        degradation_mobile: deg(&arms[3], &arms[1]),
        primary_shard: primary,
        secondary_shard: secondary,
        arms,
    }
}

fn run_blackout_impl(
    params: &BlackoutParams,
    metrics: &MetricsHandle,
    base_seed: u64,
    threads: Option<usize>,
) -> BlackoutOutcome {
    let mut runner = SweepRunner::new("blackout", base_seed).with_metrics(metrics);
    if let Some(n) = threads {
        runner = runner.with_threads(n);
    }
    let points = [0usize];
    let cells = runner.run(&points, params.runs as usize, |_, cell| {
        cell.add_virtual_secs(4.0 * params.horizon.as_secs_f64());
        run_blackout_world(params, cell.seed)
    });
    let outcome = cells.into_iter().next().expect("one point")
        .into_iter().next().expect("one run");

    // The ladder is asserted, not reported. Dark arms: the tier is gone
    // for good, yet PEX must carry every leech to completion and the
    // breakers must have stopped the announce hammering.
    for arm in &outcome.arms[2..] {
        assert_eq!(
            arm.completed, arm.leeches,
            "{}: swarm did not reach 100% completions under a dark tier \
({}/{} done)",
            arm.name, arm.completed, arm.leeches
        );
        assert!(arm.pex_sent > 0, "{}: no PEX gossip went out", arm.name);
        assert!(
            arm.breaker_trips > 0,
            "{}: announce breakers never opened under a dark tier",
            arm.name
        );
    }
    // Tracker-on arms: the primary outage must have been absorbed by the
    // secondary (failover served announces) and the shard pushed back on
    // the start burst (shedding engaged).
    for arm in &outcome.arms[..2] {
        assert!(
            arm.shard_announces[outcome.secondary_shard] > 0,
            "{}: failover never routed announces to the secondary shard",
            arm.name
        );
        assert!(
            arm.shard_sheds.iter().sum::<u64>() > 0,
            "{}: overload shedding never engaged",
            arm.name
        );
    }

    // All metric writes happen here, after the sweep, from the run-0
    // outcome — one sequential writer, so worker count cannot reorder
    // anything.
    let g = |name: &str| metrics.gauge(name);
    for arm in &outcome.arms {
        g(&format!("blackout.{}.completed_frac", arm.name)).set(arm.completed_frac());
        g(&format!("blackout.{}.p50_s", arm.name)).set(arm.p50_s);
        g(&format!("blackout.{}.p90_s", arm.name)).set(arm.p90_s);
        g(&format!("blackout.{}.worst_s", arm.name)).set(arm.worst_s);
        g(&format!("blackout.{}.announces", arm.name))
            .set(arm.shard_announces.iter().sum::<u64>() as f64);
        g(&format!("blackout.{}.sheds", arm.name))
            .set(arm.shard_sheds.iter().sum::<u64>() as f64);
        g(&format!("blackout.{}.breaker_trips", arm.name)).set(arm.breaker_trips as f64);
        g(&format!("pex.{}.sent", arm.name)).set(arm.pex_sent as f64);
        g(&format!("pex.{}.received", arm.name)).set(arm.pex_received as f64);
        g(&format!("pex.{}.learned", arm.name)).set(arm.pex_learned as f64);
    }
    g("blackout.degradation.fixed").set(outcome.degradation_fixed);
    g("blackout.degradation.mobile").set(outcome.degradation_mobile);
    outcome
}

/// Runs the blackout experiment on an explicit metrics handle and base
/// seed.
///
/// # Panics
///
/// Panics when any rung of the degradation ladder fails to carry its
/// arm: dark arms must complete 100% via PEX with tripped breakers;
/// tracker-on arms must fail over to the secondary shard and shed load.
pub fn run_blackout_with(
    params: &BlackoutParams,
    metrics: &MetricsHandle,
    base_seed: u64,
) -> BlackoutOutcome {
    run_blackout_impl(params, metrics, base_seed, None)
}

/// [`run_blackout_with`] pinned to a worker count (the determinism tests
/// compare 1 vs 4 without touching `WP2P_THREADS`).
pub fn run_blackout_with_threads(
    params: &BlackoutParams,
    metrics: &MetricsHandle,
    base_seed: u64,
    threads: usize,
) -> BlackoutOutcome {
    run_blackout_impl(params, metrics, base_seed, Some(threads))
}

/// Renders the blackout run: one row per arm plus the degradation
/// ratios.
pub fn blackout_table(o: &BlackoutOutcome) -> Table {
    let mut t = Table::new("Dark tracker tier: failover, shedding, and PEX fallback");
    t.headers([
        "arm",
        "completed",
        "p50 / p90 / worst (s)",
        "announces",
        "sheds",
        "pex sent/learned",
        "breaker trips",
    ]);
    for arm in &o.arms {
        t.row([
            arm.name.to_string(),
            pct(arm.completed_frac()),
            format!("{:.0} / {:.0} / {:.0}", arm.p50_s, arm.p90_s, arm.worst_s),
            arm.shard_announces.iter().sum::<u64>().to_string(),
            arm.shard_sheds.iter().sum::<u64>().to_string(),
            format!("{}/{}", arm.pex_sent, arm.pex_learned),
            arm.breaker_trips.to_string(),
        ]);
    }
    t.row([
        "degradation (dark/on p50)".into(),
        String::new(),
        format!(
            "fixed ×{:.2}, mobile ×{:.2}",
            o.degradation_fixed, o.degradation_mobile
        ),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t.note(&format!(
        "swarm shard {} fails over to {}; dark arms assert 100% completion via PEX",
        o.primary_shard, o.secondary_shard
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately tiny ladder: seconds, not minutes, per arm.
    fn tiny() -> BlackoutParams {
        BlackoutParams::quick()
            .leeches(6)
            .file_size(8 * 1024 * 1024)
            .seed_up(128_000.0)
            .shed_capacity(4)
            .handoff_period(SimDuration::from_secs(50))
            .failover_at(SimDuration::from_secs(60))
            .failover_len(SimDuration::from_secs(120))
            .blackout_at(SimDuration::from_secs(45))
            .horizon(SimDuration::from_secs(480))
    }

    #[test]
    fn params_round_trip() {
        let p = BlackoutParams::paper();
        let back = BlackoutParams::from_params(&p.to_params());
        assert_eq!(p.leeches, back.leeches);
        assert_eq!(p.mobile_fraction, back.mobile_fraction);
        assert_eq!(p.tracker_shards, back.tracker_shards);
        assert_eq!(p.shed_capacity, back.shed_capacity);
        assert_eq!(p.gossip_interval, back.gossip_interval);
        assert_eq!(p.breaker_threshold, back.breaker_threshold);
        assert_eq!(p.blackout_at, back.blackout_at);
        assert_eq!(p.horizon, back.horizon);
        assert_eq!(p.runs, back.runs);
    }

    #[test]
    fn blackout_run_replays_byte_identically() {
        let a = run_blackout_world(&tiny(), 42);
        let b = run_blackout_world(&tiny(), 42);
        assert_eq!(a, b, "blackout run diverged between replays");
    }

    #[test]
    fn blackout_deterministic_across_worker_counts() {
        let p = tiny();
        let a = run_blackout_with_threads(&p, &MetricsHandle::disabled(), BLACKOUT_SEED, 1);
        let b = run_blackout_with_threads(&p, &MetricsHandle::disabled(), BLACKOUT_SEED, 4);
        assert_eq!(a, b, "blackout run must not depend on worker count");
    }

    #[test]
    fn dark_tier_completes_via_pex() {
        let o = run_blackout_world(&tiny(), BLACKOUT_SEED);
        for arm in &o.arms[2..] {
            assert_eq!(
                arm.completed, arm.leeches,
                "{}: dark tier must not stop the swarm",
                arm.name
            );
            assert!(arm.pex_sent > 0 && arm.pex_received > 0, "{}: no gossip", arm.name);
            assert!(arm.breaker_trips > 0, "{}: breakers never opened", arm.name);
        }
        // Degradation is a ratio of medians; with a dark tier it cannot
        // be absurdly large if PEX is doing its job.
        assert!(o.degradation_fixed > 0.0 && o.degradation_mobile > 0.0);
    }

    #[test]
    fn failover_and_shedding_rungs_engage() {
        let o = run_blackout_world(&tiny(), BLACKOUT_SEED);
        assert_ne!(o.primary_shard, o.secondary_shard);
        for arm in &o.arms[..2] {
            assert!(
                arm.shard_announces[o.secondary_shard] > 0,
                "{}: secondary shard never served during the failover window",
                arm.name
            );
            assert!(
                arm.shard_announces[o.primary_shard] > arm.shard_announces[o.secondary_shard],
                "{}: the primary should still carry most announces",
                arm.name
            );
            assert!(arm.shard_sheds.iter().sum::<u64>() > 0, "{}: no shedding", arm.name);
            assert_eq!(arm.completed, arm.leeches, "{}: failover arm must complete", arm.name);
        }
    }
}
