//! The packet-level simulation world.
//!
//! Small-scale testbeds where every TCP segment is individually modelled:
//! segments from/to a wireless node cross its shared [`WirelessChannel`]
//! (suffering serialization, queueing, and BER loss proportional to frame
//! length), then a fixed wired backbone delay. This is the fidelity the
//! paper's §3.2 and §5.2.1 need — ACK piggybacking, DUPACK purity, and the
//! wP2P AM filter all live at this layer.
//!
//! Two usage modes share the machinery:
//!
//! * **Raw TCP** ([`PacketWorld::open_tcp`] + [`PacketWorld::tcp_write`]):
//!   drive byte streams directly (paper Fig. 2).
//! * **BitTorrent overlay** ([`PacketWorld::add_client`]): full client
//!   sessions whose wire messages are framed onto the TCP byte streams
//!   (paper Fig. 8(a)).

use bittorrent::client::{Action, Client, ClientConfig};
use bittorrent::metainfo::InfoHash;
use bittorrent::peer_id::{PeerId, PeerIdStyle};
use bittorrent::progress::TorrentProgress;
use bittorrent::tracker::{AnnounceEvent, AnnounceRequest, Tracker, TrackerConfig};
use bittorrent::wire::Message;
use metrics::handle::MetricsHandle;
use metrics::registry::Counter;
use metrics::trace::TraceKind;
use sim_tcp::endpoint::{Endpoint, TcpConfig};
use sim_tcp::segment::Segment;
use sim_tcp::seq::SeqNum;
use simnet::addr::{AddressBook, NodeId};
use simnet::event::{EventToken, QueueStats, Scheduler};
use simnet::fault::FaultHooks;
use simnet::rng::SimRng;
use simnet::sim::Simulator;
use simnet::time::{SimDuration, SimTime};
use simnet::wireless::{Direction, DirectionStats, WirelessChannel, WirelessConfig};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wp2p::am::{AgeFilter, AmConfig, AmOutput, AmStats};

/// Node index in the packet world.
pub type PNodeKey = usize;
/// Connection index in the packet world.
pub type PConnKey = usize;

/// Global parameters of the packet world.
#[derive(Clone, Copy, Debug)]
pub struct PacketConfig {
    /// One-way wired backbone delay between any two nodes.
    pub backbone_delay: SimDuration,
    /// TCP endpoint parameters.
    pub tcp: TcpConfig,
    /// Client housekeeping cadence (BitTorrent overlay).
    pub client_tick: SimDuration,
    /// Event-queue scheduler backing the simulator.
    pub scheduler: Scheduler,
}

impl Default for PacketConfig {
    fn default() -> Self {
        PacketConfig {
            backbone_delay: SimDuration::from_millis(20),
            tcp: TcpConfig::default(),
            client_tick: SimDuration::from_millis(500),
            scheduler: Scheduler::from_env(),
        }
    }
}

struct PNode {
    channel: Option<WirelessChannel>,
    am: Option<AmConfig>,
    addr: simnet::addr::SimAddr,
    client: Option<Client>,
    delivered_down: u64,
    delivered_up: u64,
    /// Consecutive failed announces (tracker outage); indexes the
    /// client's announce backoff policy, reset on success.
    announce_fails: u32,
    /// `min interval` of the last served announce, echoed in synthesized
    /// outage-retry responses so a recovering tracker keeps its floor.
    last_min_interval: SimDuration,
}

/// One TCP connection between two nodes (with optional BT framing).
struct PConn {
    a_node: PNodeKey,
    b_node: PNodeKey,
    a: Endpoint,
    b: Endpoint,
    a_filter: Option<AgeFilter>,
    b_filter: Option<AgeFilter>,
    a_timer: Option<(SimTime, EventToken)>,
    b_timer: Option<(SimTime, EventToken)>,
    /// Client connection keys once attached/established.
    a_key: Option<u64>,
    b_key: Option<u64>,
    /// Framed messages in flight: `(message, stream end offset)`.
    a2b: VecDeque<(Message, u64)>,
    b2a: VecDeque<(Message, u64)>,
    a_written: u64,
    b_written: u64,
    /// Establishment not yet reported to the overlay.
    a_up: bool,
    b_up: bool,
    closed: bool,
}

impl PConn {
    fn side(&mut self, a: bool) -> &mut Endpoint {
        if a {
            &mut self.a
        } else {
            &mut self.b
        }
    }
}

enum PEv {
    /// Segment finished the sender-side hop; entering the receiver side.
    Hop {
        conn: PConnKey,
        to_a: bool,
        seg: Segment,
    },
    /// Segment arrives at the destination endpoint.
    Deliver {
        conn: PConnKey,
        to_a: bool,
        seg: Segment,
    },
    /// Retransmission timer for one endpoint.
    Timer { conn: PConnKey, a_side: bool },
    /// BitTorrent overlay housekeeping.
    ClientTick,
}

/// The packet-level world. See the module docs.
pub struct PacketWorld {
    cfg: PacketConfig,
    sim: Simulator<PEv>,
    nodes: Vec<PNode>,
    conns: Vec<Option<PConn>>,
    /// Per-node index of live connections, so address churn and client
    /// teardown touch only a node's own conns instead of scanning all.
    node_conns: Vec<BTreeSet<PConnKey>>,
    /// `(node, client conn key)` → world connection.
    ckeys: BTreeMap<(PNodeKey, u64), PConnKey>,
    tracker: Tracker,
    book: AddressBook,
    rng: SimRng,
    next_iss: u32,
    clients_started: bool,
    /// Fault state: nodes whose frames vanish silently.
    blackholed: BTreeSet<PNodeKey>,
    /// Fault state: crashed nodes (frames vanish, client ticks skipped).
    crashed: BTreeSet<PNodeKey>,
    /// Pre-fault BER of nodes under a loss burst.
    ber_baseline: BTreeMap<PNodeKey, f64>,
    /// Pre-fault channel bandwidth of squeezed nodes.
    bw_baseline: BTreeMap<PNodeKey, u64>,
    tracker_down: bool,
    checker: crate::invariants::InvariantChecker,
    metrics: MetricsHandle,
    m_fault_events: Counter,
}

impl PacketWorld {
    /// Creates an empty world.
    pub fn new(cfg: PacketConfig, seed: u64) -> Self {
        PacketWorld {
            sim: Simulator::with_scheduler(cfg.scheduler),
            cfg,
            nodes: Vec::new(),
            conns: Vec::new(),
            node_conns: Vec::new(),
            ckeys: BTreeMap::new(),
            tracker: Tracker::new(TrackerConfig::default()),
            book: AddressBook::new(),
            rng: SimRng::new(seed),
            next_iss: 1,
            clients_started: false,
            blackholed: BTreeSet::new(),
            crashed: BTreeSet::new(),
            ber_baseline: BTreeMap::new(),
            bw_baseline: BTreeMap::new(),
            tracker_down: false,
            checker: crate::invariants::InvariantChecker::new(),
            metrics: MetricsHandle::disabled(),
            m_fault_events: Counter::default(),
        }
    }

    /// Wires the world's observables into `handle`: a
    /// `packet.fault_events` counter plus fault trace events, and —
    /// for every connection or client created afterwards — per-endpoint
    /// TCP instruments (`tcp.conn<k>.{a,b}.*`), AM filter counters
    /// (`am.conn<k>.{a,b}.*`), and per-node client swarm counters
    /// (`bt.node<n>.*`). Call before building the topology; inert when
    /// the handle is disabled.
    pub fn set_metrics(&mut self, handle: &MetricsHandle) {
        self.metrics = handle.clone();
        self.m_fault_events = handle.counter("packet.fault_events");
    }

    /// A fault-injection hook fired: count it and trace it.
    fn fault_note(&mut self, message: String) {
        self.m_fault_events.inc();
        self.metrics
            .trace_event(self.sim.now(), TraceKind::Other, message);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Number of simulator events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.processed()
    }

    /// Event-queue instrumentation counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.sim.queue_stats()
    }

    /// Which event-queue scheduler backs this world.
    pub fn scheduler(&self) -> Scheduler {
        self.sim.scheduler()
    }

    /// Adds a node; `channel` gives it a wireless access hop.
    pub fn add_node(&mut self, channel: Option<WirelessConfig>) -> PNodeKey {
        let key = self.nodes.len();
        let addr = self.book.assign(NodeId(key as u32));
        self.nodes.push(PNode {
            channel: channel.map(WirelessChannel::new),
            am: None,
            addr,
            client: None,
            delivered_down: 0,
            delivered_up: 0,
            announce_fails: 0,
            last_min_interval: SimDuration::ZERO,
        });
        self.node_conns.push(BTreeSet::new());
        key
    }

    /// Enables the wP2P AM filter on all of a node's connections.
    pub fn set_am(&mut self, node: PNodeKey, am: AmConfig) {
        self.nodes[node].am = Some(am);
    }

    /// Adjusts a wireless node's bit-error rate.
    ///
    /// # Panics
    ///
    /// Panics if the node has no wireless channel.
    pub fn set_ber(&mut self, node: PNodeKey, ber: f64) {
        self.nodes[node]
            .channel
            .as_mut()
            .expect("node has no wireless channel")
            .set_ber(ber);
    }

    /// Per-direction stats of a node's channel.
    pub fn channel_stats(&self, node: PNodeKey, dir: Direction) -> DirectionStats {
        self.nodes[node]
            .channel
            .as_ref()
            .map(|c| c.stats(dir))
            .unwrap_or_default()
    }

    /// Times of buffer drops on a node's channel.
    pub fn channel_drops(&self, node: PNodeKey) -> Vec<SimTime> {
        self.nodes[node]
            .channel
            .as_ref()
            .map(|c| c.drop_log().to_vec())
            .unwrap_or_default()
    }

    fn iss(&mut self) -> SeqNum {
        self.next_iss = self.next_iss.wrapping_add(100_003);
        SeqNum(self.next_iss)
    }

    // ------------------------------------------------------------------
    // Raw TCP mode
    // ------------------------------------------------------------------

    /// Opens a TCP connection from `a` to `b` (the three-way handshake
    /// flows through the channel models). Returns the connection key.
    pub fn open_tcp(&mut self, a: PNodeKey, b: PNodeKey) -> PConnKey {
        let now = self.sim.now();
        let mut ea = Endpoint::new(self.cfg.tcp, self.iss());
        let mut eb = Endpoint::new(self.cfg.tcp, self.iss());
        eb.listen();
        ea.connect(now);
        let conn = self.conns.len();
        let mut a_filter = self.nodes[a].am.map(AgeFilter::new);
        let mut b_filter = self.nodes[b].am.map(AgeFilter::new);
        if self.metrics.is_enabled() {
            ea.attach_metrics(&self.metrics, &format!("conn{conn}.a"));
            eb.attach_metrics(&self.metrics, &format!("conn{conn}.b"));
            if let Some(f) = a_filter.as_mut() {
                f.attach_metrics(&self.metrics, &format!("conn{conn}.a"));
            }
            if let Some(f) = b_filter.as_mut() {
                f.attach_metrics(&self.metrics, &format!("conn{conn}.b"));
            }
        }
        self.conns.push(Some(PConn {
            a_node: a,
            b_node: b,
            a: ea,
            b: eb,
            a_filter,
            b_filter,
            a_timer: None,
            b_timer: None,
            a_key: None,
            b_key: None,
            a2b: VecDeque::new(),
            b2a: VecDeque::new(),
            a_written: 0,
            b_written: 0,
            a_up: true,
            b_up: true,
            closed: false,
        }));
        self.node_conns[a].insert(conn);
        self.node_conns[b].insert(conn);
        self.flush(conn, true);
        self.flush(conn, false);
        conn
    }

    /// Queues raw bytes on one side of a TCP connection (`a_side` true for
    /// the initiator).
    pub fn tcp_write(&mut self, conn: PConnKey, a_side: bool, bytes: u64) {
        if let Some(c) = self.conns[conn].as_mut() {
            c.side(a_side).write(bytes);
        }
        self.flush(conn, a_side);
    }

    /// Total in-order bytes delivered to one side.
    pub fn tcp_delivered(&self, conn: PConnKey, a_side: bool) -> u64 {
        self.conns[conn]
            .as_ref()
            .map(|c| {
                if a_side {
                    c.a.delivered_total()
                } else {
                    c.b.delivered_total()
                }
            })
            .unwrap_or(0)
    }

    /// Read-only access to an endpoint (stats, cwnd, …).
    pub fn endpoint(&self, conn: PConnKey, a_side: bool) -> Option<&Endpoint> {
        self.conns[conn]
            .as_ref()
            .map(|c| if a_side { &c.a } else { &c.b })
    }

    /// Number of nodes in the world.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of connection slots ever opened (some may be torn down).
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Total application bytes one side has queued on its endpoint.
    pub fn tcp_written(&self, conn: PConnKey, a_side: bool) -> u64 {
        self.conns[conn]
            .as_ref()
            .map(|c| {
                if a_side {
                    c.a.written_total()
                } else {
                    c.b.written_total()
                }
            })
            .unwrap_or(u64::MAX) // torn-down conns place no bound
    }

    /// True while a fault-injected tracker outage is active.
    pub fn tracker_is_down(&self) -> bool {
        self.tracker_down
    }

    /// Invariant passes run by the built-in debug-build checker.
    pub fn invariant_checks(&self) -> u64 {
        self.checker.checks()
    }

    /// AM filter diagnostic: (age estimate bytes, srtt seconds) per side.
    pub fn am_diag(&self, conn: PConnKey, a_side: bool) -> Option<(u32, f64)> {
        self.conns[conn].as_ref().and_then(|c| {
            let (f, ep) = if a_side {
                (c.a_filter.as_ref(), &c.a)
            } else {
                (c.b_filter.as_ref(), &c.b)
            };
            f.map(|f| {
                (
                    f.cwnd_estimate(),
                    ep.srtt().map(|d| d.as_secs_f64()).unwrap_or(0.0),
                )
            })
        })
    }

    /// AM filter stats for one side, if AM is enabled there.
    pub fn am_stats(&self, conn: PConnKey, a_side: bool) -> Option<AmStats> {
        self.conns[conn].as_ref().and_then(|c| {
            if a_side {
                c.a_filter.as_ref().map(|f| f.stats())
            } else {
                c.b_filter.as_ref().map(|f| f.stats())
            }
        })
    }

    // ------------------------------------------------------------------
    // BitTorrent overlay
    // ------------------------------------------------------------------

    /// Attaches a client session to a node.
    #[allow(clippy::too_many_arguments)] // the torrent geometry is explicit
    pub fn add_client(
        &mut self,
        node: PNodeKey,
        mut config: ClientConfig,
        info_hash: InfoHash,
        piece_length: u32,
        length: u64,
        block_size: u32,
        complete: bool,
    ) {
        let addr = self.nodes[node].addr;
        let mut rng = self.rng.fork(300 + node as u64);
        // Strategy hook: PacketWorld clients live one generation, but a
        // hybrid still draws its initial (possibly degraded) mode here.
        // Honest draws nothing, keeping legacy streams bit-identical.
        config.strategy.on_reinit(0, &mut rng);
        let peer_id = PeerId::generate(PeerIdStyle::Random, addr, &mut rng);
        let progress = if complete {
            TorrentProgress::complete(piece_length, length)
        } else {
            TorrentProgress::with_block_size(piece_length, length, block_size)
        };
        let mut client = Client::with_progress(config, info_hash, peer_id, progress, addr, rng);
        if self.metrics.is_enabled() {
            client.attach_metrics(&self.metrics, &format!("node{node}"));
        }
        self.nodes[node].client = Some(client);
    }

    /// Attaches a client with explicitly constructed progress (e.g.
    /// complementary halves for the Fig. 8(a) leech-to-leech scenario).
    pub fn add_client_with_progress(
        &mut self,
        node: PNodeKey,
        mut config: ClientConfig,
        info_hash: InfoHash,
        progress: TorrentProgress,
    ) {
        let addr = self.nodes[node].addr;
        let mut rng = self.rng.fork(300 + node as u64);
        config.strategy.on_reinit(0, &mut rng);
        let peer_id = PeerId::generate(PeerIdStyle::Random, addr, &mut rng);
        let mut client = Client::with_progress(config, info_hash, peer_id, progress, addr, rng);
        if self.metrics.is_enabled() {
            client.attach_metrics(&self.metrics, &format!("node{node}"));
        }
        self.nodes[node].client = Some(client);
    }

    /// Starts every attached client (tracker announce + dials).
    pub fn start_clients(&mut self) {
        assert!(!self.clients_started, "clients already started");
        self.clients_started = true;
        let now = self.sim.now();
        for n in 0..self.nodes.len() {
            if let Some(c) = self.nodes[n].client.as_mut() {
                c.start(now);
            }
        }
        self.pump_actions(now);
        self.sim.schedule_in(self.cfg.client_tick, PEv::ClientTick);
    }

    /// Read-only view of a node's client.
    pub fn client(&self, node: PNodeKey) -> Option<&Client> {
        self.nodes[node].client.as_ref()
    }

    /// Payload bytes delivered to a node's client over all connections.
    pub fn delivered_down(&self, node: PNodeKey) -> u64 {
        self.nodes[node].delivered_down
    }

    /// Payload bytes served by a node's client over all connections.
    pub fn delivered_up(&self, node: PNodeKey) -> u64 {
        self.nodes[node].delivered_up
    }

    /// Removes a node's client (e.g. the seed leaving), aborting its
    /// connections.
    pub fn stop_client(&mut self, node: PNodeKey) {
        let now = self.sim.now();
        self.nodes[node].client = None;
        // Ascending conn-key order, matching the old full scan.
        let touched: Vec<PConnKey> = self.node_conns[node].iter().copied().collect();
        for conn in touched {
            self.teardown_conn(conn, now);
        }
    }

    fn teardown_conn(&mut self, conn: PConnKey, now: SimTime) {
        let Some(c) = self.conns[conn].take() else {
            return;
        };
        self.node_conns[c.a_node].remove(&conn);
        self.node_conns[c.b_node].remove(&conn);
        if let Some((_, tok)) = c.a_timer {
            self.sim.cancel(tok);
        }
        if let Some((_, tok)) = c.b_timer {
            self.sim.cancel(tok);
        }
        for (node, key) in [(c.a_node, c.a_key), (c.b_node, c.b_key)] {
            if let Some(k) = key {
                self.ckeys.remove(&(node, k));
                if let Some(client) = self.nodes[node].client.as_mut() {
                    client.on_conn_closed(k, now);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Datapath
    // ------------------------------------------------------------------

    /// Drains one endpoint's segments onto the network.
    fn flush(&mut self, conn: PConnKey, a_side: bool) {
        let now = self.sim.now();
        loop {
            let Some(c) = self.conns[conn].as_mut() else {
                return;
            };
            let Some(seg) = c.side(a_side).poll_segment(now) else {
                break;
            };
            // AM filter on the sender side, if enabled.
            let filter = if a_side {
                c.a_filter.as_mut()
            } else {
                c.b_filter.as_mut()
            };
            let filtered: Vec<Segment> = match filter {
                None => vec![seg],
                Some(f) => match f.on_outgoing(seg, now) {
                    AmOutput::Pass(s) => vec![s],
                    AmOutput::Decoupled { pure_ack, data } => vec![pure_ack, data],
                    AmOutput::Drop => vec![],
                },
            };
            let from_node = if a_side { c.a_node } else { c.b_node };
            for s in filtered {
                self.transmit(conn, from_node, !a_side, s, now);
            }
        }
        self.sync_timer(conn, a_side);
    }

    /// Puts a segment on the wire from `from_node`, destined for the
    /// `to_a` side of `conn`.
    fn transmit(
        &mut self,
        conn: PConnKey,
        from_node: PNodeKey,
        to_a: bool,
        seg: Segment,
        now: SimTime,
    ) {
        if self.blackholed.contains(&from_node) || self.crashed.contains(&from_node) {
            return; // fault: frames from this node vanish silently
        }
        let hop_at = match self.nodes[from_node].channel.as_mut() {
            Some(ch) => match ch
                .send(now, Direction::Up, seg.wire_bytes(), &mut self.rng)
                .delivered_at()
            {
                Some(t) => t,
                None => return, // lost on the sender's wireless hop
            },
            None => now,
        };
        self.sim.schedule_at(
            hop_at + self.cfg.backbone_delay,
            PEv::Hop { conn, to_a, seg },
        );
    }

    fn on_hop(&mut self, conn: PConnKey, to_a: bool, seg: Segment, now: SimTime) {
        let Some(c) = self.conns[conn].as_ref() else {
            return;
        };
        let to_node = if to_a { c.a_node } else { c.b_node };
        if self.blackholed.contains(&to_node) || self.crashed.contains(&to_node) {
            return; // fault: frames to this node vanish silently
        }
        let deliver_at = match self.nodes[to_node].channel.as_mut() {
            Some(ch) => match ch
                .send(now, Direction::Down, seg.wire_bytes(), &mut self.rng)
                .delivered_at()
            {
                Some(t) => t,
                None => return, // lost on the receiver's wireless hop
            },
            None => now,
        };
        self.sim
            .schedule_at(deliver_at, PEv::Deliver { conn, to_a, seg });
    }

    fn on_deliver(&mut self, conn: PConnKey, to_a: bool, seg: Segment, now: SimTime) {
        {
            let Some(c) = self.conns[conn].as_mut() else {
                return;
            };
            // AM observes incoming traffic at the receiving side.
            let filter = if to_a {
                c.a_filter.as_mut()
            } else {
                c.b_filter.as_mut()
            };
            if let Some(f) = filter {
                f.on_incoming(&seg, now);
            }
            c.side(to_a).on_segment(seg, now);
        }
        self.after_endpoint_event(conn, to_a, now);
    }

    fn on_timer(&mut self, conn: PConnKey, a_side: bool, now: SimTime) {
        {
            let Some(c) = self.conns[conn].as_mut() else {
                return;
            };
            if a_side {
                c.a_timer = None;
            } else {
                c.b_timer = None;
            }
            c.side(a_side).on_timer(now);
        }
        self.after_endpoint_event(conn, a_side, now);
    }

    /// Post-processing after an endpoint absorbed an event: detect
    /// establishment, deliver framed messages, detect closure, flush both
    /// sides, pump client actions.
    fn after_endpoint_event(&mut self, conn: PConnKey, side: bool, now: SimTime) {
        // Keep the AM filters' measurement windows tracking the live RTT.
        if let Some(c) = self.conns[conn].as_mut() {
            if let (Some(f), Some(rtt)) = (c.a_filter.as_mut(), c.a.srtt()) {
                f.set_window(rtt);
            }
            if let (Some(f), Some(rtt)) = (c.b_filter.as_mut(), c.b.srtt()) {
                f.set_window(rtt);
            }
        }
        self.check_established(conn, now);
        self.deliver_frames(conn, side, now);
        self.check_closed(conn, now);
        self.flush(conn, true);
        self.flush(conn, false);
        self.pump_actions(now);
    }

    fn check_established(&mut self, conn: PConnKey, now: SimTime) {
        let report_a = self.conns[conn]
            .as_ref()
            .map(|c| c.a_up && c.a.is_established() && c.a_key.is_some())
            .unwrap_or(false);
        if report_a {
            let (a_node, key, b_addr) = {
                let c = self.conns[conn].as_mut().expect("checked");
                c.a_up = false;
                (
                    c.a_node,
                    c.a_key.expect("checked"),
                    self.nodes[c.b_node].addr,
                )
            };
            self.ckeys.insert((a_node, key), conn);
            if let Some(client) = self.nodes[a_node].client.as_mut() {
                client.on_connected(key, b_addr, now);
            }
        }
        let report_b = self.conns[conn]
            .as_ref()
            .map(|c| c.b_up && c.b.is_established())
            .unwrap_or(false);
        if report_b {
            let (b_node, a_addr) = {
                let c = self.conns[conn].as_mut().expect("checked");
                c.b_up = false;
                (c.b_node, self.nodes[c.a_node].addr)
            };
            if self.nodes[b_node].client.is_some() {
                let key = self.nodes[b_node]
                    .client
                    .as_mut()
                    .expect("checked")
                    .on_incoming(a_addr, now);
                if let Some(c) = self.conns[conn].as_mut() {
                    c.b_key = Some(key);
                }
                self.ckeys.insert((b_node, key), conn);
            }
        }
    }

    /// Pops framed messages whose bytes have fully arrived.
    fn deliver_frames(&mut self, conn: PConnKey, _side: bool, now: SimTime) {
        for to_a in [true, false] {
            loop {
                let popped = {
                    let Some(c) = self.conns[conn].as_mut() else {
                        return;
                    };
                    let (ep_delivered, queue) = if to_a {
                        (c.a.delivered_total(), &mut c.b2a)
                    } else {
                        (c.b.delivered_total(), &mut c.a2b)
                    };
                    match queue.front() {
                        Some((_, end)) if *end <= ep_delivered => {
                            let (msg, _) = queue.pop_front().expect("front exists");
                            let (node, key) = if to_a {
                                (c.a_node, c.a_key)
                            } else {
                                (c.b_node, c.b_key)
                            };
                            let src = if to_a { c.b_node } else { c.a_node };
                            Some((node, key, src, msg))
                        }
                        _ => None,
                    }
                };
                let Some((node, key, src, msg)) = popped else {
                    break;
                };
                if let Message::Piece(b) = &msg {
                    self.nodes[node].delivered_down += b.len as u64;
                    self.nodes[src].delivered_up += b.len as u64;
                }
                if let (Some(k), Some(client)) = (key, self.nodes[node].client.as_mut()) {
                    client.on_message(k, msg, now);
                }
            }
        }
    }

    fn check_closed(&mut self, conn: PConnKey, now: SimTime) {
        let closed = self.conns[conn]
            .as_ref()
            .map(|c| !c.closed && (c.a.is_closed() || c.b.is_closed()))
            .unwrap_or(false);
        if closed {
            self.teardown_conn(conn, now);
        }
    }

    fn sync_timer(&mut self, conn: PConnKey, a_side: bool) {
        let Some(c) = self.conns[conn].as_mut() else {
            return;
        };
        let want = c.side(a_side).next_timer_at();
        let slot = if a_side {
            &mut c.a_timer
        } else {
            &mut c.b_timer
        };
        match (*slot, want) {
            (Some((t, _)), Some(w)) if t == w => {}
            (prev, want) => {
                let tok_ev = want.map(|w| (w, PEv::Timer { conn, a_side }));
                if let Some((_, tok)) = prev {
                    self.sim.cancel(tok);
                }
                *slot = tok_ev.map(|(w, ev)| (w, self.sim.schedule_at(w, ev)));
            }
        }
    }

    // ------------------------------------------------------------------
    // Client action pump
    // ------------------------------------------------------------------

    fn pump_actions(&mut self, now: SimTime) {
        if !self.clients_started {
            return;
        }
        loop {
            let mut progressed = false;
            for n in 0..self.nodes.len() {
                while let Some(action) = self.nodes[n].client.as_mut().and_then(|c| c.poll_action())
                {
                    progressed = true;
                    self.handle_action(n, action, now);
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn handle_action(&mut self, node: PNodeKey, action: Action, now: SimTime) {
        match action {
            Action::Connect { conn: key, addr } => {
                let target = self
                    .book
                    .node_at(addr)
                    .map(|n| n.0 as usize)
                    .filter(|&t| self.nodes[t].client.is_some());
                let Some(target) = target else {
                    if let Some(client) = self.nodes[node].client.as_mut() {
                        client.on_conn_failed(addr, now);
                    }
                    return;
                };
                let cid = self.open_tcp(node, target);
                if let Some(c) = self.conns[cid].as_mut() {
                    c.a_key = Some(key);
                }
                // Establishment is reported when the handshake completes.
            }
            Action::Send { conn: key, msg } => {
                let Some(&cid) = self.ckeys.get(&(node, key)) else {
                    return;
                };
                let a_side = {
                    let Some(c) = self.conns[cid].as_mut() else {
                        return;
                    };
                    let a_side = c.a_node == node && c.a_key == Some(key);
                    let len = msg.wire_len() as u64;
                    if a_side {
                        c.a_written += len;
                        let end = c.a_written;
                        c.a2b.push_back((msg, end));
                        c.a.write(len);
                    } else {
                        c.b_written += len;
                        let end = c.b_written;
                        c.b2a.push_back((msg, end));
                        c.b.write(len);
                    }
                    a_side
                };
                self.flush(cid, a_side);
            }
            Action::Close { conn: key } => {
                if let Some(&cid) = self.ckeys.get(&(node, key)) {
                    self.teardown_conn(cid, now);
                }
            }
            Action::Announce { event } => {
                if self.tracker_down {
                    // The announce is lost. A client parks its announce
                    // clock until a response arrives, so synthesize an
                    // empty retry response whose interval follows the
                    // client's announce backoff policy (capped
                    // exponential per consecutive failure; the unarmed
                    // policy's first step is the legacy fixed 60 s).
                    if event != AnnounceEvent::Stopped {
                        let Some(policy) =
                            self.nodes[node].client.as_ref().map(|c| c.resilience().announce)
                        else {
                            return;
                        };
                        let fails = self.nodes[node].announce_fails;
                        self.nodes[node].announce_fails = fails.saturating_add(1);
                        let mut rng = self.rng.fork(810 + node as u64 + now.as_micros());
                        let resp = bittorrent::tracker::AnnounceResponse {
                            interval: policy.delay(fails, &mut rng),
                            peers: Vec::new(),
                            complete: 0,
                            incomplete: 0,
                            // The last served floor, not ZERO: outage
                            // retries must never pace faster than the
                            // healthy tracker ever allowed.
                            min_interval: self.nodes[node].last_min_interval,
                        };
                        if let Some(client) = self.nodes[node].client.as_mut() {
                            client.on_tracker_response(&resp, now);
                        }
                    }
                    return;
                }
                self.nodes[node].announce_fails = 0;
                let Some(client) = self.nodes[node].client.as_ref() else {
                    return;
                };
                let ih = client.info_hash();
                let pid = client.peer_id();
                let seed = client.is_seed();
                let addr = self.nodes[node].addr;
                let mut rng = self.rng.fork(800 + node as u64 + now.as_micros());
                let req = AnnounceRequest {
                    info_hash: ih,
                    peer_id: pid,
                    addr,
                    event,
                    is_seed: seed,
                };
                let resp = self.tracker.announce(&req, now, &mut rng);
                self.nodes[node].last_min_interval = resp.min_interval;
                if event != AnnounceEvent::Stopped {
                    if let Some(client) = self.nodes[node].client.as_mut() {
                        client.on_tracker_response(&resp, now);
                    }
                }
            }
            Action::PieceCompleted { .. } | Action::Completed => {}
        }
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    // ------------------------------------------------------------------
    // Snapshot / restore
    // ------------------------------------------------------------------

    /// Serializes the complete world state to a versioned blob: the
    /// simulator (clock, queue, timer tokens), every node (wireless
    /// channel, AM config, client session), every live connection (both
    /// TCP endpoints, AM filters, framed message queues), tracker,
    /// address book, RNG, fault state, the invariant checker's history,
    /// and — when metrics are enabled — the registry by name.
    ///
    /// `PacketConfig` is deliberately excluded: [`PacketWorld::restore`]
    /// requires a world rebuilt by the same builder calls (`new` →
    /// `set_metrics` → `add_node` / `set_am` / `add_client` /
    /// `start_clients`) as the saved one.
    pub fn save(&self) -> Vec<u8> {
        let mut w = SnapWriter::new(PACKET_WORLD_TAG);
        w.section("packet_world");
        self.sim.snap(&mut w);
        w.section("pnodes");
        w.put_usize(self.nodes.len());
        for node in &self.nodes {
            node.save(&mut w);
        }
        w.section("pconns");
        self.conns.snap(&mut w);
        self.node_conns.snap(&mut w);
        self.ckeys.snap(&mut w);
        self.tracker.snap(&mut w);
        self.book.snap(&mut w);
        self.rng.snap(&mut w);
        w.put_u32(self.next_iss);
        w.put_bool(self.clients_started);
        self.blackholed.snap(&mut w);
        self.crashed.snap(&mut w);
        self.ber_baseline.snap(&mut w);
        self.bw_baseline.snap(&mut w);
        w.put_bool(self.tracker_down);
        self.checker.snap(&mut w);
        self.metrics.snap_state(&mut w);
        w.into_bytes()
    }

    /// Restores state captured by [`PacketWorld::save`] into this world.
    ///
    /// `self` must be a world rebuilt by the same builder calls as the
    /// saved one (same nodes, channels, clients, and metrics
    /// enablement). Client sessions are overlaid in place — their
    /// configuration is code, not state — and endpoint/AM instruments
    /// are re-wired into the metrics registry by connection key.
    ///
    /// # Panics
    ///
    /// Panics if the blob is malformed, from a different world kind, or
    /// shaped for a differently-built world.
    pub fn restore(&mut self, blob: &[u8]) {
        let mut r = SnapReader::new(blob, PACKET_WORLD_TAG);
        r.section("packet_world");
        self.sim = Snap::unsnap(&mut r);
        r.section("pnodes");
        let n = r.get_usize();
        assert_eq!(n, self.nodes.len(), "snapshot node count mismatch");
        for i in 0..n {
            self.nodes[i].restore(i, &mut r);
        }
        r.section("pconns");
        self.conns = Snap::unsnap(&mut r);
        if self.metrics.is_enabled() {
            // Unsnapped endpoints and AM filters come back detached;
            // re-wire them under the same per-connection names so the
            // by-name value restore below lands in live instruments.
            let metrics = self.metrics.clone();
            for (k, conn) in self.conns.iter_mut().enumerate() {
                let Some(c) = conn.as_mut() else { continue };
                c.a.attach_metrics(&metrics, &format!("conn{k}.a"));
                c.b.attach_metrics(&metrics, &format!("conn{k}.b"));
                if let Some(f) = c.a_filter.as_mut() {
                    f.attach_metrics(&metrics, &format!("conn{k}.a"));
                }
                if let Some(f) = c.b_filter.as_mut() {
                    f.attach_metrics(&metrics, &format!("conn{k}.b"));
                }
            }
        }
        self.node_conns = Snap::unsnap(&mut r);
        self.ckeys = Snap::unsnap(&mut r);
        self.tracker = Snap::unsnap(&mut r);
        self.book = Snap::unsnap(&mut r);
        self.rng = Snap::unsnap(&mut r);
        self.next_iss = r.get_u32();
        self.clients_started = r.get_bool();
        self.blackholed = Snap::unsnap(&mut r);
        self.crashed = Snap::unsnap(&mut r);
        self.ber_baseline = Snap::unsnap(&mut r);
        self.bw_baseline = Snap::unsnap(&mut r);
        self.tracker_down = r.get_bool();
        self.checker = Snap::unsnap(&mut r);
        self.metrics.restore_state(&mut r);
        assert!(r.is_exhausted(), "snapshot has trailing bytes");
    }

    /// Runs until `deadline`; `on_event` is invoked after every processed
    /// event (for experiment sampling).
    pub fn run_until(&mut self, deadline: SimTime, mut on_event: impl FnMut(&mut PacketWorld)) {
        #[cfg(debug_assertions)]
        let mut since_check = 0u32;
        while let Some(t) = self.sim.peek_time() {
            if t > deadline {
                break;
            }
            let (now, ev) = self.sim.next_event().expect("peeked");
            match ev {
                PEv::Hop { conn, to_a, seg } => self.on_hop(conn, to_a, seg, now),
                PEv::Deliver { conn, to_a, seg } => self.on_deliver(conn, to_a, seg, now),
                PEv::Timer { conn, a_side } => self.on_timer(conn, a_side, now),
                PEv::ClientTick => {
                    for n in 0..self.nodes.len() {
                        if self.crashed.contains(&n) {
                            continue; // fault: a crashed peer's client is frozen
                        }
                        if let Some(c) = self.nodes[n].client.as_mut() {
                            c.on_tick(now);
                        }
                    }
                    self.pump_actions(now);
                    self.sim.schedule_in(self.cfg.client_tick, PEv::ClientTick);
                }
            }
            on_event(self);
            #[cfg(debug_assertions)]
            {
                since_check += 1;
                if since_check >= 16 {
                    since_check = 0;
                    let mut ck = std::mem::take(&mut self.checker);
                    ck.check_packet(self);
                    self.checker = ck;
                }
            }
        }
    }
}

/// Fault injection into the packet world.
///
/// Approximations where the model has no literal equivalent:
///
/// * **Loss bursts** and **bandwidth squeezes** act on the node's
///   wireless channel and are no-ops for purely wired nodes.
/// * **Black-holes** silently drop every frame from/to the node; TCP
///   state on both sides freezes and recovers via retransmission.
/// * **Address churn** reassigns the node's address and aborts its
///   connections, as a mobile IP change would.
/// * **Crash** freezes the node (frames vanish, client ticks skipped)
///   rather than destroying the client: sessions cannot be rebuilt at
///   this layer, and a frozen peer exercises the same timeout paths.
impl FaultHooks for PacketWorld {
    fn fault_now(&self) -> SimTime {
        self.sim.now()
    }

    fn begin_loss_burst(&mut self, node: NodeId, ber: f64) {
        let n = node.0 as usize;
        let Some(ch) = self.nodes.get_mut(n).and_then(|nd| nd.channel.as_mut()) else {
            return;
        };
        self.ber_baseline.entry(n).or_insert(ch.config().ber);
        ch.set_ber(ber);
        self.fault_note(format!("fault loss-burst on node {n} ber={ber:e}"));
    }

    fn end_loss_burst(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if let Some(base) = self.ber_baseline.remove(&n) {
            if let Some(ch) = self.nodes[n].channel.as_mut() {
                ch.set_ber(base);
            }
            self.fault_note(format!("fault loss-burst off node {n}"));
        }
    }

    fn begin_blackhole(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if n < self.nodes.len() {
            self.blackholed.insert(n);
            self.fault_note(format!("fault blackhole on node {n}"));
        }
    }

    fn end_blackhole(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if self.blackholed.remove(&n) {
            self.fault_note(format!("fault blackhole off node {n}"));
        }
    }

    fn churn_address(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if n >= self.nodes.len() {
            return;
        }
        let now = self.sim.now();
        let addr = self.book.reassign(NodeId(n as u32));
        self.nodes[n].addr = addr;
        if let Some(c) = self.nodes[n].client.as_mut() {
            c.set_own_addr(addr);
        }
        let touched: Vec<PConnKey> = self.node_conns[n].iter().copied().collect();
        for conn in touched {
            self.teardown_conn(conn, now);
        }
        self.fault_note(format!("fault churn node {n} -> {addr:?}"));
        self.pump_actions(now);
    }

    fn begin_tracker_outage(&mut self) {
        self.tracker_down = true;
        self.fault_note("fault tracker outage".to_string());
    }

    fn end_tracker_outage(&mut self) {
        self.tracker_down = false;
        self.fault_note("fault tracker back".to_string());
    }

    fn begin_bandwidth_squeeze(&mut self, node: NodeId, factor: f64) {
        let n = node.0 as usize;
        let Some(ch) = self.nodes.get_mut(n).and_then(|nd| nd.channel.as_mut()) else {
            return;
        };
        let base = *self
            .bw_baseline
            .entry(n)
            .or_insert(ch.config().bandwidth_bps);
        let squeezed = ((base as f64 * factor.clamp(0.001, 1.0)) as u64).max(1);
        ch.set_bandwidth(squeezed);
        self.fault_note(format!("fault squeeze on node {n} x{factor}"));
    }

    fn end_bandwidth_squeeze(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if let Some(base) = self.bw_baseline.remove(&n) {
            if let Some(ch) = self.nodes[n].channel.as_mut() {
                ch.set_bandwidth(base);
            }
            self.fault_note(format!("fault squeeze off node {n}"));
        }
    }

    fn crash_peer(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if n < self.nodes.len() {
            self.crashed.insert(n);
            self.fault_note(format!("fault crash node {n}"));
        }
    }

    fn restart_peer(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if self.crashed.remove(&n) {
            self.fault_note(format!("fault restart node {n}"));
        }
    }
}

// ----------------------------------------------------------------------
// Snapshot plumbing.
// ----------------------------------------------------------------------

/// World-kind tag of packet-world snapshot blobs.
pub const PACKET_WORLD_TAG: u32 = 2;

use simnet::snapshot::{Snap, SnapReader, SnapWriter};

impl PNode {
    fn save(&self, w: &mut SnapWriter) {
        self.channel.snap(w);
        self.am.snap(w);
        self.addr.snap(w);
        w.put_bool(self.client.is_some());
        if let Some(c) = &self.client {
            c.save_state(w);
        }
        w.put_u64(self.delivered_down);
        w.put_u64(self.delivered_up);
        w.put_u32(self.announce_fails);
        self.last_min_interval.snap(w);
    }

    /// Overlays serialized node state. The client session — whose
    /// configuration is code the blob cannot carry — is overlaid onto
    /// the rebuilt world's client object in place, keeping its attached
    /// metrics instruments.
    fn restore(&mut self, n: PNodeKey, r: &mut SnapReader<'_>) {
        self.channel = Snap::unsnap(r);
        self.am = Snap::unsnap(r);
        self.addr = Snap::unsnap(r);
        if r.get_bool() {
            let client = self
                .client
                .as_mut()
                .unwrap_or_else(|| panic!("snapshot: node {n} carries a client but the rebuilt world attached none"));
            client.restore_state(r);
        } else {
            // The saved run had stopped this client (e.g. the seed left).
            self.client = None;
        }
        self.delivered_down = r.get_u64();
        self.delivered_up = r.get_u64();
        self.announce_fails = r.get_u32();
        self.last_min_interval = Snap::unsnap(r);
    }
}

impl Snap for PConn {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.a_node);
        w.put_usize(self.b_node);
        self.a.snap(w);
        self.b.snap(w);
        self.a_filter.snap(w);
        self.b_filter.snap(w);
        self.a_timer.snap(w);
        self.b_timer.snap(w);
        self.a_key.snap(w);
        self.b_key.snap(w);
        self.a2b.snap(w);
        self.b2a.snap(w);
        w.put_u64(self.a_written);
        w.put_u64(self.b_written);
        w.put_bool(self.a_up);
        w.put_bool(self.b_up);
        w.put_bool(self.closed);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        PConn {
            a_node: r.get_usize(),
            b_node: r.get_usize(),
            a: Snap::unsnap(r),
            b: Snap::unsnap(r),
            a_filter: Snap::unsnap(r),
            b_filter: Snap::unsnap(r),
            a_timer: Snap::unsnap(r),
            b_timer: Snap::unsnap(r),
            a_key: Snap::unsnap(r),
            b_key: Snap::unsnap(r),
            a2b: Snap::unsnap(r),
            b2a: Snap::unsnap(r),
            a_written: r.get_u64(),
            b_written: r.get_u64(),
            a_up: r.get_bool(),
            b_up: r.get_bool(),
            closed: r.get_bool(),
        }
    }
}

impl Snap for PEv {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            PEv::Hop { conn, to_a, seg } => {
                w.put_u8(0);
                w.put_usize(*conn);
                w.put_bool(*to_a);
                seg.snap(w);
            }
            PEv::Deliver { conn, to_a, seg } => {
                w.put_u8(1);
                w.put_usize(*conn);
                w.put_bool(*to_a);
                seg.snap(w);
            }
            PEv::Timer { conn, a_side } => {
                w.put_u8(2);
                w.put_usize(*conn);
                w.put_bool(*a_side);
            }
            PEv::ClientTick => w.put_u8(3),
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        match r.get_u8() {
            0 => PEv::Hop {
                conn: r.get_usize(),
                to_a: r.get_bool(),
                seg: Snap::unsnap(r),
            },
            1 => PEv::Deliver {
                conn: r.get_usize(),
                to_a: r.get_bool(),
                seg: Snap::unsnap(r),
            },
            2 => PEv::Timer {
                conn: r.get_usize(),
                a_side: r.get_bool(),
            },
            3 => PEv::ClientTick,
            t => panic!("snapshot: unknown packet event tag {t}"),
        }
    }
}
