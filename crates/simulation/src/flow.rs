//! The flow-level (fluid) simulation world.
//!
//! Runs any number of BitTorrent client sessions over a max-min fair
//! bandwidth-sharing model instead of packet-level TCP. Used for the
//! swarm-scale experiments (paper Figs. 3, 4, 8(b), 8(c), 9) where the
//! interesting dynamics are incentives, wireless self-contention, and
//! reconnection latency — not per-segment behaviour.
//!
//! ## Model
//!
//! * Each **node** has an access network: wired (independent up/down
//!   pipes) or wireless (one shared channel both directions contend for).
//! * Each node hosts **tasks** (client sessions). Wire messages queue
//!   FIFO per connection direction and drain at the direction's current
//!   max-min fair rate, recomputed every tick.
//! * **Mobility**: a node with a [`MobilityProcess`] periodically loses
//!   connectivity, returns with a fresh address, and has its tasks
//!   re-initiated — with a fresh peer-id (default) or the retained one
//!   (wP2P). Established connections are *not* torn down cleanly: the
//!   remote side sees a silent black hole until a timeout, exactly the
//!   paper's "fixed peers continue to try to reach the mobile peer".
//! * **wP2P components** plug in per task: identity retention, LIHD
//!   (driving the client's upload cap), mobility-aware fetching (a picker
//!   override), and role reversal (re-dialling stored peers immediately
//!   after a hand-off). Age-based Manipulation is packet-level and lives
//!   in the packet world instead.

use crate::rates::{FlowDemand, RateEngine, SolverMode, SolverStats};
use bittorrent::client::{Action, Client, ClientConfig, ClientStats};
use bittorrent::metainfo::{InfoHash, Metainfo};
use bittorrent::peer_id::{PeerId, PeerIdStyle};
use bittorrent::progress::TorrentProgress;
use bittorrent::rate::RateEstimator;
use bittorrent::tracker::{
    AnnounceEvent, AnnounceRequest, AnnounceResponse, TrackerConfig, TrackerTier,
};
use bittorrent::wire::Message;
use metrics::handle::MetricsHandle;
use metrics::registry::{Counter, Histogram};
use metrics::stats::TimeSeries;
use metrics::trace::{Trace, TraceKind};
use simnet::addr::{AddressBook, NodeId, SimAddr};
use simnet::event::{EventToken, QueueStats, Scheduler};
use simnet::fault::FaultHooks;
use simnet::hash::FastHashMap;
use simnet::mobility::MobilityProcess;
use simnet::rng::SimRng;
use simnet::sim::Simulator;
use simnet::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wp2p::config::WP2pConfig;
use wp2p::ia::Lihd;
use wp2p::ma::{MobilityAwarePicker, RoleReversal};

/// Node index.
pub type NodeKey = usize;
/// Task index.
pub type TaskKey = usize;

/// A node's access network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Access {
    /// Independent uplink/downlink pipes (bytes/second).
    Wired {
        /// Uplink capacity, bytes/second.
        up: f64,
        /// Downlink capacity, bytes/second.
        down: f64,
    },
    /// One shared channel: uploads and downloads contend (bytes/second).
    Wireless {
        /// Channel capacity, bytes/second.
        capacity: f64,
    },
}

impl Access {
    /// The paper's residential reference: 4 Mbit/s down, 384 kbit/s up.
    pub fn residential() -> Self {
        Access::Wired {
            up: 384_000.0 / 8.0,
            down: 4_000_000.0 / 8.0,
        }
    }

    /// A well-connected fixed peer.
    pub fn campus() -> Self {
        Access::Wired {
            up: 1_250_000.0,
            down: 1_250_000.0,
        }
    }
}

/// What the torrent looks like to the flow world.
#[derive(Clone, Copy, Debug)]
pub struct TorrentSpec {
    /// Swarm identifier.
    pub info_hash: InfoHash,
    /// Piece length in bytes.
    pub piece_length: u32,
    /// File length in bytes.
    pub length: u64,
    /// Transfer granularity (block size) in bytes. Swarm-scale runs use
    /// piece-sized blocks to bound event counts.
    pub block_size: u32,
}

impl TorrentSpec {
    /// Derives a spec from metainfo with the given transfer granularity.
    pub fn from_metainfo(meta: &Metainfo, block_size: u32) -> Self {
        TorrentSpec {
            info_hash: meta.info.info_hash(),
            piece_length: meta.info.piece_length,
            length: meta.info.length,
            block_size: block_size.min(meta.info.piece_length),
        }
    }

    fn fresh_progress(&self) -> TorrentProgress {
        TorrentProgress::with_block_size(self.piece_length, self.length, self.block_size)
    }

    fn complete_progress(&self) -> TorrentProgress {
        let mut p = TorrentProgress::complete(self.piece_length, self.length);
        let _ = &mut p;
        p
    }
}

/// Global timing parameters of the flow world.
#[derive(Clone, Copy, Debug)]
pub struct FlowConfig {
    /// Transfer/rate-update granularity.
    pub tick: SimDuration,
    /// Client housekeeping cadence.
    pub client_tick: SimDuration,
    /// Metrics sampling cadence.
    pub metrics_interval: SimDuration,
    /// Latency of a successful dial (TCP + BT handshake).
    pub dial_latency: SimDuration,
    /// Timeout of a dial to an unreachable address (SYN retries).
    pub dial_timeout: SimDuration,
    /// How long a silently dead connection lingers before the surviving
    /// side notices (TCP retransmission give-up at the application).
    pub dead_conn_timeout: SimDuration,
    /// Tracker request round-trip latency.
    pub announce_latency: SimDuration,
    /// Tracker behaviour.
    pub tracker: TrackerConfig,
    /// Number of tracker shards in the tier (each owns a deterministic
    /// slice of the info-hash space; see [`bittorrent::tracker::shard_of`]).
    /// `1` (the default) is the single-tracker world every existing
    /// experiment runs.
    pub tracker_shards: usize,
    /// Replica failover: when a swarm's primary shard is down, announces
    /// are routed to its deterministic secondary
    /// ([`bittorrent::tracker::secondary_shard_of`]) instead of failing.
    /// Off by default — a down primary reads as an outage, the legacy
    /// behaviour.
    pub tracker_replicas: bool,
    /// Record piece bytes per `(receiver, sender)` task pair. Off by
    /// default: the clustering analysis of the service experiment needs
    /// it; the scale hot path doesn't pay for it.
    pub track_peer_bytes: bool,
    /// Event-queue scheduler backing the world's simulator.
    pub scheduler: Scheduler,
    /// Per-connection stall watchdog: a connection with queued data that
    /// moves no bytes for this long is aborted (both sides notified), the
    /// flow-level analogue of a BitTorrent request timeout. The timer is
    /// re-armed — cancel plus schedule — every tick a watched connection
    /// makes progress, so it almost always dies unfired: the fire-rarely/
    /// cancel-mostly timer population that dominates real network stacks.
    /// `None` (the default) disables the watchdog entirely.
    pub stall_timeout: Option<SimDuration>,
    /// Max-min solver strategy (see [`SolverMode`]); the default follows
    /// the `WP2P_RATE_SOLVER` environment variable. Both modes run the
    /// same component-decomposed kernel, so their outputs are
    /// byte-identical — `Full` exists as the replay reference.
    pub rate_solver: SolverMode,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            tick: SimDuration::from_millis(250),
            client_tick: SimDuration::from_secs(1),
            metrics_interval: SimDuration::from_secs(5),
            dial_latency: SimDuration::from_millis(300),
            dial_timeout: SimDuration::from_secs(21),
            dead_conn_timeout: SimDuration::from_secs(90),
            announce_latency: SimDuration::from_secs(1),
            tracker: TrackerConfig::default(),
            tracker_shards: 1,
            tracker_replicas: false,
            track_peer_bytes: false,
            scheduler: Scheduler::from_env(),
            stall_timeout: None,
            rate_solver: SolverMode::from_env(),
        }
    }
}

struct Node {
    access: Access,
    addr: SimAddr,
    alive: bool,
    mobility: Option<MobilityProcess>,
}

/// Everything needed to (re)build a task's client.
pub struct TaskSpec {
    /// Hosting node.
    pub node: NodeKey,
    /// The torrent.
    pub torrent: TorrentSpec,
    /// Start as a seed (full progress).
    pub start_complete: bool,
    /// Start with this fraction of pieces already present (uniformly
    /// random pieces, seeded deterministically). Models a swarm member
    /// that joined earlier — real swarms are a spectrum of completion
    /// levels, which is what makes mutual interest (and therefore
    /// tit-for-tat) bind. Ignored when `start_complete` is set.
    pub start_fraction: Option<f64>,
    /// Builds the client configuration (re-invoked at each re-initiation).
    pub make_config: Box<dyn Fn() -> ClientConfig>,
    /// wP2P components enabled for this task.
    pub wp2p: WP2pConfig,
    /// When the task first joins its swarm. [`SimTime::ZERO`] (the
    /// default) starts with the world; later instants model flash-crowd
    /// arrivals — the client spawns at that virtual time instead.
    pub start_at: SimTime,
}

impl TaskSpec {
    /// A plain default-client task.
    pub fn default_client(node: NodeKey, torrent: TorrentSpec, start_complete: bool) -> Self {
        TaskSpec {
            node,
            torrent,
            start_complete,
            start_fraction: None,
            make_config: Box::new(ClientConfig::default),
            wp2p: WP2pConfig::default_client(),
            start_at: SimTime::ZERO,
        }
    }
}

struct TaskState {
    spec: TaskSpec,
    client: Option<Client>,
    saved_progress: Option<TorrentProgress>,
    /// Retained identity (when identity retention is on).
    identity: Option<PeerId>,
    rr: RoleReversal,
    lihd: Option<Lihd>,
    dl_meter: RateEstimator,
    last_down_total: u64,
    acc: ClientStats,
    /// Piece payload bytes actually delivered to/from this task by the
    /// transport (world-side truth, survives client re-initiation).
    delivered_down: u64,
    delivered_up: u64,
    series_down: TimeSeries,
    series_up: TimeSeries,
    next_client_tick: SimTime,
    generation: u32,
    started: bool,
    completed_at: Option<SimTime>,
    /// Consecutive failed announces (tracker outage). Indexes the
    /// client's announce [`bittorrent::lifecycle::BackoffPolicy`]; reset
    /// by the first successful announce.
    announce_fails: u32,
    /// The `min interval` of the last *served* announce. Outage-retry
    /// responses are synthesized with this floor so a recovering shard
    /// is never hammered faster than it ever allowed ([`SimDuration::ZERO`]
    /// until the first real response, which the client maps back to its
    /// default floor).
    last_min_interval: SimDuration,
    /// Dial address book saved across re-initiation when the client runs
    /// PEX: the paper's knowledge-retention analogue. A moved host
    /// re-dials its old correspondents from its new address — the only
    /// rejoin path while the tracker tier is dark.
    saved_addrs: Vec<SimAddr>,
    /// Client conn key → `(conn id, is_a_side)` for this task's live
    /// connection ends. Per-task (instead of one global map keyed by
    /// `(task, key)`) so per-message lookups hash a single small map and
    /// teardown walks only this task's entries.
    conn_index: FastHashMap<u64, (ConnId, bool)>,
    /// Piece payload bytes received per sending task, across
    /// re-initiations. Populated only under
    /// [`FlowConfig::track_peer_bytes`] (the clustering analysis input).
    peer_bytes: FastHashMap<TaskKey, u64>,
    rng: SimRng,
}

#[derive(Debug)]
struct FlowQ {
    queue: VecDeque<Message>,
    head_remaining: f64,
}

impl FlowQ {
    fn new() -> Self {
        FlowQ {
            queue: VecDeque::new(),
            head_remaining: 0.0,
        }
    }

    fn push(&mut self, msg: Message) {
        if self.queue.is_empty() {
            self.head_remaining = msg.wire_len() as f64;
        }
        self.queue.push_back(msg);
    }

    fn advance(&mut self, mut budget: f64, out: &mut Vec<Message>) {
        while budget > 0.0 {
            let Some(_head) = self.queue.front() else {
                return;
            };
            if self.head_remaining <= budget {
                budget -= self.head_remaining;
                let msg = self.queue.pop_front().expect("front exists");
                out.push(msg);
                if let Some(next) = self.queue.front() {
                    self.head_remaining = next.wire_len() as f64;
                } else {
                    self.head_remaining = 0.0;
                }
            } else {
                self.head_remaining -= budget;
                return;
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ConnEnd {
    task: TaskKey,
    key: u64,
    generation: u32,
}

/// Generation-checked handle into the connection arena (the slab /
/// `EventToken` pattern): `slot` indexes the dense arrays, `gen` must
/// match the slot's current generation or the handle is stale. Slots are
/// recycled; generations only grow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct ConnId {
    slot: u32,
    gen: u32,
}

/// Struct-of-arrays connection storage. Every per-connection attribute
/// lives in its own dense `Vec` indexed by slot, so the per-tick hot
/// loops (transfer advance, rate bookkeeping, feasibility audit) stream
/// through flat arrays instead of chasing `BTreeMap` nodes. Vacated
/// slots go on a free list and are reused with a bumped generation.
///
/// The max-min solver's flow slots are derived as
/// `2 · slot + direction` (0 = a→b, 1 = b→a), giving the engine the same
/// dense u32 keying with zero translation state.
#[derive(Default)]
struct ConnArena {
    gen: Vec<u32>,
    live: Vec<bool>,
    /// Monotone creation id: iteration orders that used to follow the
    /// ever-growing conn-id map key sort by `uid` instead, which slot
    /// reuse cannot perturb.
    uid: Vec<u64>,
    a: Vec<ConnEnd>,
    b: Vec<ConnEnd>,
    ab: Vec<FlowQ>,
    ba: Vec<FlowQ>,
    /// Set when one side silently vanished.
    dead_since: Vec<Option<SimTime>>,
    /// Armed stall-watchdog timer (see [`FlowConfig::stall_timeout`]).
    stall: Vec<Option<EventToken>>,
    /// When the watched connection last moved bytes (or was first
    /// armed). The watchdog is *lazy*: progress only writes this stamp;
    /// the single armed timer checks it on fire and re-arms itself —
    /// O(1) timer traffic per timeout window instead of a cancel +
    /// re-schedule per progressing connection per tick.
    last_progress: Vec<SimTime>,
    free: Vec<u32>,
    next_uid: u64,
}

impl ConnArena {
    fn insert(&mut self, a: ConnEnd, b: ConnEnd) -> ConnId {
        self.next_uid += 1;
        let uid = self.next_uid;
        if let Some(slot) = self.free.pop() {
            let s = slot as usize;
            self.live[s] = true;
            self.uid[s] = uid;
            self.a[s] = a;
            self.b[s] = b;
            // Queues were cleared on free; keep their allocations.
            self.dead_since[s] = None;
            self.stall[s] = None;
            self.last_progress[s] = SimTime::ZERO;
            ConnId {
                slot,
                gen: self.gen[s],
            }
        } else {
            let slot = self.gen.len() as u32;
            self.gen.push(0);
            self.live.push(true);
            self.uid.push(uid);
            self.a.push(a);
            self.b.push(b);
            self.ab.push(FlowQ::new());
            self.ba.push(FlowQ::new());
            self.dead_since.push(None);
            self.stall.push(None);
            self.last_progress.push(SimTime::ZERO);
            ConnId { slot, gen: 0 }
        }
    }

    /// Validates a handle; returns the slot index while it is current.
    fn check(&self, id: ConnId) -> Option<usize> {
        let s = id.slot as usize;
        (s < self.live.len() && self.live[s] && self.gen[s] == id.gen).then_some(s)
    }

    /// Vacates a slot: the generation bumps (outstanding handles and
    /// queued events go stale) and the queues are emptied in place.
    fn free(&mut self, id: ConnId) {
        let s = id.slot as usize;
        debug_assert!(self.live[s] && self.gen[s] == id.gen);
        self.live[s] = false;
        self.gen[s] += 1;
        self.ab[s].queue.clear();
        self.ab[s].head_remaining = 0.0;
        self.ba[s].queue.clear();
        self.ba[s].head_remaining = 0.0;
        self.stall[s] = None;
        self.free.push(id.slot);
    }

    fn slot_count(&self) -> usize {
        self.live.len()
    }
}

/// Events driving the flow world.
enum Ev {
    Tick,
    Dial {
        task: TaskKey,
        generation: u32,
        key: u64,
        addr: SimAddr,
        target: Option<TaskKey>,
    },
    TrackerReply {
        task: TaskKey,
        generation: u32,
        event: AnnounceEvent,
    },
    HandoffStart {
        node: NodeKey,
        ends: SimTime,
    },
    HandoffEnd {
        node: NodeKey,
    },
    /// Stall watchdog timer for connection `cid`. The watchdog is lazy:
    /// progress just stamps `last_progress`, and the one armed timer
    /// decides on fire — abort if a full timeout passed since the stamp,
    /// otherwise re-arm at exactly `last_progress + timeout`. The abort
    /// lands at the same sim time the eager cancel-and-re-schedule
    /// scheme produced, at a tiny fraction of the timer traffic. A stale
    /// generation (slot recycled) makes the event a no-op.
    StallCheck {
        cid: ConnId,
    },
    /// Deferred task start (flash-crowd arrival): spawn the task's
    /// client at its `start_at` instant. If the hosting node is mid
    /// hand-off outage, the start retries a tick later.
    TaskStart {
        task: TaskKey,
    },
}

/// The flow-level world. See the module docs.
///
/// ```
/// use p2p_simulation::flow::{Access, FlowConfig, FlowWorld, TaskSpec, TorrentSpec};
/// use bittorrent::metainfo::Metainfo;
/// use simnet::time::SimTime;
///
/// let meta = Metainfo::synthetic("demo.bin", "tr", 64 * 1024, 1024 * 1024, 1);
/// let torrent = TorrentSpec::from_metainfo(&meta, 64 * 1024);
/// let mut world = FlowWorld::new(FlowConfig::default(), 42);
/// let seed_node = world.add_node(Access::campus());
/// let leech_node = world.add_node(Access::residential());
/// world.add_task(TaskSpec::default_client(seed_node, torrent, true));
/// let leech = world.add_task(TaskSpec::default_client(leech_node, torrent, false));
/// world.start();
/// world.run_until(SimTime::from_secs(120), |_| {});
/// assert_eq!(world.progress_fraction(leech), 1.0);
/// ```
pub struct FlowWorld {
    cfg: FlowConfig,
    sim: Simulator<Ev>,
    tracker: TrackerTier,
    book: AddressBook,
    nodes: Vec<Node>,
    tasks: Vec<TaskState>,
    conns: ConnArena,
    /// Tasks hosted on each node, in task-key order — replaces the
    /// per-dial / per-hand-off linear scans over every task.
    node_tasks: Vec<Vec<TaskKey>>,
    /// Connections with `dead_since` set, in the order they died (their
    /// death times are monotone), so the dead sweep pops expired ones
    /// off the front instead of scanning every connection each tick.
    dead_queue: VecDeque<(SimTime, ConnId)>,
    /// Tasks with a client tick due at each instant. Entries are
    /// validated against the task's `next_client_tick` when popped, so
    /// stale entries from killed/respawned clients are harmless.
    tick_due: BTreeMap<SimTime, Vec<TaskKey>>,
    rng: SimRng,
    started: bool,
    last_advance: SimTime,
    next_metrics: SimTime,
    trace: Trace,
    metrics: MetricsHandle,
    m_handoffs: Counter,
    m_handoff_latency: Histogram,
    m_fault_events: Counter,
    /// When each node's current hand-off outage began, for the latency
    /// histogram.
    handoff_down_since: BTreeMap<NodeKey, SimTime>,
    /// The persistent incremental max-min solver. Demand/capacity
    /// changes are pushed into it at the mutation site (connection
    /// lifecycle, queue transitions, upload-cap moves, faults); a tick's
    /// `recompute_rates` is just `engine.solve()`, which re-fills only
    /// the dirty connected components — or skips outright when nothing
    /// changed.
    engine: RateEngine,
    /// First task-cap pseudo-resource id: task `t`'s upload cap is
    /// resource `cap_base + t`. Frozen at [`FlowWorld::start`].
    cap_base: usize,
    /// Whether each task currently contributes a cap pseudo-resource to
    /// its outgoing flows' demands.
    task_capped: Vec<bool>,
    /// Tasks with possibly-unpolled client actions, with a dedup flag;
    /// `pump_actions` drains exactly these instead of sweeping every
    /// task per round.
    pending_tasks: Vec<TaskKey>,
    pending_flag: Vec<bool>,
    rate_solves: u64,
    rate_skips: u64,
    /// Connections aborted by the stall watchdog (see
    /// [`FlowConfig::stall_timeout`]).
    stall_aborts: u64,
    // --- fault-injection state (see the `FaultHooks` impl) ---
    /// Announces fail while set.
    tracker_down: bool,
    /// Nodes whose traffic silently vanishes.
    blackholed: BTreeSet<NodeKey>,
    /// Pre-fault access of nodes with an active capacity modifier.
    access_baseline: BTreeMap<NodeKey, Access>,
    /// External upload cap per node, applied on top of the access
    /// uplink — the cross-swarm seed-capacity budget: all of a node's
    /// tasks, whatever swarm they serve, share `min(access_up, cap)`
    /// through the node's up resource (the fluid equivalent of one
    /// upload token bucket spanning the node's swarms).
    node_upload_cap: BTreeMap<NodeKey, f64>,
    /// Active loss-burst capacity factor per node.
    lossy_factor: BTreeMap<NodeKey, f64>,
    /// Active bandwidth-squeeze factor per node.
    squeeze_factor: BTreeMap<NodeKey, f64>,
    /// Every-tick invariant checker (runs in debug/test builds).
    checker: crate::invariants::InvariantChecker,
}

impl FlowWorld {
    /// Creates an empty world.
    pub fn new(cfg: FlowConfig, seed: u64) -> Self {
        let rng = SimRng::new(seed);
        FlowWorld {
            tracker: TrackerTier::new(cfg.tracker, cfg.tracker_shards),
            sim: Simulator::with_scheduler(cfg.scheduler),
            engine: RateEngine::new(cfg.rate_solver),
            cfg,
            book: AddressBook::new(),
            nodes: Vec::new(),
            tasks: Vec::new(),
            conns: ConnArena::default(),
            node_tasks: Vec::new(),
            dead_queue: VecDeque::new(),
            tick_due: BTreeMap::new(),
            rng,
            started: false,
            last_advance: SimTime::ZERO,
            next_metrics: SimTime::ZERO,
            trace: Trace::new(4096),
            metrics: MetricsHandle::disabled(),
            m_handoffs: Counter::default(),
            m_handoff_latency: Histogram::default(),
            m_fault_events: Counter::default(),
            handoff_down_since: BTreeMap::new(),
            cap_base: 0,
            task_capped: Vec::new(),
            pending_tasks: Vec::new(),
            pending_flag: Vec::new(),
            rate_solves: 0,
            rate_skips: 0,
            stall_aborts: 0,
            tracker_down: false,
            blackholed: BTreeSet::new(),
            access_baseline: BTreeMap::new(),
            node_upload_cap: BTreeMap::new(),
            lossy_factor: BTreeMap::new(),
            squeeze_factor: BTreeMap::new(),
            checker: crate::invariants::InvariantChecker::new(),
        }
    }

    /// Ticks whose rate problem changed and was re-solved.
    pub fn rate_solves(&self) -> u64 {
        self.rate_solves
    }

    /// Ticks that skipped the max-min solve because nothing affecting the
    /// allocation changed since the previous one.
    pub fn rate_skips(&self) -> u64 {
        self.rate_skips
    }

    /// Cumulative solver work counters (full/incremental solves, class
    /// aggregation, component sweep sizes).
    pub fn solver_stats(&self) -> SolverStats {
        self.engine.stats()
    }

    /// The solver strategy this world runs.
    pub fn rate_solver(&self) -> SolverMode {
        self.engine.mode()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Simulator events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.processed()
    }

    /// Event-queue instrumentation counters (depth, cancellations).
    pub fn queue_stats(&self) -> QueueStats {
        self.sim.queue_stats()
    }

    /// Connections aborted by the stall watchdog so far.
    pub fn stall_aborts(&self) -> u64 {
        self.stall_aborts
    }

    /// Which event-queue scheduler backs this world.
    pub fn scheduler(&self) -> Scheduler {
        self.sim.scheduler()
    }

    /// Turns on event tracing (connection lifecycle, mobility, tracker).
    pub fn enable_trace(&mut self) {
        self.trace.set_enabled(true);
    }

    /// Wires the world's observables into `handle`: `flow.handoffs` /
    /// `flow.fault_events` counters, a `flow.handoff_latency_s`
    /// histogram, `flow.utilization` plus per-task
    /// `flow.task<t>.{down,up}_bytes` series at the metrics interval,
    /// and a copy of every trace event into the handle's structured
    /// sink. Clients and LIHD controllers spawned afterwards attach
    /// their own instruments under the same handle. Call before
    /// [`FlowWorld::start`]; inert when the handle is disabled.
    pub fn set_metrics(&mut self, handle: &MetricsHandle) {
        self.metrics = handle.clone();
        self.m_handoffs = handle.counter("flow.handoffs");
        self.m_handoff_latency = handle.histogram(
            "flow.handoff_latency_s",
            &[0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0],
        );
        self.m_fault_events = handle.counter("flow.fault_events");
    }

    /// Records into both the world's own ring trace and the metrics
    /// handle's structured sink.
    fn note(&mut self, at: SimTime, kind: TraceKind, message: String) {
        if self.metrics.is_enabled() {
            self.metrics.trace_event(at, kind, message.clone());
        }
        self.trace.record(at, kind, message);
    }

    /// A fault-injection hook fired: count it and trace it.
    fn fault_note(&mut self, at: SimTime, message: String) {
        self.m_fault_events.inc();
        self.note(at, TraceKind::Other, message);
    }

    /// The recorded trace (empty unless [`FlowWorld::enable_trace`] ran).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Adds a node with the given access network; returns its key. Call
    /// before [`FlowWorld::start`] — the solver's resource layout is
    /// frozen there.
    pub fn add_node(&mut self, access: Access) -> NodeKey {
        debug_assert!(!self.started, "add_node after start()");
        let key = self.nodes.len();
        let addr = self.book.assign(simnet::addr::NodeId(key as u32));
        self.nodes.push(Node {
            access,
            addr,
            alive: true,
            mobility: None,
        });
        self.node_tasks.push(Vec::new());
        key
    }

    /// Gives a node a mobility schedule (hand-offs with outages).
    pub fn set_mobility(&mut self, node: NodeKey, process: MobilityProcess) {
        self.nodes[node].mobility = Some(process);
    }

    /// Current address of a node.
    pub fn node_addr(&self, node: NodeKey) -> SimAddr {
        self.nodes[node].addr
    }

    /// Adds a task; returns its key. Call before [`FlowWorld::start`].
    pub fn add_task(&mut self, spec: TaskSpec) -> TaskKey {
        debug_assert!(!self.started, "add_task after start()");
        let key = self.tasks.len();
        let rng = self.rng.fork(1000 + key as u64);
        let lihd = spec.wp2p.lihd.map(Lihd::new);
        self.node_tasks[spec.node].push(key);
        self.task_capped.push(false);
        self.pending_flag.push(false);
        self.tasks.push(TaskState {
            spec,
            client: None,
            saved_progress: None,
            identity: None,
            rr: RoleReversal::new(),
            lihd,
            dl_meter: RateEstimator::with_window(SimDuration::from_secs(10)),
            last_down_total: 0,
            acc: ClientStats::default(),
            delivered_down: 0,
            delivered_up: 0,
            series_down: TimeSeries::new(),
            series_up: TimeSeries::new(),
            next_client_tick: SimTime::ZERO,
            generation: 0,
            started: false,
            completed_at: None,
            announce_fails: 0,
            last_min_interval: SimDuration::ZERO,
            saved_addrs: Vec::new(),
            conn_index: FastHashMap::default(),
            peer_bytes: FastHashMap::default(),
            rng,
        });
        key
    }

    /// Starts every task and schedules the world's clock work.
    pub fn start(&mut self) {
        assert!(!self.started, "start() called twice");
        self.started = true;
        let now = self.sim.now();
        self.last_advance = now;
        self.next_metrics = now;
        // Freeze the solver's resource layout: two access resources per
        // node, then one cap pseudo-resource slot per task.
        self.cap_base = 2 * self.nodes.len();
        self.engine
            .ensure_resources(self.cap_base + self.tasks.len());
        for n in 0..self.nodes.len() {
            self.sync_node_capacity(n);
        }
        for t in 0..self.tasks.len() {
            let at = self.tasks[t].spec.start_at;
            if at > now {
                // Flash-crowd arrival: the client joins later.
                self.sim.schedule_at(at, Ev::TaskStart { task: t });
            } else {
                self.spawn_client(t, now);
            }
        }
        self.pump_actions(now);
        self.sim.schedule_in(self.cfg.tick, Ev::Tick);
        // Mobility schedules.
        for n in 0..self.nodes.len() {
            self.schedule_next_handoff(n);
        }
    }

    fn schedule_next_handoff(&mut self, node: NodeKey) {
        let mut rng = self
            .rng
            .fork(5000 + node as u64 + self.sim.now().as_micros());
        if let Some(m) = self.nodes[node].mobility.as_mut() {
            if let Some(h) = m.next_handoff(&mut rng) {
                self.sim.schedule_at(
                    h.starts.max(self.sim.now()),
                    Ev::HandoffStart { node, ends: h.ends },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Client lifecycle
    // ------------------------------------------------------------------

    fn spawn_client(&mut self, t: TaskKey, now: SimTime) {
        let node = self.tasks[t].spec.node;
        let addr = self.nodes[node].addr;
        let task = &mut self.tasks[t];
        let mut config = (task.spec.make_config)();
        if let Some(schedule) = task.spec.wp2p.mobility_fetching {
            config.picker = Box::new(MobilityAwarePicker::new(schedule));
        }
        if task.spec.wp2p.role_reversal {
            config.dial_while_seeding = true;
        }
        // Strategy handoff hooks: the strategy sees every (re)initiation
        // (hybrids draw their per-generation degrade here, from the
        // task's seeded stream), and may then insist on a fresh peer-id
        // even when the world would have retained it — the deliberate
        // address-churn exploit. Honest draws nothing and never churns,
        // so legacy rng streams are untouched.
        config
            .strategy
            .on_reinit(task.generation, &mut task.rng);
        let churn = config.strategy.churn_identity();
        let fresh = PeerId::generate(PeerIdStyle::Random, addr, &mut task.rng);
        let peer_id = if task.spec.wp2p.identity_retention && !churn {
            *task.identity.get_or_insert(fresh)
        } else {
            task.identity = Some(fresh);
            fresh
        };
        let progress = task.saved_progress.take().unwrap_or_else(|| {
            if task.spec.start_complete {
                task.spec.torrent.complete_progress()
            } else {
                let mut p = task.spec.torrent.fresh_progress();
                if let Some(f) = task.spec.start_fraction {
                    let n = p.num_pieces();
                    let want = (f.clamp(0.0, 1.0) * n as f64).round() as u32;
                    let mut pieces: Vec<u32> = (0..n).collect();
                    task.rng.shuffle(&mut pieces);
                    for &piece in pieces.iter().take(want as usize) {
                        p.mark_piece_complete(piece);
                    }
                }
                p
            }
        });
        let mut client = Client::with_progress(
            config,
            task.spec.torrent.info_hash,
            peer_id,
            progress,
            addr,
            task.rng.fork(task.generation as u64),
        );
        client.mark_stable(now);
        if self.metrics.is_enabled() {
            client.attach_metrics(&self.metrics, &format!("task{t}"));
            if let Some(l) = task.lihd.as_mut() {
                l.attach_metrics(&self.metrics, &format!("task{t}"));
            }
        }
        if let Some(l) = &task.lihd {
            client.set_upload_limit(Some(l.upload_limit()));
        }
        client.start(now);
        if task.spec.wp2p.role_reversal {
            let stored: Vec<SimAddr> = task.rr.stored_peers().to_vec();
            client.seed_known_addrs(&stored, now);
        }
        if client.pex_enabled() && !task.saved_addrs.is_empty() {
            // Re-seed the retained dial book (minus whatever address the
            // node now occupies — `seed_known_addrs` filters it). The
            // rebuilt client dials its old correspondents from its new
            // address; their handshakes re-attach standing by peer-id
            // and their gossip spreads the new address.
            let saved = std::mem::take(&mut task.saved_addrs);
            client.seed_known_addrs(&saved, now);
        }
        task.client = Some(client);
        task.started = true;
        task.next_client_tick = now;
        self.tick_due.entry(now).or_default().push(t);
        // A fresh client may carry an upload cap into the rate problem;
        // `start`/`seed_known_addrs` may already have queued actions.
        self.sync_upload_cap(t);
        self.mark_pending(t);
    }

    fn kill_client(&mut self, t: TaskKey, now: SimTime) {
        // Every flow referencing this task's cap pseudo-resource belongs
        // to a connection killed below, so the cap can simply lapse.
        self.task_capped[t] = false;
        if let Some(client) = self.tasks[t].client.take() {
            let stats = client.stats();
            let acc = &mut self.tasks[t].acc;
            acc.downloaded_payload += stats.downloaded_payload;
            acc.uploaded_payload += stats.uploaded_payload;
            acc.connections_opened += stats.connections_opened;
            acc.dial_failures += stats.dial_failures;
            acc.duplicate_blocks += stats.duplicate_blocks;
            acc.pex_sent += stats.pex_sent;
            acc.pex_received += stats.pex_received;
            acc.pex_addrs_learned += stats.pex_addrs_learned;
            acc.breaker_trips += stats.breaker_trips;
            if client.pex_enabled() {
                // Knowledge retention: a PEX client keeps its dial book
                // across re-initiation, the way it keeps its identity —
                // after a hand-off the *addresses* are the only way back
                // into a tracker-dark swarm.
                self.tasks[t].saved_addrs = client.known_addrs();
            }
            let mut progress = client.into_progress();
            progress.clear_in_flight();
            self.tasks[t].saved_progress = Some(progress);
        }
        self.tasks[t].generation += 1;
        self.tasks[t].last_down_total = 0;
        self.tasks[t].dl_meter = RateEstimator::with_window(SimDuration::from_secs(10));
        // This side's index entries vanish; the connection lingers as a
        // black hole for the remote side. Sorted so the dead-queue push
        // order (and with it, arena slot reuse) is hash-order-free.
        let mut keys: Vec<u64> = self.tasks[t].conn_index.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            let (cid, _is_a) = self.tasks[t].conn_index.remove(&k).expect("key listed");
            let remove_now = if let Some(s) = self.conns.check(cid) {
                if self.conns.dead_since[s].is_none() {
                    self.conns.dead_since[s] = Some(now);
                    // Dead flows carry no demand; retire them from the
                    // rate problem eagerly so stale rates never linger.
                    self.engine.remove_flow(2 * s);
                    self.engine.remove_flow(2 * s + 1);
                    if let Some(tok) = self.conns.stall[s].take() {
                        self.sim.cancel(tok);
                    }
                    self.dead_queue.push_back((now, cid));
                }
                // If neither side is indexed anymore, drop entirely.
                let (ea, eb) = (self.conns.a[s], self.conns.b[s]);
                !self.tasks[ea.task].conn_index.contains_key(&ea.key)
                    && !self.tasks[eb.task].conn_index.contains_key(&eb.key)
            } else {
                false
            };
            if remove_now {
                self.conns.free(cid);
            }
        }
    }

    /// Stops a task for good (announces `Stopped`).
    pub fn stop_task(&mut self, t: TaskKey, announce: bool) {
        let now = self.sim.now();
        if announce {
            if let Some(client) = &self.tasks[t].client {
                let node = self.tasks[t].spec.node;
                let mut rng = self.rng.fork(7777 + t as u64);
                let req = AnnounceRequest {
                    info_hash: client.info_hash(),
                    peer_id: client.peer_id(),
                    addr: self.nodes[node].addr,
                    event: AnnounceEvent::Stopped,
                    is_seed: client.is_seed(),
                };
                let _ = self.tracker.announce(&req, now, &mut rng);
            }
        }
        self.kill_client(t, now);
        self.tasks[t].started = false;
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// Piece payload bytes this task has received (across re-initiations),
    /// from the client's progress accounting.
    pub fn downloaded_bytes(&self, t: TaskKey) -> u64 {
        let task = &self.tasks[t];
        let live = task
            .client
            .as_ref()
            .map(|c| c.stats().downloaded_payload)
            .unwrap_or(0);
        task.acc.downloaded_payload + live
    }

    /// Piece payload bytes delivered *to* this task by the transport.
    pub fn delivered_down_bytes(&self, t: TaskKey) -> u64 {
        self.tasks[t].delivered_down
    }

    /// Piece payload bytes delivered *from* this task to its peers.
    pub fn delivered_up_bytes(&self, t: TaskKey) -> u64 {
        self.tasks[t].delivered_up
    }

    /// Downloaded fraction of the torrent.
    pub fn progress_fraction(&self, t: TaskKey) -> f64 {
        self.with_progress(t, |p| p.downloaded_fraction())
    }

    /// Applies a closure to the task's current progress (live or saved).
    pub fn with_progress<R>(&self, t: TaskKey, f: impl FnOnce(&TorrentProgress) -> R) -> R {
        let task = &self.tasks[t];
        if let Some(c) = &task.client {
            f(c.progress())
        } else if let Some(p) = &task.saved_progress {
            f(p)
        } else if task.spec.start_complete {
            f(&task.spec.torrent.complete_progress())
        } else {
            f(&task.spec.torrent.fresh_progress())
        }
    }

    /// The sampled downloaded-bytes time series of a task.
    pub fn download_series(&self, t: TaskKey) -> &TimeSeries {
        &self.tasks[t].series_down
    }

    /// The sampled uploaded-bytes time series of a task.
    pub fn upload_series(&self, t: TaskKey) -> &TimeSeries {
        &self.tasks[t].series_up
    }

    /// When the task completed its download, if it has.
    pub fn completed_at(&self, t: TaskKey) -> Option<SimTime> {
        self.tasks[t].completed_at
    }

    /// Read-only view of a task's live client.
    pub fn client(&self, t: TaskKey) -> Option<&Client> {
        self.tasks[t].client.as_ref()
    }

    /// Sets (or clears) a task's upload cap from outside — the hook used
    /// by experiment-level controllers such as the seed-mode LIHD of the
    /// paper's §4.2 future work.
    pub fn set_task_upload_limit(&mut self, t: TaskKey, limit: Option<f64>) {
        if let Some(c) = self.tasks[t].client.as_mut() {
            c.set_upload_limit(limit);
            self.sync_upload_cap(t);
        }
    }

    /// Number of live connections of a task.
    pub fn connection_count(&self, t: TaskKey) -> usize {
        self.tasks[t]
            .client
            .as_ref()
            .map_or(0, |c| c.connection_count())
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Runs until `deadline`, invoking `on_tick` after each world tick.
    pub fn run_until(&mut self, deadline: SimTime, mut on_tick: impl FnMut(&mut FlowWorld)) {
        assert!(self.started, "call start() first");
        while let Some(t) = self.sim.peek_time() {
            if t > deadline {
                break;
            }
            let (now, ev) = self.sim.next_event().expect("peeked event");
            match ev {
                Ev::Tick => {
                    self.do_tick(now);
                    self.sim.schedule_in(self.cfg.tick, Ev::Tick);
                    on_tick(self);
                }
                Ev::Dial {
                    task,
                    generation,
                    key,
                    addr,
                    target,
                } => self.resolve_dial(task, generation, key, addr, target, now),
                Ev::TrackerReply {
                    task,
                    generation,
                    event,
                } => self.tracker_reply(task, generation, event, now),
                Ev::HandoffStart { node, ends } => {
                    self.handoff_start(node, now);
                    self.sim.schedule_at(ends.max(now), Ev::HandoffEnd { node });
                }
                Ev::HandoffEnd { node } => {
                    self.handoff_end(node, now);
                    self.schedule_next_handoff(node);
                }
                Ev::StallCheck { cid } => {
                    if let Some(s) = self.conns.check(cid) {
                        self.conns.stall[s] = None;
                        if self.conns.dead_since[s].is_none()
                            && !(self.conns.ab[s].queue.is_empty()
                                && self.conns.ba[s].queue.is_empty())
                        {
                            let deadline =
                                self.conns.last_progress[s] + self.cfg.stall_timeout.unwrap_or(SimDuration::ZERO);
                            if now >= deadline {
                                // Queued data untouched for a whole
                                // timeout: abort, as a client's request
                                // timer would. Armed clients transition
                                // the address into backing-off instead
                                // of a flat redial.
                                self.stall_aborts += 1;
                                self.remove_conn_stalled(cid, now);
                            } else {
                                // Progress since arming: chase it.
                                self.conns.stall[s] =
                                    Some(self.sim.schedule_at(deadline, Ev::StallCheck { cid }));
                            }
                        }
                    }
                }
                Ev::TaskStart { task } => {
                    if !self.tasks[task].started {
                        let node = self.tasks[task].spec.node;
                        if self.nodes[node].alive {
                            self.spawn_client(task, now);
                            self.pump_actions(now);
                        } else {
                            // Node is mid hand-off outage: retry after
                            // a tick (the outage ends at a known event).
                            self.sim
                                .schedule_in(self.cfg.tick, Ev::TaskStart { task });
                        }
                    }
                }
            }
        }
    }

    /// Runs for a further `duration`.
    pub fn run_for(&mut self, duration: SimDuration, on_tick: impl FnMut(&mut FlowWorld)) {
        let deadline = self.sim.now() + duration;
        self.run_until(deadline, on_tick);
    }

    /// Runs until `deadline` or until `stop` returns `true` (checked after
    /// every tick). Returns `true` when the condition fired.
    pub fn run_until_condition(
        &mut self,
        deadline: SimTime,
        mut stop: impl FnMut(&FlowWorld) -> bool,
    ) -> bool {
        let mut fired = false;
        // Step tick-by-tick so the condition is evaluated promptly without
        // the callback needing interior mutability.
        while !fired && self.sim.peek_time().is_some_and(|t| t <= deadline) {
            let next = self.now() + self.cfg.tick;
            self.run_until(next.min(deadline), |_| {});
            fired = stop(self);
        }
        fired
    }

    /// [`Self::run_until_condition`] with a driver invoked on every tick:
    /// fault injection needs `&mut` world access, the stop condition only
    /// reads. Terminates when the condition fires, the deadline passes,
    /// or no events remain at or before it (so a deadline that falls
    /// between ticks cannot spin). Returns `true` when the condition
    /// fired.
    pub fn run_driven_until(
        &mut self,
        deadline: SimTime,
        mut drive: impl FnMut(&mut FlowWorld),
        mut stop: impl FnMut(&FlowWorld) -> bool,
    ) -> bool {
        let mut fired = false;
        while !fired && self.sim.peek_time().is_some_and(|t| t <= deadline) {
            let next = self.now() + self.cfg.tick;
            self.run_until(next.min(deadline), &mut drive);
            fired = stop(self);
        }
        fired
    }

    fn do_tick(&mut self, now: SimTime) {
        // 1. Advance transfers and deliver completed messages.
        let elapsed = now.saturating_since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        if elapsed > 0.0 {
            self.advance_flows(now, elapsed);
        }
        // 2. Dead-connection sweep.
        self.sweep_dead(now);
        // 3. Client housekeeping. Pop the due tick buckets rather than
        // scanning every task; bucket entries are validated against the
        // task's live `next_client_tick`, so stale ones are harmless.
        let mut due: Vec<TaskKey> = Vec::new();
        while self
            .tick_due
            .first_key_value()
            .is_some_and(|(&at, _)| at <= now)
        {
            let (_, mut batch) = self.tick_due.pop_first().expect("checked non-empty");
            due.append(&mut batch);
        }
        due.sort_unstable();
        due.dedup();
        for t in due {
            if self.tasks[t].client.is_some() && now >= self.tasks[t].next_client_tick {
                self.client_tick(t, now);
            }
        }
        // 4. Execute client actions.
        self.pump_actions(now);
        // 5. Recompute fair-share rates for the next interval.
        self.recompute_rates();
        // 6. Metrics.
        if now >= self.next_metrics {
            self.next_metrics = now + self.cfg.metrics_interval;
            for t in 0..self.tasks.len() {
                // Useful (non-duplicate) download progress; transport-level
                // bytes served.
                let down = self.downloaded_bytes(t) as f64;
                let up = self.tasks[t].delivered_up as f64;
                self.tasks[t].series_down.push(now, down);
                self.tasks[t].series_up.push(now, up);
                if self.metrics.is_enabled() {
                    self.metrics
                        .series(&format!("flow.task{t}.down_bytes"))
                        .record(now, down);
                    self.metrics
                        .series(&format!("flow.task{t}.up_bytes"))
                        .record(now, up);
                }
            }
            if self.metrics.is_enabled() {
                self.metrics
                    .series("flow.utilization")
                    .record(now, self.utilization());
            }
        }
        // 7. Invariants: in debug/test builds every tick is a checked
        // state, so any test that runs this world is an invariant run.
        #[cfg(debug_assertions)]
        {
            // Engine-registration invariant: a dead conn carries no
            // engine demand, and a live direction with an empty queue
            // carries none either (so it flows at rate zero by
            // construction).
            for s in 0..self.conns.slot_count() {
                if !self.conns.live[s] {
                    continue;
                }
                if self.conns.dead_since[s].is_some() {
                    debug_assert!(
                        !self.engine.has_flow(2 * s) && !self.engine.has_flow(2 * s + 1),
                        "dead conn slot {s} still registered in the solver"
                    );
                    continue;
                }
                debug_assert!(
                    !self.conns.ab[s].queue.is_empty() || !self.engine.has_flow(2 * s),
                    "drained conn slot {s} dir ab still registered in the solver"
                );
                debug_assert!(
                    !self.conns.ba[s].queue.is_empty() || !self.engine.has_flow(2 * s + 1),
                    "drained conn slot {s} dir ba still registered in the solver"
                );
            }
            let mut ck = std::mem::take(&mut self.checker);
            ck.check_flow(self);
            self.checker = ck;
        }
    }

    /// Allocated transfer rate as a fraction of the live access
    /// capacity. Each flowing byte transits two access links (sender
    /// uplink, receiver downlink), hence the factor of two.
    fn utilization(&self) -> f64 {
        let mut cap = 0.0;
        for n in &self.nodes {
            if !n.alive {
                continue;
            }
            cap += match n.access {
                Access::Wired { up, down } => up + down,
                Access::Wireless { capacity } => capacity,
            };
        }
        if cap <= 0.0 {
            return 0.0;
        }
        let mut used = 0.0;
        // Dense sweep: drained directions hold no engine flow, so they
        // read rate zero and cannot contribute.
        for s in 0..self.conns.slot_count() {
            if !self.conns.live[s] || self.conns.dead_since[s].is_some() {
                continue;
            }
            if !self.conns.ab[s].queue.is_empty() {
                used += self.engine.rate(2 * s);
            }
            if !self.conns.ba[s].queue.is_empty() {
                used += self.engine.rate(2 * s + 1);
            }
        }
        (2.0 * used / cap).clamp(0.0, 1.0)
    }

    fn advance_flows(&mut self, now: SimTime, elapsed: f64) {
        // Deliveries: (dst task, dst key, dst generation, src task, msg).
        let mut deliveries: Vec<(TaskKey, u64, u32, TaskKey, Message)> = Vec::new();
        let mut scratch: Vec<Message> = Vec::new();
        // Dense arena sweep: the live/dead bitmaps and the engine's rate
        // array are flat, so scanning every slot is cheaper at scale
        // than maintaining an ordered active set — and slots without a
        // positive rate fall through in a couple of loads.
        let stall = self.cfg.stall_timeout;
        for s in 0..self.conns.slot_count() {
            if !self.conns.live[s] || self.conns.dead_since[s].is_some() {
                continue;
            }
            let mut progressed = false;
            for dir in 0..2 {
                let rate = self.engine.rate(2 * s + dir);
                if rate <= 0.0 {
                    continue;
                }
                let q = if dir == 0 {
                    &mut self.conns.ab[s]
                } else {
                    &mut self.conns.ba[s]
                };
                if q.queue.is_empty() {
                    continue;
                }
                progressed = true;
                scratch.clear();
                q.advance(rate * elapsed, &mut scratch);
                if q.queue.is_empty() {
                    // Demand leaves the rate problem.
                    self.engine.remove_flow(2 * s + dir);
                }
                let (dst, src) = if dir == 0 {
                    (self.conns.b[s], self.conns.a[s])
                } else {
                    (self.conns.a[s], self.conns.b[s])
                };
                for msg in scratch.drain(..) {
                    deliveries.push((dst.task, dst.key, dst.generation, src.task, msg));
                }
            }
            if self.conns.ab[s].queue.is_empty() && self.conns.ba[s].queue.is_empty() {
                // Idle is healthy: refreshing the stamp keeps the stall
                // clock from spanning idle gaps. Any armed timer is left
                // to fire and disarm itself (see the `StallCheck`
                // handler) — cancelling here and re-arming on the next
                // queued byte would cost two wheel ops per ping-pong
                // round trip, which at scale dwarfs the transfers.
                self.conns.last_progress[s] = now;
            } else if let Some(timeout) = stall {
                // Lazy watchdog: progress is a timestamp write, nothing
                // more. The timer re-arms itself on fire while progress
                // keeps happening (see the `StallCheck` handler), so the
                // abort still lands exactly at `last_progress + timeout`.
                if progressed {
                    self.conns.last_progress[s] = now;
                }
                if self.conns.stall[s].is_none() {
                    self.conns.last_progress[s] = now;
                    let cid = ConnId {
                        slot: s as u32,
                        gen: self.conns.gen[s],
                    };
                    self.conns.stall[s] =
                        Some(self.sim.schedule_at(now + timeout, Ev::StallCheck { cid }));
                }
            }
        }
        for (dst_task, dst_key, dst_gen, src_task, msg) in deliveries {
            if self.tasks[dst_task].generation != dst_gen {
                continue; // stale: the client was re-initiated
            }
            if let Message::Piece(b) = &msg {
                self.tasks[dst_task].delivered_down += b.len as u64;
                self.tasks[src_task].delivered_up += b.len as u64;
                if self.cfg.track_peer_bytes {
                    *self.tasks[dst_task].peer_bytes.entry(src_task).or_insert(0) +=
                        b.len as u64;
                }
            }
            if let Some(client) = self.tasks[dst_task].client.as_mut() {
                client.on_message(dst_key, msg, now);
                self.mark_pending(dst_task);
            }
        }
    }

    fn sweep_dead(&mut self, now: SimTime) {
        let timeout = self.cfg.dead_conn_timeout;
        // `dead_since` is always assigned the current time, so the queue
        // is time-ordered and only a front prefix can have expired. An
        // entry whose conn is already gone (both sides died before the
        // timeout) is dropped on validation.
        // `(uid, id)` so removal notifications run in creation order, as
        // the old ascending conn-id sort produced.
        let mut expired: Vec<(u64, ConnId)> = Vec::new();
        while let Some(&(t0, cid)) = self.dead_queue.front() {
            if now.saturating_since(t0) <= timeout {
                break;
            }
            self.dead_queue.pop_front();
            if let Some(s) = self.conns.check(cid) {
                if self.conns.dead_since[s] == Some(t0) {
                    expired.push((self.conns.uid[s], cid));
                }
            }
        }
        expired.sort_unstable();
        for (_, cid) in expired {
            self.remove_conn(cid, now, true);
        }
    }

    /// Removes a connection; optionally notifies surviving sides.
    fn remove_conn(&mut self, cid: ConnId, now: SimTime, notify: bool) {
        self.remove_conn_inner(cid, now, notify, false);
    }

    /// [`Self::remove_conn`] for a stall abort: clients are notified via
    /// [`Client::on_conn_stalled`], so an armed lifecycle escalates the
    /// address into backing-off instead of the legacy flat redial.
    fn remove_conn_stalled(&mut self, cid: ConnId, now: SimTime) {
        self.remove_conn_inner(cid, now, true, true);
    }

    fn remove_conn_inner(&mut self, cid: ConnId, now: SimTime, notify: bool, stalled: bool) {
        let Some(s) = self.conns.check(cid) else {
            return;
        };
        if let Some(tok) = self.conns.stall[s].take() {
            self.sim.cancel(tok);
        }
        self.engine.remove_flow(2 * s);
        self.engine.remove_flow(2 * s + 1);
        let ends = [self.conns.a[s], self.conns.b[s]];
        self.conns.free(cid);
        for end in ends {
            // Client connection keys restart at 1 after task re-initiation,
            // so `(task, key)` may have been re-bound to a *newer*
            // connection: only unindex when the entry still points at us.
            let still_ours = self.tasks[end.task]
                .conn_index
                .get(&end.key)
                .is_some_and(|&(indexed_cid, _)| indexed_cid == cid);
            if !still_ours {
                continue;
            }
            self.tasks[end.task].conn_index.remove(&end.key);
            if notify && self.tasks[end.task].generation == end.generation {
                if let Some(client) = self.tasks[end.task].client.as_mut() {
                    if stalled {
                        client.on_conn_stalled(end.key, now);
                    } else {
                        client.on_conn_closed(end.key, now);
                    }
                    self.mark_pending(end.task);
                }
            }
        }
    }

    fn client_tick(&mut self, t: TaskKey, now: SimTime) {
        // Feed the LIHD download meter from transport-delivered bytes.
        let delivered = self.tasks[t].delivered_down;
        let task = &mut self.tasks[t];
        let delta = delivered.saturating_sub(task.last_down_total);
        task.last_down_total = delivered;
        task.dl_meter.record(now, delta);
        let d_cur = task.dl_meter.rate(now);

        let Some(client) = task.client.as_mut() else {
            return;
        };
        client.on_tick(now);
        // Role reversal: keep the stored peer list fresh.
        if task.spec.wp2p.role_reversal {
            let addrs = client.connected_addrs();
            task.rr.note_peers(&addrs);
        }
        // LIHD control step.
        let mut cap_moved = false;
        if let Some(l) = task.lihd.as_mut() {
            if l.due(now) {
                let u = l.update(now, d_cur);
                cap_moved = client.upload_limit() != Some(u);
                client.set_upload_limit(Some(u));
            }
        }
        let due = now + self.cfg.client_tick;
        task.next_client_tick = due;
        self.tick_due.entry(due).or_default().push(t);
        if cap_moved {
            self.sync_upload_cap(t);
        }
        self.mark_pending(t);
    }

    /// Flags a task whose client may have enqueued actions. Every call
    /// into a client (tick, message, connection callback, tracker
    /// response) marks its task, so `pump_actions` drains exactly the
    /// tasks that can have work instead of sweeping the whole population
    /// per round — the sweep was O(tasks) per delivered message at 65k
    /// peers.
    fn mark_pending(&mut self, t: TaskKey) {
        if !self.pending_flag[t] {
            self.pending_flag[t] = true;
            self.pending_tasks.push(t);
        }
    }

    fn pump_actions(&mut self, now: SimTime) {
        while !self.pending_tasks.is_empty() {
            let mut batch = std::mem::take(&mut self.pending_tasks);
            // Deterministic drain order regardless of marking order.
            batch.sort_unstable();
            batch.dedup();
            for &t in &batch {
                self.pending_flag[t] = false;
            }
            for t in batch {
                while let Some(action) = self.tasks[t].client.as_mut().and_then(|c| c.poll_action())
                {
                    self.handle_action(t, action, now);
                }
            }
        }
        // Nothing a handled action touched may be left with queued
        // actions: every client call site must mark its task.
        #[cfg(debug_assertions)]
        for t in 0..self.tasks.len() {
            if let Some(c) = self.tasks[t].client.as_mut() {
                debug_assert!(
                    c.poll_action().is_none(),
                    "task {t} held unpumped actions: a call site forgot mark_pending"
                );
            }
        }
    }

    fn handle_action(&mut self, t: TaskKey, action: Action, now: SimTime) {
        match action {
            Action::Connect { conn, addr } => {
                let generation = self.tasks[t].generation;
                let info_hash = self.tasks[t].spec.torrent.info_hash;
                // Resolve the target now; reachability is re-checked when
                // the dial lands.
                let target = self.book.node_at(addr).and_then(|nid| {
                    let node = nid.0 as usize;
                    if !self.nodes.get(node).is_some_and(|n| n.alive) {
                        return None;
                    }
                    // `node_tasks` lists a node's tasks in creation order,
                    // so the first hit matches the old full-scan result.
                    self.node_tasks[node].iter().copied().find(|&tt| {
                        self.tasks[tt].client.is_some()
                            && self.tasks[tt].spec.torrent.info_hash == info_hash
                    })
                });
                let delay = if target.is_some() {
                    self.cfg.dial_latency
                } else {
                    self.cfg.dial_timeout
                };
                self.sim.schedule_in(
                    delay,
                    Ev::Dial {
                        task: t,
                        generation,
                        key: conn,
                        addr,
                        target,
                    },
                );
            }
            Action::Send { conn, msg } => {
                if let Some(&(cid, is_a)) = self.tasks[t].conn_index.get(&conn) {
                    if let Some(s) = self.conns.check(cid) {
                        let dir = if is_a { 0 } else { 1 };
                        let q = if is_a {
                            &mut self.conns.ab[s]
                        } else {
                            &mut self.conns.ba[s]
                        };
                        let was_empty = q.queue.is_empty();
                        q.push(msg);
                        if was_empty && self.conns.dead_since[s].is_none() {
                            // Demand appears. Black-holed endpoints
                            // keep the flow out of the solver: the
                            // queue sits at rate zero, exactly the
                            // silent-stall pathology.
                            let (src, dst) = if is_a {
                                (self.conns.a[s].task, self.conns.b[s].task)
                            } else {
                                (self.conns.b[s].task, self.conns.a[s].task)
                            };
                            if self.flow_eligible(src, dst) {
                                let d = self.build_demand(src, dst);
                                self.engine.upsert_flow(2 * s + dir, d);
                            }
                        }
                    }
                }
            }
            Action::Close { conn } => {
                if let Some(&(cid, _)) = self.tasks[t].conn_index.get(&conn) {
                    self.remove_conn(cid, now, true);
                }
            }
            Action::Announce { event } => {
                let generation = self.tasks[t].generation;
                self.sim.schedule_in(
                    self.cfg.announce_latency,
                    Ev::TrackerReply {
                        task: t,
                        generation,
                        event,
                    },
                );
            }
            Action::PieceCompleted { .. } => {}
            Action::Completed => {
                if self.tasks[t].completed_at.is_none() {
                    self.tasks[t].completed_at = Some(now);
                }
            }
        }
    }

    fn resolve_dial(
        &mut self,
        t: TaskKey,
        generation: u32,
        key: u64,
        addr: SimAddr,
        target: Option<TaskKey>,
        now: SimTime,
    ) {
        if self.tasks[t].generation != generation || self.tasks[t].client.is_none() {
            return; // caller re-initiated meanwhile
        }
        // Re-check the target's liveness and address at landing time.
        let live_target = target.filter(|&tt| {
            let node = self.tasks[tt].spec.node;
            self.nodes[node].alive
                && self.nodes[node].addr == addr
                && self.tasks[tt].client.is_some()
        });
        let Some(tt) = live_target else {
            if let Some(client) = self.tasks[t].client.as_mut() {
                client.on_conn_failed(addr, now);
                // Drained at the next pump, as the full-sweep pump did.
                self.mark_pending(t);
            }
            return;
        };
        let caller_node = self.tasks[t].spec.node;
        let caller_addr = self.nodes[caller_node].addr;
        // Register both ends.
        let a_gen = self.tasks[t].generation;
        self.tasks[t]
            .client
            .as_mut()
            .expect("caller live")
            .on_connected(key, addr, now);
        let b_key = self.tasks[tt]
            .client
            .as_mut()
            .expect("target live")
            .on_incoming(caller_addr, now);
        let b_gen = self.tasks[tt].generation;
        let cid = self.conns.insert(
            ConnEnd {
                task: t,
                key,
                generation: a_gen,
            },
            ConnEnd {
                task: tt,
                key: b_key,
                generation: b_gen,
            },
        );
        let uid = self.conns.uid[cid.slot as usize];
        self.tasks[t].conn_index.insert(key, (cid, true));
        self.tasks[tt].conn_index.insert(b_key, (cid, false));
        self.mark_pending(t);
        self.mark_pending(tt);
        self.note(
            now,
            TraceKind::Connection,
            format!("task {t} connected to task {tt} (conn {uid})"),
        );
        self.pump_actions(now);
    }

    fn tracker_reply(&mut self, t: TaskKey, generation: u32, event: AnnounceEvent, now: SimTime) {
        if self.tasks[t].generation != generation {
            return;
        }
        let node = self.tasks[t].spec.node;
        if !self.nodes[node].alive {
            return;
        }
        let addr = self.nodes[node].addr;
        let Some(client) = self.tasks[t].client.as_ref() else {
            return;
        };
        let ih = client.info_hash();
        let pid = client.peer_id();
        let seed = client.is_seed();
        let announce_policy = client.resilience().announce;
        let breaker_armed = client.resilience().breaker_threshold > 0;
        // Degradation ladder rung 1: route to the primary shard, or —
        // with replicas enabled — fail over to the swarm's deterministic
        // secondary while the primary is down.
        let routed = if self.tracker_down {
            None
        } else {
            self.tracker.route_for(ih, self.cfg.tracker_replicas)
        };
        let Some(shard) = routed else {
            // The request times out: nothing is registered and no peers
            // are learned. The retry interval follows the client's
            // announce backoff policy — capped exponential per
            // consecutive failure (the unarmed policy's first step is
            // the legacy fixed 60 s). A shard outage reads the same to
            // this swarm's peers; the rest of the tier keeps serving.
            let cause = if self.tracker_down {
                "tracker outage"
            } else {
                "tracker shard down"
            };
            self.note(
                now,
                TraceKind::Tracker,
                format!("task {t} announce {event:?} failed: {cause}"),
            );
            if event != AnnounceEvent::Stopped {
                let fails = self.tasks[t].announce_fails;
                self.tasks[t].announce_fails = fails.saturating_add(1);
                if breaker_armed {
                    // Rung 1b: the client's circuit breaker owns retry
                    // pacing — the backoff ladder up to the threshold,
                    // then cooloff-spaced probes.
                    if let Some(client) = self.tasks[t].client.as_mut() {
                        client.on_announce_failed(now);
                        self.mark_pending(t);
                    }
                } else {
                    let mut rng = self.rng.fork(9100 + t as u64 + now.as_micros());
                    let retry = AnnounceResponse {
                        interval: announce_policy.delay(fails, &mut rng),
                        min_interval: self.tasks[t].last_min_interval,
                        peers: Vec::new(),
                        complete: 0,
                        incomplete: 0,
                    };
                    if let Some(client) = self.tasks[t].client.as_mut() {
                        client.on_tracker_response(&retry, now);
                        self.mark_pending(t);
                    }
                }
            }
            return;
        };
        self.tasks[t].announce_fails = 0;
        let mut rng = self.rng.fork(9000 + t as u64 + now.as_micros());
        let req = AnnounceRequest {
            info_hash: ih,
            peer_id: pid,
            addr,
            event,
            is_seed: seed,
        };
        let resp = self.tracker.announce_on(shard, &req, now, &mut rng);
        // Remember the served floor (possibly shed-scaled) for outage
        // retries.
        self.tasks[t].last_min_interval = resp.min_interval;
        self.note(
            now,
            TraceKind::Tracker,
            format!(
                "task {t} announce {event:?}: {} peers, {} seeds",
                resp.peers.len(),
                resp.complete
            ),
        );
        if event != AnnounceEvent::Stopped {
            if let Some(client) = self.tasks[t].client.as_mut() {
                client.on_tracker_response(&resp, now);
                self.mark_pending(t);
            }
            self.pump_actions(now);
        }
    }

    fn handoff_start(&mut self, node: NodeKey, now: SimTime) {
        if !self.nodes[node].alive {
            return;
        }
        self.note(
            now,
            TraceKind::Mobility,
            format!("node {node} hand-off: down"),
        );
        self.m_handoffs.inc();
        self.handoff_down_since.insert(node, now);
        // Every engine flow touching this node belongs to a connection
        // of one of its tasks; `kill_client` below removes them all.
        self.nodes[node].alive = false;
        let tasks: Vec<TaskKey> = self
            .node_tasks[node]
            .iter()
            .copied()
            .filter(|&t| self.tasks[t].started)
            .collect();
        for t in tasks {
            self.kill_client(t, now);
        }
    }

    fn handoff_end(&mut self, node: NodeKey, now: SimTime) {
        let addr = self.book.reassign(simnet::addr::NodeId(node as u32));
        self.note(
            now,
            TraceKind::Mobility,
            format!("node {node} back at {addr}"),
        );
        if let Some(down_at) = self.handoff_down_since.remove(&node) {
            self.m_handoff_latency
                .record(now.saturating_since(down_at).as_secs_f64());
        }
        self.nodes[node].addr = addr;
        self.nodes[node].alive = true;
        let tasks: Vec<TaskKey> = self
            .node_tasks[node]
            .iter()
            .copied()
            .filter(|&t| self.tasks[t].started)
            .collect();
        for t in tasks {
            // A fault-injected restart may have revived the client before
            // this scheduled hand-off end: re-initiate cleanly rather
            // than leaking the old client's connection index entries.
            if self.tasks[t].client.is_some() {
                self.kill_client(t, now);
            }
            self.spawn_client(t, now);
        }
        self.pump_actions(now);
    }

    fn node_resources(&self, node: NodeKey) -> (usize, usize) {
        match self.nodes[node].access {
            Access::Wired { .. } => (2 * node, 2 * node + 1),
            Access::Wireless { .. } => (2 * node, 2 * node),
        }
    }

    fn recompute_rates(&mut self) {
        // The allocation is a pure function of (topology, queue
        // emptiness, liveness, caps). All of those are pushed into the
        // engine at their mutation sites, so a tick either skips (clean)
        // or re-fills only the components the changes can reach.
        if self.engine.solve() {
            self.rate_solves += 1;
        } else {
            self.rate_skips += 1;
        }
    }

    /// Pushes a node's current access capacities into the solver. An
    /// external per-node upload cap (the cross-swarm seed budget)
    /// tightens the up/channel resource: every task the node hosts —
    /// in whatever swarm — shares the tightened pipe.
    fn sync_node_capacity(&mut self, node: NodeKey) {
        let up_cap = |up: f64| match self.node_upload_cap.get(&node) {
            Some(&cap) => up.min(cap.max(1.0)),
            None => up,
        };
        match self.nodes[node].access {
            Access::Wired { up, down } => {
                self.engine.set_capacity(2 * node, up_cap(up));
                self.engine.set_capacity(2 * node + 1, down);
            }
            Access::Wireless { capacity } => {
                self.engine.set_capacity(2 * node, up_cap(capacity));
                self.engine.set_capacity(2 * node + 1, 0.0);
            }
        }
    }

    /// Sets (or clears) a node's upload cap: one budget shared by every
    /// task the node hosts across all its swarms, enforced through the
    /// node's uplink resource in the max-min problem — the fluid
    /// equivalent of a single upload token bucket spanning the node's
    /// swarm memberships. Callable before or during a run.
    pub fn set_node_upload_cap(&mut self, node: NodeKey, cap: Option<f64>) {
        match cap {
            Some(c) => {
                self.node_upload_cap.insert(node, c);
            }
            None => {
                self.node_upload_cap.remove(&node);
            }
        }
        if self.started {
            self.sync_node_capacity(node);
        }
    }

    /// Reconciles a task's upload cap with the solver. A task with an
    /// application-level upload cap gets a pseudo-resource of that
    /// capacity: all its outgoing flows share it, so capping uploads
    /// genuinely releases channel capacity to other flows (how LIHD buys
    /// downloads back on a shared channel). Cap *value* moves are a
    /// capacity write; capped-ness flips re-register the task's present
    /// outgoing flows with the new resource set.
    fn sync_upload_cap(&mut self, t: TaskKey) {
        let limit = self.tasks[t].client.as_ref().and_then(|c| c.upload_limit());
        match limit {
            Some(l) => {
                self.engine.set_capacity(self.cap_base + t, l.max(1.0));
                if !self.task_capped[t] {
                    self.task_capped[t] = true;
                    self.reupsert_outgoing_flows(t);
                }
            }
            None => {
                if self.task_capped[t] {
                    self.task_capped[t] = false;
                    self.reupsert_outgoing_flows(t);
                }
            }
        }
    }

    /// Re-registers every present outgoing flow of a task after its
    /// demand shape changed (cap resource appeared or lapsed).
    fn reupsert_outgoing_flows(&mut self, t: TaskKey) {
        let mut conns: Vec<(ConnId, bool)> = self.tasks[t].conn_index.values().copied().collect();
        conns.sort_unstable();
        for (cid, is_a) in conns {
            let Some(s) = self.conns.check(cid) else {
                continue;
            };
            let fslot = 2 * s + usize::from(!is_a);
            if !self.engine.has_flow(fslot) {
                continue;
            }
            let (src, dst) = if is_a {
                (self.conns.a[s].task, self.conns.b[s].task)
            } else {
                (self.conns.b[s].task, self.conns.a[s].task)
            };
            let d = self.build_demand(src, dst);
            self.engine.upsert_flow(fslot, d);
        }
    }

    /// The resource set a `src → dst` flow consumes right now.
    fn build_demand(&self, src_task: TaskKey, dst_task: TaskKey) -> FlowDemand {
        let na = self.tasks[src_task].spec.node;
        let nb = self.tasks[dst_task].spec.node;
        let mut d = FlowDemand::new(self.node_resources(na).0, self.node_resources(nb).1);
        if self.task_capped[src_task] {
            d = d.with_cap(self.cap_base + src_task);
        }
        d
    }

    /// Whether a flow between these tasks belongs in the rate problem
    /// (both nodes up, neither black-holed). Dead connections and empty
    /// queues are checked at the call sites.
    fn flow_eligible(&self, src_task: TaskKey, dst_task: TaskKey) -> bool {
        let na = self.tasks[src_task].spec.node;
        let nb = self.tasks[dst_task].spec.node;
        self.nodes[na].alive
            && self.nodes[nb].alive
            && !self.blackholed.contains(&na)
            && !self.blackholed.contains(&nb)
    }

    /// Every connection with an endpoint task on `node`, deduplicated
    /// (sorted by id). Dead connections are included; their engine flows
    /// are already gone, so fault hooks can treat them uniformly.
    fn conns_touching(&self, node: NodeKey) -> Vec<ConnId> {
        let mut out = Vec::new();
        for &t in &self.node_tasks[node] {
            for &(cid, _) in self.tasks[t].conn_index.values() {
                out.push(cid);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    // ------------------------------------------------------------------
    // Introspection (invariant checking, fault harnesses)
    // ------------------------------------------------------------------

    /// Number of tasks in the world.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of nodes in the world.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node hosting a task.
    pub fn task_node(&self, t: TaskKey) -> NodeKey {
        self.tasks[t].spec.node
    }

    /// A task's re-initiation generation (bumps on every hand-off,
    /// crash, or churn).
    pub fn task_generation(&self, t: TaskKey) -> u32 {
        self.tasks[t].generation
    }

    /// The task's current peer identity, once spawned.
    pub fn task_identity(&self, t: TaskKey) -> Option<PeerId> {
        self.tasks[t].identity
    }

    /// True when the task runs wP2P identity retention.
    pub fn task_retains_identity(&self, t: TaskKey) -> bool {
        // Effective retention: a strategy that churns its identity on
        // purpose (the exploit probe's BitTyrant::churning) opts out of
        // the retained-peer-id contract even when the wP2P knob is on,
        // so the identity-stability invariant must not bind it. Between
        // teardown and re-initiation there is no live client; a freshly
        // built config answers for it (churn intent is set at strategy
        // construction).
        let task = &self.tasks[t];
        task.spec.wp2p.identity_retention
            && match &task.client {
                Some(c) => !c.churns_identity(),
                None => !(task.spec.make_config)().strategy.churn_identity(),
            }
    }

    /// Whether a node currently has connectivity.
    pub fn node_alive(&self, node: NodeKey) -> bool {
        self.nodes[node].alive
    }

    /// True while a fault-injected tracker outage is active.
    pub fn tracker_is_down(&self) -> bool {
        self.tracker_down
    }

    /// Number of tracker shards in the world's tier.
    pub fn tracker_shard_count(&self) -> usize {
        self.tracker.shard_count()
    }

    /// Announces served by one tracker shard so far (the per-shard load
    /// series sample).
    pub fn tracker_shard_announces(&self, shard: usize) -> u64 {
        self.tracker.shard_announces(shard)
    }

    /// The shard serving a task's swarm.
    pub fn tracker_shard_of(&self, t: TaskKey) -> usize {
        self.tracker.shard_for(self.tasks[t].spec.torrent.info_hash)
    }

    /// Marks one tracker shard up or down (a partial-service fault:
    /// announces for the swarms it owns are dropped; other shards keep
    /// serving).
    pub fn set_tracker_shard_down(&mut self, shard: usize, down: bool) {
        self.tracker.set_shard_down(shard, down);
        let what = if down { "down" } else { "back" };
        self.fault_note(self.sim.now(), format!("fault: tracker shard {shard} {what}"));
    }

    /// Whether a specific tracker shard is down.
    pub fn tracker_shard_is_down(&self, shard: usize) -> bool {
        self.tracker.shard_is_down(shard)
    }

    /// Shed (scaled-pacing) responses served by one tracker shard — the
    /// overload-shedding telemetry.
    pub fn tracker_shard_sheds(&self, shard: usize) -> u64 {
        self.tracker.shard_sheds(shard)
    }

    /// Cumulative PEX/breaker counters for a task, across every
    /// re-initiation: `(pex_sent, pex_received, pex_addrs_learned,
    /// breaker_trips)`.
    pub fn task_pex_stats(&self, t: TaskKey) -> (u64, u64, u64, u64) {
        let acc = &self.tasks[t].acc;
        let mut out = (
            acc.pex_sent,
            acc.pex_received,
            acc.pex_addrs_learned,
            acc.breaker_trips,
        );
        if let Some(c) = &self.tasks[t].client {
            let st = c.stats();
            out.0 += st.pex_sent;
            out.1 += st.pex_received;
            out.2 += st.pex_addrs_learned;
            out.3 += st.breaker_trips;
        }
        out
    }

    /// The info-hash of the swarm a task belongs to.
    pub fn task_info_hash(&self, t: TaskKey) -> bittorrent::metainfo::InfoHash {
        self.tasks[t].spec.torrent.info_hash
    }

    /// Piece payload bytes this task received from each sending task,
    /// sorted by sender. Empty unless [`FlowConfig::track_peer_bytes`]
    /// was set — the input of the clustering analysis.
    pub fn peer_download_bytes(&self, t: TaskKey) -> Vec<(TaskKey, u64)> {
        let mut v: Vec<(TaskKey, u64)> =
            self.tasks[t].peer_bytes.iter().map(|(&k, &b)| (k, b)).collect();
        v.sort_unstable();
        v
    }

    /// Invariant passes run by the built-in debug-build checker.
    pub fn invariant_checks(&self) -> u64 {
        self.checker.checks()
    }

    /// Verifies the current rate allocation against every capacity it
    /// crosses: node access pipes (shared for wireless), and
    /// application-level upload caps. Returns the first violation.
    ///
    /// While the rate problem is dirty (inputs changed since the last
    /// solve), the stale allocation is not required to fit the new caps
    /// and the check passes vacuously; it re-arms at the next tick.
    pub fn rates_feasible(&self) -> Result<(), String> {
        if self.engine.is_dirty() {
            return Ok(());
        }
        let mut usage = vec![0.0f64; self.nodes.len() * 2];
        let mut task_up = vec![0.0f64; self.tasks.len()];
        for s in 0..self.conns.slot_count() {
            if !self.conns.live[s] || self.conns.dead_since[s].is_some() {
                continue;
            }
            let (a, b) = (self.conns.a[s], self.conns.b[s]);
            for (dir, src, dst) in [(0usize, a, b), (1, b, a)] {
                let rate = self.engine.rate(2 * s + dir);
                if !(rate.is_finite() && rate >= 0.0) {
                    return Err(format!("conn slot {s} dir {dir}: invalid rate {rate}"));
                }
                if rate <= 0.0 {
                    continue;
                }
                let up_res = self.node_resources(self.tasks[src.task].spec.node).0;
                let down_res = self.node_resources(self.tasks[dst.task].spec.node).1;
                usage[up_res] += rate;
                usage[down_res] += rate;
                task_up[src.task] += rate;
            }
        }
        let fits = |used: f64, cap: f64| used <= cap * (1.0 + 1e-6) + 1e-6;
        for (i, n) in self.nodes.iter().enumerate() {
            let (mut up_cap, down_cap) = match n.access {
                Access::Wired { up, down } => (up, down),
                // Shared channel: both directions land on resource 2i.
                Access::Wireless { capacity } => (capacity, f64::INFINITY),
            };
            // An external node upload cap tightens the uplink/channel.
            if let Some(&cap) = self.node_upload_cap.get(&i) {
                up_cap = up_cap.min(cap.max(1.0));
            }
            if !fits(usage[2 * i], up_cap) {
                return Err(format!(
                    "node {i}: uplink/channel used {:.1} of {:.1} B/s",
                    usage[2 * i],
                    up_cap
                ));
            }
            if !fits(usage[2 * i + 1], down_cap) {
                return Err(format!(
                    "node {i}: downlink used {:.1} of {:.1} B/s",
                    usage[2 * i + 1],
                    down_cap
                ));
            }
        }
        for (t, task) in self.tasks.iter().enumerate() {
            if let Some(limit) = task.client.as_ref().and_then(|c| c.upload_limit()) {
                if !fits(task_up[t], limit.max(1.0)) {
                    return Err(format!(
                        "task {t}: uploads {:.1} exceed cap {:.1} B/s",
                        task_up[t], limit
                    ));
                }
            }
        }
        Ok(())
    }

    /// Recomputes a node's effective access from its pre-fault baseline
    /// and the active loss/squeeze factors.
    fn apply_access_faults(&mut self, node: NodeKey) {
        let base = *self
            .access_baseline
            .entry(node)
            .or_insert(self.nodes[node].access);
        let f = self.lossy_factor.get(&node).copied().unwrap_or(1.0)
            * self.squeeze_factor.get(&node).copied().unwrap_or(1.0);
        self.nodes[node].access = match base {
            Access::Wired { up, down } => Access::Wired {
                up: (up * f).max(1.0),
                down: (down * f).max(1.0),
            },
            Access::Wireless { capacity } => Access::Wireless {
                capacity: (capacity * f).max(1.0),
            },
        };
        if self.started {
            self.sync_node_capacity(node);
        }
    }

    // ------------------------------------------------------------------
    // Snapshot / restore
    // ------------------------------------------------------------------

    /// Serializes the complete world state to a versioned blob.
    ///
    /// The blob captures the simulator (clock, event queue, scheduler
    /// tokens), tracker, address book, nodes, every task (including the
    /// live client session), the connection arena, the rate engine's
    /// allocation state, all RNG streams, fault state, the invariant
    /// checker's observation history, and — when metrics are enabled —
    /// every registry instrument by name.
    ///
    /// Deliberately excluded: `FlowConfig` and the task specs (the
    /// `make_config` closures and picker choices are code, not state) —
    /// [`FlowWorld::restore`] therefore requires a world rebuilt by the
    /// *same* builder calls (`new` → `set_metrics` → `add_node` /
    /// `add_task` / `set_mobility` → `start`) as the saved one.
    ///
    /// Guarantee: restoring this blob into such a world and running to
    /// any later time T produces byte-identical state (a later `save`)
    /// to running the original world straight through to T.
    pub fn save(&self) -> Vec<u8> {
        assert!(self.started, "save() requires a started world");
        let mut w = SnapWriter::new(FLOW_WORLD_TAG);
        w.section("flow_world");
        self.sim.snap(&mut w);
        self.tracker.snap(&mut w);
        self.book.snap(&mut w);
        self.nodes.snap(&mut w);
        w.section("tasks");
        w.put_usize(self.tasks.len());
        for task in &self.tasks {
            task.save(&mut w);
        }
        w.section("conns");
        self.conns.snap(&mut w);
        self.node_tasks.snap(&mut w);
        self.dead_queue.snap(&mut w);
        self.tick_due.snap(&mut w);
        self.rng.snap(&mut w);
        self.last_advance.snap(&mut w);
        self.next_metrics.snap(&mut w);
        self.trace.snap(&mut w);
        self.handoff_down_since.snap(&mut w);
        self.engine.save_state(&mut w);
        w.put_usize(self.cap_base);
        self.task_capped.snap(&mut w);
        self.pending_tasks.snap(&mut w);
        self.pending_flag.snap(&mut w);
        w.put_u64(self.rate_solves);
        w.put_u64(self.rate_skips);
        w.put_u64(self.stall_aborts);
        w.put_bool(self.tracker_down);
        self.blackholed.snap(&mut w);
        self.access_baseline.snap(&mut w);
        self.node_upload_cap.snap(&mut w);
        self.lossy_factor.snap(&mut w);
        self.squeeze_factor.snap(&mut w);
        self.checker.snap(&mut w);
        self.metrics.snap_state(&mut w);
        w.into_bytes()
    }

    /// Restores state captured by [`FlowWorld::save`] into this world.
    ///
    /// `self` must be a started world built by the same builder calls as
    /// the saved one (same nodes, tasks, config, and metrics
    /// enablement); everything mutable is replaced wholesale. Clients
    /// are rebuilt from their task's `make_config` and then overlaid
    /// with their serialized session state, so restored worlds keep
    /// working pickers and metrics instruments.
    ///
    /// # Panics
    ///
    /// Panics if the blob is malformed, from a different world kind, or
    /// shaped for a differently-built world (task/node count mismatch).
    pub fn restore(&mut self, blob: &[u8]) {
        assert!(self.started, "restore() requires a started world");
        let mut r = SnapReader::new(blob, FLOW_WORLD_TAG);
        r.section("flow_world");
        self.sim = Snap::unsnap(&mut r);
        self.tracker = Snap::unsnap(&mut r);
        self.book = Snap::unsnap(&mut r);
        self.nodes = Snap::unsnap(&mut r);
        r.section("tasks");
        let n = r.get_usize();
        assert_eq!(n, self.tasks.len(), "snapshot task count mismatch");
        let metrics = self.metrics.clone();
        for t in 0..n {
            let addr = self.nodes[self.tasks[t].spec.node].addr;
            self.tasks[t].restore(t, addr, &metrics, &mut r);
        }
        r.section("conns");
        self.conns = Snap::unsnap(&mut r);
        self.node_tasks = Snap::unsnap(&mut r);
        self.dead_queue = Snap::unsnap(&mut r);
        self.tick_due = Snap::unsnap(&mut r);
        self.rng = Snap::unsnap(&mut r);
        self.last_advance = Snap::unsnap(&mut r);
        self.next_metrics = Snap::unsnap(&mut r);
        self.trace = Snap::unsnap(&mut r);
        self.handoff_down_since = Snap::unsnap(&mut r);
        self.engine.restore_state(&mut r);
        let cap_base = r.get_usize();
        assert_eq!(cap_base, self.cap_base, "snapshot node-layout mismatch");
        self.task_capped = Snap::unsnap(&mut r);
        self.pending_tasks = Snap::unsnap(&mut r);
        self.pending_flag = Snap::unsnap(&mut r);
        self.rate_solves = r.get_u64();
        self.rate_skips = r.get_u64();
        self.stall_aborts = r.get_u64();
        self.tracker_down = r.get_bool();
        self.blackholed = Snap::unsnap(&mut r);
        self.access_baseline = Snap::unsnap(&mut r);
        self.node_upload_cap = Snap::unsnap(&mut r);
        self.lossy_factor = Snap::unsnap(&mut r);
        self.squeeze_factor = Snap::unsnap(&mut r);
        self.checker = Snap::unsnap(&mut r);
        self.metrics.restore_state(&mut r);
        assert!(r.is_exhausted(), "snapshot has trailing bytes");
    }
}

/// World-kind tag of flow-world snapshot blobs.
pub const FLOW_WORLD_TAG: u32 = 1;

/// Fault injection into the fluid model.
///
/// Approximations where the model has no literal equivalent:
///
/// * **Loss bursts** become a capacity derate of `(1 − ber)^12000` (the
///   packet-error rate of a 1500-byte frame): in a fluid world the
///   goodput loss *is* the fault's observable effect.
/// * **Black-holes** pin every flow through the node to rate zero while
///   leaving connections nominally up — peers see a silent stall, the
///   paper's mobile-host pathology.
/// * **Address churn** is a hand-off with an empty outage window.
/// * **Crash/restart** re-uses the hand-off teardown (connections decay
///   as black holes, progress persists) but keeps the node's address.
impl FaultHooks for FlowWorld {
    fn fault_now(&self) -> SimTime {
        self.now()
    }

    fn begin_loss_burst(&mut self, node: NodeId, ber: f64) {
        let n = node.0 as usize;
        if n >= self.nodes.len() {
            return;
        }
        let factor = (1.0 - ber).powi(12_000).clamp(0.01, 1.0);
        self.lossy_factor.insert(n, factor);
        self.apply_access_faults(n);
        self.fault_note(
            self.sim.now(),
            format!("fault: node {n} loss burst (capacity x{factor:.3})"),
        );
    }

    fn end_loss_burst(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if self.lossy_factor.remove(&n).is_some() {
            self.apply_access_faults(n);
            self.fault_note(self.sim.now(), format!("fault: node {n} loss burst over"));
        }
    }

    fn begin_blackhole(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if n >= self.nodes.len() {
            return;
        }
        if self.blackholed.insert(n) {
            // A black-holed node's flows stall at rate zero: the link
            // looks up, nothing moves. Pull its flows out of the rate
            // problem (the conns stay in the active set so the stall
            // watchdog still arms).
            for cid in self.conns_touching(n) {
                if let Some(s) = self.conns.check(cid) {
                    self.engine.remove_flow(2 * s);
                    self.engine.remove_flow(2 * s + 1);
                }
            }
            self.fault_note(self.sim.now(), format!("fault: node {n} black-holed"));
        }
    }

    fn end_blackhole(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if self.blackholed.remove(&n) {
            // Re-admit every eligible, still-pending flow through the node.
            for cid in self.conns_touching(n) {
                let Some(s) = self.conns.check(cid) else {
                    continue;
                };
                if self.conns.dead_since[s].is_some() {
                    continue;
                }
                let (a, b) = (self.conns.a[s], self.conns.b[s]);
                for (dir, src, dst) in [(0usize, a, b), (1, b, a)] {
                    let nonempty = if dir == 0 {
                        !self.conns.ab[s].queue.is_empty()
                    } else {
                        !self.conns.ba[s].queue.is_empty()
                    };
                    if nonempty && self.flow_eligible(src.task, dst.task) {
                        let d = self.build_demand(src.task, dst.task);
                        self.engine.upsert_flow(2 * s + dir, d);
                    }
                }
            }
            self.fault_note(self.sim.now(), format!("fault: node {n} black-hole over"));
        }
    }

    fn churn_address(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if n >= self.nodes.len() {
            return;
        }
        let now = self.sim.now();
        self.fault_note(now, format!("fault: node {n} address churn"));
        if self.nodes[n].alive {
            self.handoff_start(n, now);
        }
        self.handoff_end(n, now);
    }

    fn begin_tracker_outage(&mut self) {
        self.tracker_down = true;
        self.fault_note(self.sim.now(), "fault: tracker outage".to_string());
    }

    fn end_tracker_outage(&mut self) {
        self.tracker_down = false;
        self.fault_note(self.sim.now(), "fault: tracker back".to_string());
    }

    fn begin_bandwidth_squeeze(&mut self, node: NodeId, factor: f64) {
        let n = node.0 as usize;
        if n >= self.nodes.len() {
            return;
        }
        self.squeeze_factor.insert(n, factor.clamp(0.001, 1.0));
        self.apply_access_faults(n);
        self.fault_note(
            self.sim.now(),
            format!("fault: node {n} bandwidth squeeze x{factor:.3}"),
        );
    }

    fn end_bandwidth_squeeze(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if self.squeeze_factor.remove(&n).is_some() {
            self.apply_access_faults(n);
            self.fault_note(self.sim.now(), format!("fault: node {n} squeeze over"));
        }
    }

    fn crash_peer(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if n >= self.nodes.len() || !self.nodes[n].alive {
            return;
        }
        let now = self.sim.now();
        self.fault_note(now, format!("fault: node {n} crashed"));
        self.nodes[n].alive = false;
        let tasks: Vec<TaskKey> = self.node_tasks[n]
            .iter()
            .copied()
            .filter(|&t| self.tasks[t].started)
            .collect();
        for t in tasks {
            self.kill_client(t, now);
        }
    }

    fn restart_peer(&mut self, node: NodeId) {
        let n = node.0 as usize;
        if n >= self.nodes.len() || self.nodes[n].alive {
            return;
        }
        let now = self.sim.now();
        self.fault_note(now, format!("fault: node {n} restarted"));
        self.nodes[n].alive = true;
        let tasks: Vec<TaskKey> = self.node_tasks[n]
            .iter()
            .copied()
            .filter(|&t| self.tasks[t].started)
            .collect();
        for t in tasks {
            if self.tasks[t].client.is_some() {
                self.kill_client(t, now);
            }
            self.spawn_client(t, now);
        }
        self.pump_actions(now);
    }
}

// ----------------------------------------------------------------------
// Snapshot plumbing: Snap impls for the world's private value types, and
// the task-state overlay (a `TaskSpec` holds a `make_config` closure, so
// tasks restore onto the spec the rebuilt world already carries).
// ----------------------------------------------------------------------

use simnet::snapshot::{snap_hash_map, unsnap_hash_map, Snap, SnapReader, SnapWriter};

impl TaskState {
    fn save(&self, w: &mut SnapWriter) {
        w.put_bool(self.client.is_some());
        if let Some(c) = &self.client {
            c.save_state(w);
        }
        self.saved_progress.snap(w);
        self.identity.snap(w);
        self.rr.snap(w);
        self.lihd.snap(w);
        self.dl_meter.snap(w);
        w.put_u64(self.last_down_total);
        self.acc.snap(w);
        w.put_u64(self.delivered_down);
        w.put_u64(self.delivered_up);
        self.series_down.snap(w);
        self.series_up.snap(w);
        self.next_client_tick.snap(w);
        w.put_u32(self.generation);
        w.put_bool(self.started);
        self.completed_at.snap(w);
        w.put_u32(self.announce_fails);
        self.last_min_interval.snap(w);
        self.saved_addrs.snap(w);
        snap_hash_map(&self.conn_index, w);
        snap_hash_map(&self.peer_bytes, w);
        self.rng.snap(w);
    }

    /// Overlays serialized task state onto this (builder-rebuilt) task.
    /// A present client is reconstructed from the task's own
    /// `make_config` — placeholder identity, progress, and rng are
    /// immediately replaced by `Client::restore_state` — and re-wired
    /// into the metrics registry, as are the LIHD controller's
    /// instruments.
    fn restore(&mut self, t: TaskKey, addr: SimAddr, metrics: &MetricsHandle, r: &mut SnapReader<'_>) {
        self.client = if r.get_bool() {
            let mut config = (self.spec.make_config)();
            if let Some(schedule) = self.spec.wp2p.mobility_fetching {
                config.picker = Box::new(MobilityAwarePicker::new(schedule));
            }
            if self.spec.wp2p.role_reversal {
                config.dial_while_seeding = true;
            }
            let mut seed_rng = SimRng::new(0);
            let peer_id = PeerId::generate(PeerIdStyle::Random, addr, &mut seed_rng);
            let mut client = Client::with_progress(
                config,
                self.spec.torrent.info_hash,
                peer_id,
                self.spec.torrent.fresh_progress(),
                addr,
                seed_rng,
            );
            client.restore_state(r);
            if metrics.is_enabled() {
                client.attach_metrics(metrics, &format!("task{t}"));
            }
            Some(client)
        } else {
            None
        };
        self.saved_progress = Snap::unsnap(r);
        self.identity = Snap::unsnap(r);
        self.rr = Snap::unsnap(r);
        self.lihd = Snap::unsnap(r);
        if metrics.is_enabled() {
            if let Some(l) = self.lihd.as_mut() {
                l.attach_metrics(metrics, &format!("task{t}"));
            }
        }
        self.dl_meter = Snap::unsnap(r);
        self.last_down_total = r.get_u64();
        self.acc = Snap::unsnap(r);
        self.delivered_down = r.get_u64();
        self.delivered_up = r.get_u64();
        self.series_down = Snap::unsnap(r);
        self.series_up = Snap::unsnap(r);
        self.next_client_tick = Snap::unsnap(r);
        self.generation = r.get_u32();
        self.started = r.get_bool();
        self.completed_at = Snap::unsnap(r);
        self.announce_fails = r.get_u32();
        self.last_min_interval = Snap::unsnap(r);
        self.saved_addrs = Snap::unsnap(r);
        self.conn_index = unsnap_hash_map(r);
        self.peer_bytes = unsnap_hash_map(r);
        self.rng = Snap::unsnap(r);
    }
}

impl Snap for Access {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            Access::Wired { up, down } => {
                w.put_u8(0);
                w.put_f64(up);
                w.put_f64(down);
            }
            Access::Wireless { capacity } => {
                w.put_u8(1);
                w.put_f64(capacity);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        match r.get_u8() {
            0 => Access::Wired {
                up: r.get_f64(),
                down: r.get_f64(),
            },
            1 => Access::Wireless {
                capacity: r.get_f64(),
            },
            t => panic!("snapshot: unknown Access tag {t}"),
        }
    }
}

impl Snap for Node {
    fn snap(&self, w: &mut SnapWriter) {
        self.access.snap(w);
        self.addr.snap(w);
        w.put_bool(self.alive);
        self.mobility.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        Node {
            access: Snap::unsnap(r),
            addr: Snap::unsnap(r),
            alive: r.get_bool(),
            mobility: Snap::unsnap(r),
        }
    }
}

impl Snap for ConnId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.slot);
        w.put_u32(self.gen);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        ConnId {
            slot: r.get_u32(),
            gen: r.get_u32(),
        }
    }
}

impl Snap for ConnEnd {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.task);
        w.put_u64(self.key);
        w.put_u32(self.generation);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        ConnEnd {
            task: r.get_usize(),
            key: r.get_u64(),
            generation: r.get_u32(),
        }
    }
}

impl Snap for FlowQ {
    fn snap(&self, w: &mut SnapWriter) {
        self.queue.snap(w);
        w.put_f64(self.head_remaining);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        FlowQ {
            queue: Snap::unsnap(r),
            head_remaining: r.get_f64(),
        }
    }
}

impl Snap for ConnArena {
    fn snap(&self, w: &mut SnapWriter) {
        self.gen.snap(w);
        self.live.snap(w);
        self.uid.snap(w);
        self.a.snap(w);
        self.b.snap(w);
        self.ab.snap(w);
        self.ba.snap(w);
        self.dead_since.snap(w);
        self.stall.snap(w);
        self.last_progress.snap(w);
        self.free.snap(w);
        w.put_u64(self.next_uid);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        ConnArena {
            gen: Snap::unsnap(r),
            live: Snap::unsnap(r),
            uid: Snap::unsnap(r),
            a: Snap::unsnap(r),
            b: Snap::unsnap(r),
            ab: Snap::unsnap(r),
            ba: Snap::unsnap(r),
            dead_since: Snap::unsnap(r),
            stall: Snap::unsnap(r),
            last_progress: Snap::unsnap(r),
            free: Snap::unsnap(r),
            next_uid: r.get_u64(),
        }
    }
}

impl Snap for Ev {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Ev::Tick => w.put_u8(0),
            Ev::Dial {
                task,
                generation,
                key,
                addr,
                target,
            } => {
                w.put_u8(1);
                w.put_usize(*task);
                w.put_u32(*generation);
                w.put_u64(*key);
                addr.snap(w);
                target.snap(w);
            }
            Ev::TrackerReply {
                task,
                generation,
                event,
            } => {
                w.put_u8(2);
                w.put_usize(*task);
                w.put_u32(*generation);
                event.snap(w);
            }
            Ev::HandoffStart { node, ends } => {
                w.put_u8(3);
                w.put_usize(*node);
                ends.snap(w);
            }
            Ev::HandoffEnd { node } => {
                w.put_u8(4);
                w.put_usize(*node);
            }
            Ev::StallCheck { cid } => {
                w.put_u8(5);
                cid.snap(w);
            }
            Ev::TaskStart { task } => {
                w.put_u8(6);
                w.put_usize(*task);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        match r.get_u8() {
            0 => Ev::Tick,
            1 => Ev::Dial {
                task: r.get_usize(),
                generation: r.get_u32(),
                key: r.get_u64(),
                addr: Snap::unsnap(r),
                target: Snap::unsnap(r),
            },
            2 => Ev::TrackerReply {
                task: r.get_usize(),
                generation: r.get_u32(),
                event: Snap::unsnap(r),
            },
            3 => Ev::HandoffStart {
                node: r.get_usize(),
                ends: Snap::unsnap(r),
            },
            4 => Ev::HandoffEnd {
                node: r.get_usize(),
            },
            5 => Ev::StallCheck { cid: Snap::unsnap(r) },
            6 => Ev::TaskStart { task: r.get_usize() },
            t => panic!("snapshot: unknown flow event tag {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bittorrent::wire::{BlockRef, Message};

    fn piece_msg(len: u32) -> Message {
        Message::Piece(BlockRef {
            piece: 0,
            offset: 0,
            len,
        })
    }

    #[test]
    fn flowq_advances_across_message_boundaries() {
        let mut q = FlowQ::new();
        q.push(piece_msg(100)); // wire 113
        q.push(piece_msg(50)); // wire 63
        let mut out = Vec::new();
        // Not enough for the first message.
        q.advance(100.0, &mut out);
        assert!(out.is_empty());
        // Finishes the first and eats into the second.
        q.advance(50.0, &mut out);
        assert_eq!(out.len(), 1);
        // Finishes the second.
        q.advance(63.0, &mut out);
        assert_eq!(out.len(), 2);
        assert!(q.queue.is_empty());
    }

    #[test]
    fn flowq_budget_does_not_bank_when_idle() {
        let mut q = FlowQ::new();
        let mut out = Vec::new();
        q.advance(1e9, &mut out); // nothing queued: budget evaporates
        q.push(piece_msg(1000));
        q.advance(1.0, &mut out);
        assert!(out.is_empty(), "idle budget must not carry over");
    }

    #[test]
    fn flowq_head_remaining_tracks_first_message() {
        let mut q = FlowQ::new();
        q.push(piece_msg(100));
        assert_eq!(q.head_remaining, 113.0);
        let mut out = Vec::new();
        q.advance(13.0, &mut out);
        assert_eq!(q.head_remaining, 100.0);
    }

    #[test]
    fn clean_ticks_skip_the_solve() {
        // An empty world is dirty exactly once (initial state); every
        // later tick must take the skip path.
        let mut w = FlowWorld::new(FlowConfig::default(), 7);
        w.start();
        w.run_until(SimTime::from_secs(10), |_| {});
        assert_eq!(w.rate_solves(), 1, "only the first tick solves");
        assert!(w.rate_skips() >= 30, "skips={}", w.rate_skips());
    }

    #[test]
    fn transfer_completes_and_quiet_ticks_skip() {
        let meta = Metainfo::synthetic("skip.bin", "tr", 64 * 1024, 1024 * 1024, 1);
        let torrent = TorrentSpec::from_metainfo(&meta, 64 * 1024);
        let mut w = FlowWorld::new(FlowConfig::default(), 42);
        let seed_node = w.add_node(Access::campus());
        let leech_node = w.add_node(Access::residential());
        w.add_task(TaskSpec::default_client(seed_node, torrent, true));
        let leech = w.add_task(TaskSpec::default_client(leech_node, torrent, false));
        w.start();
        w.run_until(SimTime::from_secs(240), |_| {});
        assert_eq!(w.progress_fraction(leech), 1.0);
        assert!(w.rate_solves() > 0);
        // After completion the swarm idles: a long tail of clean ticks.
        assert!(
            w.rate_skips() > w.rate_solves(),
            "solves={} skips={}",
            w.rate_solves(),
            w.rate_skips()
        );
    }

    #[test]
    fn stall_watchdog_aborts_stalled_transfers_only() {
        let meta = Metainfo::synthetic("stall.bin", "tr", 64 * 1024, 4 * 1024 * 1024, 1);
        let torrent = TorrentSpec::from_metainfo(&meta, 64 * 1024);
        let cfg = FlowConfig {
            stall_timeout: Some(SimDuration::from_secs(5)),
            ..FlowConfig::default()
        };
        let mut w = FlowWorld::new(cfg, 42);
        let seed_node = w.add_node(Access::campus());
        let leech_node = w.add_node(Access::residential());
        w.add_task(TaskSpec::default_client(seed_node, torrent, true));
        let leech = w.add_task(TaskSpec::default_client(leech_node, torrent, false));
        w.start();
        w.run_until(SimTime::from_secs(10), |_| {});
        let progress = w.progress_fraction(leech);
        assert!(progress > 0.0, "transfer must be in flight");
        assert_eq!(w.stall_aborts(), 0, "healthy transfers never time out");
        // The lazy watchdog arms once per busy spell and re-arms itself on
        // fire; progress is a timestamp write, never a cancel. A healthy
        // run therefore cancels (at most) on connection teardown, not per
        // tick — the armed-timer churn of the old eager scheme is gone.
        let stats = w.queue_stats();
        assert!(
            stats.cancelled < stats.scheduled / 10,
            "progress must not churn timer cancels: {} cancelled of {} scheduled",
            stats.cancelled,
            stats.scheduled
        );
        // Black-hole the seed: its links look up but nothing moves (rate
        // zero with data still queued) — the watchdog must abort the
        // stalled connection one timeout later.
        w.begin_blackhole(NodeId(seed_node as u32));
        w.run_until(SimTime::from_secs(30), |_| {});
        assert!(w.stall_aborts() > 0, "stalled transfer was never aborted");
    }

    /// Regression for the pre-lifecycle behaviour: a stall abort used to
    /// kill the connection and leave only the flat legacy redial. Armed
    /// clients must instead escalate the address into backing-off.
    #[test]
    fn armed_stall_abort_backs_off_instead_of_flat_redial() {
        use bittorrent::lifecycle::{ConnState, ResilienceConfig};

        type AddrStates = Vec<(SimAddr, u32, SimTime, bool)>;
        fn run(armed: bool) -> (u64, AddrStates, Option<ConnState>) {
            let meta = Metainfo::synthetic("stallb.bin", "tr", 64 * 1024, 4 * 1024 * 1024, 1);
            let torrent = TorrentSpec::from_metainfo(&meta, 64 * 1024);
            let cfg = FlowConfig {
                stall_timeout: Some(SimDuration::from_secs(5)),
                ..FlowConfig::default()
            };
            let mut w = FlowWorld::new(cfg, 42);
            let seed_node = w.add_node(Access::campus());
            let leech_node = w.add_node(Access::residential());
            w.add_task(TaskSpec::default_client(seed_node, torrent, true));
            let mut spec = TaskSpec::default_client(leech_node, torrent, false);
            if armed {
                spec.make_config = Box::new(|| ClientConfig {
                    resilience: ResilienceConfig::armed(),
                    ..ClientConfig::default()
                });
            }
            let leech = w.add_task(spec);
            w.start();
            w.run_until(SimTime::from_secs(10), |_| {});
            w.begin_blackhole(NodeId(seed_node as u32));
            w.run_until(SimTime::from_secs(30), |_| {});
            let seed_addr = w.node_addr(seed_node);
            let client = w.client(leech).expect("leech alive");
            let state = client.lifecycle_of(seed_addr, w.now());
            (w.stall_aborts(), client.addr_states(), state)
        }

        let (aborts, states, _) = run(false);
        assert!(aborts > 0, "unarmed run never hit the watchdog");
        assert!(
            states.iter().all(|&(_, failures, _, _)| failures == 0),
            "legacy stall abort must not escalate failures: {states:?}"
        );

        let (aborts, states, state) = run(true);
        assert!(aborts > 0, "armed run never hit the watchdog");
        assert!(
            states.iter().any(|&(_, failures, _, _)| failures >= 1),
            "armed stall abort must escalate into backoff: {states:?}"
        );
        assert_eq!(
            state,
            Some(ConnState::BackingOff),
            "armed client should be waiting out a backoff window"
        );
    }

    /// A loss burst starves piece progress without killing the link: an
    /// armed client must snub the peer (collapse the pipeline to a probe)
    /// and unsnub as soon as the burst lifts and a piece lands.
    #[test]
    fn snub_and_unsnub_round_trip_under_loss_burst() {
        use bittorrent::lifecycle::ResilienceConfig;

        let meta = Metainfo::synthetic("snub.bin", "tr", 256 * 1024, 8 * 1024 * 1024, 1);
        let torrent = TorrentSpec::from_metainfo(&meta, 256 * 1024);
        let mut w = FlowWorld::new(FlowConfig::default(), 11);
        let seed_node = w.add_node(Access::Wireless {
            capacity: 2_000_000.0 / 8.0,
        });
        let leech_node = w.add_node(Access::residential());
        w.add_task(TaskSpec::default_client(seed_node, torrent, true));
        let mut spec = TaskSpec::default_client(leech_node, torrent, false);
        spec.make_config = Box::new(|| {
            let mut res = ResilienceConfig::armed();
            // Fast snub detection; keepalive long enough that the silent
            // burst window never closes the connection underneath us.
            res.snub_timeout = SimDuration::from_secs(15);
            res.keepalive_timeout = SimDuration::from_secs(600);
            ClientConfig {
                resilience: res,
                ..ClientConfig::default()
            }
        });
        let leech = w.add_task(spec);
        w.start();
        w.run_until(SimTime::from_secs(10), |_| {});
        let before = w.progress_fraction(leech);
        assert!(before > 0.0, "transfer must be in flight");
        assert_eq!(w.client(leech).expect("alive").snubbed_count(), 0);

        // Throttle the seed to ~1% capacity: blocks take minutes, so the
        // leech sees no piece progress inside its snub window.
        w.begin_loss_burst(NodeId(seed_node as u32), 1e-3);
        let snubbed = w.run_until_condition(SimTime::from_secs(120), |w| {
            w.client(leech).is_some_and(|c| c.snubbed_count() > 0)
        });
        assert!(snubbed, "loss burst never snubbed the seed connection");

        // Lift the burst: the probe request drains at full rate, a piece
        // arrives, and the client unsnubs and finishes the download.
        w.end_loss_burst(NodeId(seed_node as u32));
        let recovered = w.run_until_condition(SimTime::from_secs(400), |w| {
            w.client(leech).is_some_and(|c| c.snubbed_count() == 0)
                && w.progress_fraction(leech) > before
        });
        assert!(recovered, "snubbed connection never recovered");
        assert!(
            w.client(leech).expect("alive").stats().snubs >= 1,
            "snub counter never incremented"
        );
    }

    /// Role reversal during a tracker outage: the mobile seed hands off
    /// to a fresh address while the tracker is dark, so its stored-peer
    /// redial (through the backoff machinery) is the only way back.
    #[test]
    fn role_reversal_recovers_during_tracker_outage() {
        use bittorrent::lifecycle::ResilienceConfig;

        let meta = Metainfo::synthetic("rr.bin", "tr", 256 * 1024, 4 * 1024 * 1024, 1);
        let torrent = TorrentSpec::from_metainfo(&meta, 256 * 1024);
        let mut w = FlowWorld::new(FlowConfig::default(), 5);
        let seed_node = w.add_node(Access::Wireless {
            capacity: 2_000_000.0 / 8.0,
        });
        let leech_node = w.add_node(Access::residential());
        let armed = || {
            Box::new(|| ClientConfig {
                resilience: ResilienceConfig::armed(),
                ..ClientConfig::default()
            }) as Box<dyn Fn() -> ClientConfig>
        };
        let mut seed_spec = TaskSpec::default_client(seed_node, torrent, true);
        seed_spec.make_config = armed();
        seed_spec.wp2p.role_reversal = true;
        seed_spec.wp2p.identity_retention = true;
        w.add_task(seed_spec);
        let mut leech_spec = TaskSpec::default_client(leech_node, torrent, false);
        leech_spec.make_config = armed();
        let leech = w.add_task(leech_spec);
        w.start();
        w.run_until(SimTime::from_secs(8), |_| {});
        let before = w.progress_fraction(leech);
        assert!(before > 0.0 && before < 1.0, "mid-transfer, got {before}");

        // Tracker goes dark, then the seed hands off: the leech cannot
        // rediscover the new address, and the old connection is a black
        // hole. Only the seed's stored-peer reconnect restores flow.
        w.begin_tracker_outage();
        w.churn_address(NodeId(seed_node as u32));
        let recovered = w.run_until_condition(SimTime::from_secs(240), |w| {
            w.progress_fraction(leech) > before + 0.05
        });
        assert!(
            recovered,
            "stored-peer redial never restored progress (stuck at {})",
            w.progress_fraction(leech)
        );
        w.end_tracker_outage();
    }

    #[test]
    fn stall_watchdog_defaults_off() {
        // Without the opt-in the flow world schedules no watchdog timers:
        // cancellation counters stay exactly zero.
        let meta = Metainfo::synthetic("off.bin", "tr", 64 * 1024, 1024 * 1024, 1);
        let torrent = TorrentSpec::from_metainfo(&meta, 64 * 1024);
        let mut w = FlowWorld::new(FlowConfig::default(), 42);
        let seed_node = w.add_node(Access::campus());
        let leech_node = w.add_node(Access::residential());
        w.add_task(TaskSpec::default_client(seed_node, torrent, true));
        w.add_task(TaskSpec::default_client(leech_node, torrent, false));
        w.start();
        w.run_until(SimTime::from_secs(60), |_| {});
        let q = w.queue_stats();
        assert_eq!(q.cancelled, 0);
        assert_eq!(w.stall_aborts(), 0);
    }
}
