//! Swarm-wide invariant checking.
//!
//! An [`InvariantChecker`] watches a simulation world across ticks and
//! asserts the cross-layer conservation laws that must hold no matter
//! what faults are injected:
//!
//! 1. **Byte conservation** — piece payload bytes delivered to receivers
//!    never exceed bytes sent by senders (world-side transport truth).
//! 2. **Bitfield monotonicity** — a task's verified-piece bitfield never
//!    loses a piece, across hand-offs, crashes, and re-initiations; and
//!    pieces gained cost at least their size in delivered transport
//!    bytes (you cannot verify data you never received).
//! 3. **TCP sequence-space sanity** (packet world) — per endpoint,
//!    `rcv_nxt` and the delivered byte count advance monotonically, and
//!    in-order delivered bytes never exceed what the peer wrote.
//! 4. **Max-min feasibility** (flow world) — the current rate
//!    allocation overloads no access pipe, wireless channel, or
//!    application upload cap it crosses.
//! 5. **Identity/credit sanity** — tit-for-tat credit is finite and
//!    non-negative, and a task with identity retention keeps the same
//!    peer-id across every hand-off (the credit it earned stays
//!    addressed to it — the paper's §3.4 mechanism).
//!
//! Both worlds run these checks automatically on every tick in debug
//! and test builds (a violation panics, so every tier-1 integration
//! test doubles as an invariant run); explicit use is
//! `checker.check_flow(&world)` from a `run_until` callback.

use crate::flow::FlowWorld;
use crate::packet::PacketWorld;
use bittorrent::peer_id::PeerId;
use sim_tcp::seq::SeqNum;
use std::collections::BTreeMap;

/// Per-task snapshot used for monotonicity checks.
#[derive(Clone, Debug)]
struct TaskSnap {
    have: Vec<bool>,
    /// Transport bytes already delivered at the first observation.
    initial_bytes: u64,
    /// Verified piece bytes gained since the first observation.
    gained_total: u64,
}

/// Per-endpoint snapshot used for TCP sequence-space checks.
#[derive(Clone, Copy, Debug, Default)]
struct TcpSnap {
    rcv_nxt: Option<SeqNum>,
    delivered: u64,
}

/// Watches a world across ticks and panics on any invariant violation.
///
/// One checker per world: the monotonicity checks compare against the
/// previous observation of the *same* world.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    checks: u64,
    tasks: BTreeMap<usize, TaskSnap>,
    identities: BTreeMap<usize, PeerId>,
    tcp: BTreeMap<(usize, bool), TcpSnap>,
}

impl InvariantChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many check passes have run (each pass covers every invariant
    /// family applicable to the world).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Runs every flow-world invariant. Panics on violation.
    pub fn check_flow(&mut self, w: &FlowWorld) {
        self.checks += 1;
        // 1. Byte conservation across the whole swarm.
        let mut down = 0u64;
        let mut up = 0u64;
        for t in 0..w.task_count() {
            down += w.delivered_down_bytes(t);
            up += w.delivered_up_bytes(t);
        }
        assert!(
            down <= up,
            "conservation violated: delivered {down} > sent {up}"
        );
        // 2/5. Per-task bitfield monotonicity and identity/credit checks.
        for t in 0..w.task_count() {
            self.check_task_progress(t, w);
            if w.task_retains_identity(t) {
                if let Some(id) = w.task_identity(t) {
                    let first = *self.identities.entry(t).or_insert(id);
                    assert!(
                        first == id,
                        "task {t} retains identity but changed peer-id across a hand-off"
                    );
                }
            }
            if let Some(c) = w.client(t) {
                for key in c.connections() {
                    if let Some(id) = c.peer_id_of(key) {
                        let credit = c.credit_of(id);
                        assert!(
                            credit.is_finite() && credit >= 0.0,
                            "task {t} holds invalid credit {credit} for a peer"
                        );
                    }
                }
                // 6. PEX gossip-book sanity: a disabled client keeps no
                // book at all, and no entry claims freshness from the
                // future.
                let book = c.pex_book();
                if !c.pex_enabled() {
                    assert!(
                        book.is_empty(),
                        "task {t} has PEX disabled but holds gossip state"
                    );
                }
                let now = w.now();
                for (addr, fresh_at) in book {
                    assert!(
                        fresh_at <= now,
                        "task {t} gossip book dates {addr} in the future"
                    );
                }
            }
        }
        // 4. Max-min feasibility of the current allocation.
        if let Err(e) = w.rates_feasible() {
            panic!("max-min allocation infeasible: {e}");
        }
    }

    fn check_task_progress(&mut self, t: usize, w: &FlowWorld) {
        let (have, gained_now) = w.with_progress(t, |p| {
            let n = p.num_pieces();
            let have: Vec<bool> = (0..n).map(|i| p.have().get(i)).collect();
            let gained: u64 = match self.tasks.get(&t) {
                None => 0,
                Some(snap) => (0..n)
                    .filter(|&i| have[i as usize] && !snap.have[i as usize])
                    .map(|i| p.piece_size(i) as u64)
                    .sum(),
            };
            (have, gained)
        });
        let delivered = w.delivered_down_bytes(t);
        match self.tasks.get_mut(&t) {
            None => {
                self.tasks.insert(
                    t,
                    TaskSnap {
                        have,
                        initial_bytes: delivered,
                        gained_total: 0,
                    },
                );
            }
            Some(snap) => {
                for (i, (&now_has, &had)) in have.iter().zip(&snap.have).enumerate() {
                    assert!(
                        !had || now_has,
                        "task {t} lost verified piece {i}: bitfield not monotone"
                    );
                }
                // Every verified piece byte must be covered by transport
                // deliveries: you cannot SHA-verify data you never got.
                snap.gained_total += gained_now;
                let received = delivered.saturating_sub(snap.initial_bytes);
                assert!(
                    snap.gained_total <= received,
                    "task {t} verified {} new piece bytes but only {received} \
                     were delivered: data from nowhere",
                    snap.gained_total
                );
                for (dst, src) in snap.have.iter_mut().zip(&have) {
                    *dst = *src;
                }
            }
        }
    }

    /// Runs every packet-world invariant. Panics on violation.
    pub fn check_packet(&mut self, w: &PacketWorld) {
        self.checks += 1;
        // 1. Byte conservation over the overlay.
        let mut down = 0u64;
        let mut up = 0u64;
        for n in 0..w.node_count() {
            down += w.delivered_down(n);
            up += w.delivered_up(n);
        }
        assert!(
            down <= up,
            "conservation violated: delivered {down} > sent {up}"
        );
        // 3. TCP sequence-space sanity per live endpoint.
        for conn in 0..w.conn_count() {
            for a_side in [true, false] {
                let Some(ep) = w.endpoint(conn, a_side) else {
                    continue;
                };
                let key = (conn, a_side);
                let snap = self.tcp.entry(key).or_default();
                let delivered = ep.delivered_total();
                assert!(
                    delivered >= snap.delivered,
                    "conn {conn} side {a_side}: delivered bytes went backwards \
                     ({} -> {delivered})",
                    snap.delivered
                );
                snap.delivered = delivered;
                if let Some(rn) = ep.rcv_nxt() {
                    if let Some(prev) = snap.rcv_nxt {
                        assert!(
                            prev.before_eq(rn),
                            "conn {conn} side {a_side}: rcv_nxt moved backwards \
                             ({prev:?} -> {rn:?})"
                        );
                    }
                    snap.rcv_nxt = Some(rn);
                }
                // In-order delivery cannot outrun what the peer wrote.
                let peer_written = w.tcp_written(conn, !a_side);
                assert!(
                    delivered <= peer_written,
                    "conn {conn} side {a_side}: delivered {delivered} > peer wrote \
                     {peer_written}"
                );
                let flight = ep.flight_size();
                assert!(
                    flight < (1 << 30),
                    "conn {conn} side {a_side}: absurd flight size {flight}"
                );
            }
        }
        // 2. Overlay bitfields (when clients are attached): monotone.
        for n in 0..w.node_count() {
            let Some(c) = w.client(n) else { continue };
            let p = c.progress();
            let have: Vec<bool> = (0..p.num_pieces()).map(|i| p.have().get(i)).collect();
            match self.tasks.get_mut(&n) {
                None => {
                    self.tasks.insert(
                        n,
                        TaskSnap {
                            have,
                            initial_bytes: w.delivered_down(n),
                            gained_total: 0,
                        },
                    );
                }
                Some(snap) => {
                    for (i, (&now_has, &had)) in have.iter().zip(&snap.have).enumerate() {
                        assert!(
                            !had || now_has,
                            "node {n} lost verified piece {i}: bitfield not monotone"
                        );
                    }
                    for (dst, src) in snap.have.iter_mut().zip(&have) {
                        *dst = *src;
                    }
                }
            }
        }
    }
}

use simnet::snapshot::{Snap, SnapReader, SnapWriter};

impl Snap for TaskSnap {
    fn snap(&self, w: &mut SnapWriter) {
        self.have.snap(w);
        w.put_u64(self.initial_bytes);
        w.put_u64(self.gained_total);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        TaskSnap {
            have: Snap::unsnap(r),
            initial_bytes: r.get_u64(),
            gained_total: r.get_u64(),
        }
    }
}

impl Snap for TcpSnap {
    fn snap(&self, w: &mut SnapWriter) {
        self.rcv_nxt.snap(w);
        w.put_u64(self.delivered);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        TcpSnap {
            rcv_nxt: Snap::unsnap(r),
            delivered: r.get_u64(),
        }
    }
}

// The checker's observation history rides in world snapshots so the
// restored world's built-in checker counts passes — and fires — exactly
// like the straight-through run's.
impl Snap for InvariantChecker {
    fn snap(&self, w: &mut SnapWriter) {
        w.section("invariants");
        w.put_u64(self.checks);
        self.tasks.snap(w);
        self.identities.snap(w);
        self.tcp.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        r.section("invariants");
        InvariantChecker {
            checks: r.get_u64(),
            tasks: Snap::unsnap(r),
            identities: Snap::unsnap(r),
            tcp: Snap::unsnap(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{Access, FlowConfig, FlowWorld, TaskSpec, TorrentSpec};
    use bittorrent::metainfo::Metainfo;
    use simnet::time::SimTime;

    #[test]
    fn clean_run_has_zero_violations() {
        let meta = Metainfo::synthetic("inv.bin", "tr", 64 * 1024, 512 * 1024, 9);
        let torrent = TorrentSpec::from_metainfo(&meta, 64 * 1024);
        let mut w = FlowWorld::new(FlowConfig::default(), 11);
        let a = w.add_node(Access::campus());
        let b = w.add_node(Access::residential());
        w.add_task(TaskSpec::default_client(a, torrent, true));
        let leech = w.add_task(TaskSpec::default_client(b, torrent, false));
        w.start();
        let mut ck = InvariantChecker::new();
        w.run_until(SimTime::from_secs(120), |w| ck.check_flow(w));
        assert_eq!(w.progress_fraction(leech), 1.0);
        assert!(ck.checks() > 100, "checker barely ran: {}", ck.checks());
    }

    #[test]
    fn clean_packet_run_has_zero_violations() {
        use crate::packet::{PacketConfig, PacketWorld};
        let mut w = PacketWorld::new(PacketConfig::default(), 5);
        let a = w.add_node(None);
        let b = w.add_node(Some(simnet::wireless::WirelessConfig::wlan_80211g()));
        let conn = w.open_tcp(a, b);
        w.tcp_write(conn, true, 500_000);
        let mut ck = InvariantChecker::new();
        w.run_until(SimTime::from_secs(30), |w| ck.check_packet(w));
        assert_eq!(w.tcp_delivered(conn, false), 500_000);
        assert!(ck.checks() > 100, "checker barely ran: {}", ck.checks());
    }
}
