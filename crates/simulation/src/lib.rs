//! # p2p-simulation — experiment worlds for the wP2P reproduction
//!
//! Wires the substrates together into runnable testbeds:
//!
//! * [`rates`] — max-min fair bandwidth sharing (the fluid model core).
//! * [`flow`] — the flow-level world: swarms of BitTorrent clients over
//!   shared access links, with mobility, tracker, and wP2P components.
//!   Used for paper Figs. 3, 4, 8(b), 8(c), 9.
//! * [`packet`] — the packet-level world: sim-TCP segments over wireless
//!   channel models, with the AM filter in the datapath. Used for paper
//!   Figs. 2 and 8(a).
//! * [`harness`] — the parallel deterministic sweep runner every
//!   experiment driver fans its (point × run) cells through.
//! * [`invariants`] — the swarm-wide invariant checker both worlds run
//!   every tick in debug/test builds (conservation, monotonicity,
//!   sequence-space and feasibility laws).
//! * [`experiments`] — one driver per figure, each producing the same
//!   series the paper plots.
//! * [`report`] — plain-text table rendering for the figure binaries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod flow;
pub mod harness;
pub mod invariants;
pub mod packet;
pub mod rates;
pub mod report;
