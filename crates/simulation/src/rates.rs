//! Max-min fair rate allocation for the fluid (flow-level) transport.
//!
//! Every active transfer consumes capacity at one or two *resources*: the
//! sender's uplink and the receiver's downlink for wired hosts, or the one
//! shared channel of a wireless host — the same resource for its uploads
//! **and** downloads, which is how upload/download self-contention (paper
//! §3.3) enters the model.
//!
//! Rates are assigned by progressive filling (water-filling): all flows
//! rise together; when a resource saturates, its flows freeze at the
//! current level and the rest keep rising. This is the classic max-min
//! idealization of many long-lived TCP flows sharing bottlenecks.

/// Index of a capacity resource (a link direction or a wireless channel).
pub type ResourceId = usize;

/// One active flow's resource usage (up to three distinct resources:
/// sender-side capacity, receiver-side capacity, and an optional sender
/// rate-cap pseudo-resource).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowDemand {
    /// First resource (always present).
    pub r1: ResourceId,
    /// Optional second resource (`None` when both endpoints share one
    /// resource, e.g. a wireless-to-same-channel transfer).
    pub r2: Option<ResourceId>,
    /// Optional third resource — typically a per-sender upload-cap
    /// pseudo-resource, which is how an application-level rate limit
    /// releases real channel capacity to other flows.
    pub r3: Option<ResourceId>,
}

impl FlowDemand {
    /// A flow crossing two distinct resources (deduplicated).
    pub fn new(a: ResourceId, b: ResourceId) -> Self {
        if a == b {
            FlowDemand { r1: a, r2: None, r3: None }
        } else {
            FlowDemand { r1: a, r2: Some(b), r3: None }
        }
    }

    /// A flow using a single resource.
    pub fn single(r: ResourceId) -> Self {
        FlowDemand { r1: r, r2: None, r3: None }
    }

    /// Adds a third (cap) resource, deduplicated against the others.
    pub fn with_cap(mut self, cap: ResourceId) -> Self {
        if cap != self.r1 && Some(cap) != self.r2 {
            self.r3 = Some(cap);
        }
        self
    }

    fn resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        std::iter::once(self.r1).chain(self.r2).chain(self.r3)
    }
}

/// Computes max-min fair rates (bytes/second) for `flows` over resources
/// with the given `capacities` (bytes/second).
///
/// Resources with non-positive capacity admit no traffic.
///
/// # Panics
///
/// Panics when a flow references an out-of-range resource.
pub fn max_min_rates(flows: &[FlowDemand], capacities: &[f64]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    let mut remaining: Vec<f64> = capacities.iter().map(|&c| c.max(0.0)).collect();
    let mut active: Vec<bool> = vec![true; n];
    // Flows on zero-capacity resources never start.
    for (i, f) in flows.iter().enumerate() {
        for r in f.resources() {
            assert!(r < capacities.len(), "resource {r} out of range");
            if remaining[r] <= 0.0 {
                active[i] = false;
            }
        }
    }
    let mut users = vec![0usize; capacities.len()];

    loop {
        // Count active users per resource.
        users.iter_mut().for_each(|u| *u = 0);
        let mut any_active = false;
        for (i, f) in flows.iter().enumerate() {
            if active[i] {
                any_active = true;
                for r in f.resources() {
                    users[r] += 1;
                }
            }
        }
        if !any_active {
            break;
        }
        // The smallest per-flow headroom across used resources.
        let mut delta = f64::INFINITY;
        for (r, &u) in users.iter().enumerate() {
            if u > 0 {
                delta = delta.min(remaining[r] / u as f64);
            }
        }
        if !delta.is_finite() || delta <= 0.0 {
            break;
        }
        // Raise all active flows by delta; drain resources.
        for (i, f) in flows.iter().enumerate() {
            if active[i] {
                rates[i] += delta;
                for r in f.resources() {
                    remaining[r] -= delta;
                }
            }
        }
        // Freeze flows using any (numerically) saturated resource.
        let eps = 1e-9;
        for (i, f) in flows.iter().enumerate() {
            if active[i] && f.resources().any(|r| remaining[r] <= eps * capacities[r].max(1.0)) {
                active[i] = false;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_gets_bottleneck() {
        // Flow crosses a 100 and a 40 resource: gets 40.
        let rates = max_min_rates(&[FlowDemand::new(0, 1)], &[100.0, 40.0]);
        assert!(close(rates[0], 40.0));
    }

    #[test]
    fn equal_sharing_of_one_resource() {
        let flows = vec![FlowDemand::single(0); 4];
        let rates = max_min_rates(&flows, &[100.0]);
        for r in rates {
            assert!(close(r, 25.0));
        }
    }

    #[test]
    fn classic_max_min_example() {
        // Resource 0 cap 10 shared by flows A,B; resource 1 cap 100 used
        // by B and C. A=5, B=5, C=95.
        let flows = vec![
            FlowDemand::single(0),
            FlowDemand::new(0, 1),
            FlowDemand::single(1),
        ];
        let rates = max_min_rates(&flows, &[10.0, 100.0]);
        assert!(close(rates[0], 5.0), "A={}", rates[0]);
        assert!(close(rates[1], 5.0), "B={}", rates[1]);
        assert!(close(rates[2], 95.0), "C={}", rates[2]);
    }

    #[test]
    fn wireless_self_contention() {
        // One wireless channel (resource 0): an upload and a download both
        // use it and split the capacity — the paper's §3.3 effect.
        let flows = vec![FlowDemand::single(0), FlowDemand::single(0)];
        let rates = max_min_rates(&flows, &[200.0]);
        assert!(close(rates[0], 100.0));
        assert!(close(rates[1], 100.0));
    }

    #[test]
    fn zero_capacity_blocks_flow() {
        let flows = vec![FlowDemand::new(0, 1), FlowDemand::single(1)];
        let rates = max_min_rates(&flows, &[0.0, 50.0]);
        assert_eq!(rates[0], 0.0);
        assert!(close(rates[1], 50.0));
    }

    #[test]
    fn conservation_per_resource() {
        // Random-ish mix: total through each resource never exceeds cap.
        let flows = vec![
            FlowDemand::new(0, 1),
            FlowDemand::new(0, 2),
            FlowDemand::new(1, 2),
            FlowDemand::single(2),
            FlowDemand::new(0, 1),
        ];
        let caps = [30.0, 20.0, 25.0];
        let rates = max_min_rates(&flows, &caps);
        let mut used = [0.0f64; 3];
        for (f, r) in flows.iter().zip(&rates) {
            for res in [Some(f.r1), f.r2, f.r3].into_iter().flatten() {
                used[res] += r;
            }
        }
        for (u, c) in used.iter().zip(&caps) {
            assert!(*u <= c + 1e-6, "used {u} of {c}");
        }
        // Work conservation: at least one resource is (nearly) full.
        assert!(used
            .iter()
            .zip(&caps)
            .any(|(u, c)| (c - u).abs() < 1e-6 * c));
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &[10.0]).is_empty());
    }

    #[test]
    fn same_resource_twice_counts_once() {
        // FlowDemand::new dedupes; a self-loop on a wireless channel
        // consumes its share once per direction entry, not twice.
        let d = FlowDemand::new(3, 3);
        assert_eq!(d.r2, None);
    }
}
