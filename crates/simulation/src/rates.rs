//! Max-min fair rate allocation for the fluid (flow-level) transport.
//!
//! Every active transfer consumes capacity at one or two *resources*: the
//! sender's uplink and the receiver's downlink for wired hosts, or the one
//! shared channel of a wireless host — the same resource for its uploads
//! **and** downloads, which is how upload/download self-contention (paper
//! §3.3) enters the model.
//!
//! Rates are assigned by progressive filling (water-filling): all flows
//! rise together; when a resource saturates, its flows freeze at the
//! current level and the rest keep rising. This is the classic max-min
//! idealization of many long-lived TCP flows sharing bottlenecks.
//!
//! Two solvers live here:
//!
//! * [`MaxMinSolver`] / [`max_min_rates`] — the reference progressive-
//!   filling implementation, one global level, re-solved from scratch
//!   every call. Kept as the oracle the fast path is tested against.
//! * [`RateEngine`] — the hot-path solver. It holds the flow population
//!   *persistently* (struct-of-arrays slots), tracks which resources a
//!   change touched, and on `solve()` re-runs water-filling only over the
//!   connected components reachable from dirty resources, splicing the
//!   frozen rates of everything else. Within a component it aggregates
//!   flows into equivalence classes (identical resource sets) and fills
//!   classes instead of flows — the fast-mmf population-batching idea —
//!   using a saturation-ordered heap so a component solve costs
//!   O(incidences · log resources) instead of O(rounds · resources).
//!
//! Component-local filling reassociates floating-point sums relative to
//! the single-global-level oracle, so engine rates can differ from oracle
//! rates in the last ulps (they agree to ~1e-12 relative); property tests
//! compare with a tolerance. What *is* bit-exact — asserted in debug
//! builds on every incremental solve — is incremental vs. full solves of
//! the engine itself: both decompose into the same components and run the
//! same kernel arithmetic, so `WP2P_RATE_SOLVER=full` replays are
//! byte-identical to the incremental default.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of a capacity resource (a link direction or a wireless channel).
pub type ResourceId = usize;

/// One active flow's resource usage (up to three distinct resources:
/// sender-side capacity, receiver-side capacity, and an optional sender
/// rate-cap pseudo-resource).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowDemand {
    /// First resource (always present).
    pub r1: ResourceId,
    /// Optional second resource (`None` when both endpoints share one
    /// resource, e.g. a wireless-to-same-channel transfer).
    pub r2: Option<ResourceId>,
    /// Optional third resource — typically a per-sender upload-cap
    /// pseudo-resource, which is how an application-level rate limit
    /// releases real channel capacity to other flows.
    pub r3: Option<ResourceId>,
}

impl FlowDemand {
    /// A flow crossing two distinct resources (deduplicated).
    pub fn new(a: ResourceId, b: ResourceId) -> Self {
        if a == b {
            FlowDemand {
                r1: a,
                r2: None,
                r3: None,
            }
        } else {
            FlowDemand {
                r1: a,
                r2: Some(b),
                r3: None,
            }
        }
    }

    /// A flow using a single resource.
    pub fn single(r: ResourceId) -> Self {
        FlowDemand {
            r1: r,
            r2: None,
            r3: None,
        }
    }

    /// Adds a third (cap) resource, deduplicated against the others.
    pub fn with_cap(mut self, cap: ResourceId) -> Self {
        if cap != self.r1 && Some(cap) != self.r2 {
            self.r3 = Some(cap);
        }
        self
    }

    fn resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        std::iter::once(self.r1).chain(self.r2).chain(self.r3)
    }

    /// Canonical resource triple (sorted, `usize::MAX` filling the empty
    /// slots): flows with equal keys consume capacity identically and
    /// form one equivalence class for the aggregated solve.
    fn class_key(&self) -> [usize; 3] {
        let mut k = [
            self.r1,
            self.r2.unwrap_or(usize::MAX),
            self.r3.unwrap_or(usize::MAX),
        ];
        k.sort_unstable();
        k
    }
}

/// Computes max-min fair rates (bytes/second) for `flows` over resources
/// with the given `capacities` (bytes/second).
///
/// Resources with non-positive capacity admit no traffic.
///
/// One-shot convenience over [`MaxMinSolver`]; callers on a hot path
/// should hold a solver and call [`MaxMinSolver::solve`] to reuse its
/// scratch buffers.
///
/// # Panics
///
/// Panics when a flow references an out-of-range resource.
pub fn max_min_rates(flows: &[FlowDemand], capacities: &[f64]) -> Vec<f64> {
    let mut rates = Vec::new();
    MaxMinSolver::new().solve(flows, capacities, &mut rates);
    rates
}

/// Reusable progressive-filling solver (the reference oracle).
///
/// All active flows rise together, so instead of bumping every flow's
/// rate each round the solver tracks one shared `level` and stamps it
/// onto a flow when the flow freezes. Freezing walks only the flows on
/// the just-saturated resource (per-resource membership lists built once
/// per solve), and per-resource active-user counts are maintained
/// incrementally — each round costs O(resources touched), and the total
/// freeze work across all rounds is O(flow-resource incidences), not
/// O(rounds × flows) as in the naive rescan.
///
/// Scratch buffers persist across calls so steady-state solves allocate
/// nothing.
#[derive(Debug, Default)]
pub struct MaxMinSolver {
    remaining: Vec<f64>,
    users: Vec<usize>,
    flows_on: Vec<Vec<usize>>,
    /// Resources with at least one active user in the current solve; the
    /// per-resource state of exactly these is cleared on the next call.
    touched: Vec<ResourceId>,
    active: Vec<bool>,
}

impl MaxMinSolver {
    /// A solver with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the allocation into `rates` (cleared and resized to
    /// `flows.len()`). Semantics are identical to [`max_min_rates`].
    pub fn solve(&mut self, flows: &[FlowDemand], capacities: &[f64], rates: &mut Vec<f64>) {
        let n = flows.len();
        rates.clear();
        rates.resize(n, 0.0);
        if n == 0 {
            return;
        }
        let nr = capacities.len();
        if self.remaining.len() < nr {
            self.remaining.resize(nr, 0.0);
            self.users.resize(nr, 0);
            self.flows_on.resize_with(nr, Vec::new);
        }
        // Reset only what the previous solve dirtied.
        for r in self.touched.drain(..) {
            self.users[r] = 0;
            self.flows_on[r].clear();
        }
        for (rem, &c) in self.remaining.iter_mut().zip(capacities) {
            *rem = c.max(0.0);
        }
        self.active.clear();
        self.active.resize(n, true);

        // Flows on zero-capacity resources never start; the rest are
        // registered on each resource they use. The active count is
        // derived right here — blocked flows bail out of the walk early
        // and are never rescanned.
        let mut n_active = 0usize;
        for (i, f) in flows.iter().enumerate() {
            for r in f.resources() {
                assert!(r < nr, "resource {r} out of range");
                if self.remaining[r] <= 0.0 {
                    self.active[i] = false;
                }
            }
            if !self.active[i] {
                continue;
            }
            n_active += 1;
            for r in f.resources() {
                if self.users[r] == 0 {
                    self.touched.push(r);
                }
                self.users[r] += 1;
                self.flows_on[r].push(i);
            }
        }

        let eps = 1e-9;
        let mut level = 0.0f64;
        while n_active > 0 {
            // The smallest per-flow headroom across used resources.
            let mut delta = f64::INFINITY;
            for &r in &self.touched {
                let u = self.users[r];
                if u > 0 {
                    delta = delta.min(self.remaining[r] / u as f64);
                }
            }
            if !delta.is_finite() || delta <= 0.0 {
                break;
            }
            level += delta;
            for &r in &self.touched {
                let u = self.users[r];
                if u > 0 {
                    self.remaining[r] -= delta * u as f64;
                }
            }
            // Freeze the flows on each (numerically) saturated resource
            // at the current level, releasing their claims elsewhere.
            for ti in 0..self.touched.len() {
                let r = self.touched[ti];
                if self.users[r] == 0 || self.remaining[r] > eps * capacities[r].max(1.0) {
                    continue;
                }
                for fi in 0..self.flows_on[r].len() {
                    let i = self.flows_on[r][fi];
                    if !self.active[i] {
                        continue;
                    }
                    self.active[i] = false;
                    rates[i] = level;
                    n_active -= 1;
                    for rr in flows[i].resources() {
                        self.users[rr] -= 1;
                    }
                }
            }
        }
        // Anything still active when the fill stalls keeps the level it
        // reached (mirrors the rescan implementation's early break).
        if n_active > 0 {
            for (i, a) in self.active.iter().enumerate() {
                if *a {
                    rates[i] = level;
                }
            }
        }
    }
}

/// Which solve strategy the [`RateEngine`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverMode {
    /// Re-solve only the connected components reachable from dirty
    /// resources; splice frozen rates for the rest (the default).
    Incremental,
    /// Re-solve the whole population on every dirty solve. Same kernel,
    /// same component decomposition — byte-identical outputs, used as
    /// the replay reference in CI.
    Full,
}

impl SolverMode {
    /// Reads `WP2P_RATE_SOLVER` (`incremental` | `full`); defaults to
    /// [`SolverMode::Incremental`].
    pub fn from_env() -> Self {
        match std::env::var("WP2P_RATE_SOLVER").as_deref() {
            Ok("full") => SolverMode::Full,
            _ => SolverMode::Incremental,
        }
    }
}

/// Cumulative [`RateEngine`] work counters, for the perf trajectory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Solves that re-filled the entire flow population.
    pub full_solves: u64,
    /// Solves restricted to the components dirty resources reach.
    pub incremental_solves: u64,
    /// Aggregated equivalence classes filled (across all solves); the
    /// flow-to-class compression is `flows_touched / class_solves`.
    pub class_solves: u64,
    /// Resources visited by re-solves (dirty-component sweep size).
    pub resources_touched: u64,
    /// Flows whose rate was recomputed by re-solves.
    pub flows_touched: u64,
}

/// `f64` ordered by `total_cmp` so saturation levels can key a heap.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Level(f64);

impl Eq for Level {}

impl PartialOrd for Level {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Level {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Water-filling kernel scratch: per-resource state is initialized lazily
/// via the component's touched list, so a component solve costs only its
/// own incidences no matter how large the engine's resource space is.
#[derive(Debug, Default)]
struct Kernel {
    rem: Vec<f64>,
    /// Fill level at which `rem` was last settled (lazy subtraction).
    upd: Vec<f64>,
    users: Vec<usize>,
    /// Latest finish level pushed for the resource; older heap entries
    /// are stale and skipped on pop.
    cur_finish: Vec<f64>,
    in_comp: Vec<bool>,
    sat: Vec<bool>,
    classes_on: Vec<Vec<u32>>,
    touched: Vec<ResourceId>,
    /// `(class key, flow slot)` sort buffer; equal-key runs are classes.
    members: Vec<([usize; 3], u32)>,
    class_demand: Vec<FlowDemand>,
    class_weight: Vec<usize>,
    class_level: Vec<f64>,
    class_frozen: Vec<bool>,
    heap: BinaryHeap<Reverse<(Level, ResourceId)>>,
}

impl Kernel {
    fn ensure_resources(&mut self, nr: usize) {
        if self.rem.len() < nr {
            self.rem.resize(nr, 0.0);
            self.upd.resize(nr, 0.0);
            self.users.resize(nr, 0);
            self.cur_finish.resize(nr, 0.0);
            self.in_comp.resize(nr, false);
            self.sat.resize(nr, false);
            self.classes_on.resize_with(nr, Vec::new);
        }
    }

    /// Solves one connected component. `flows` lists the component's flow
    /// slots; rates are written through `rates[slot]`. Returns the number
    /// of aggregated classes filled and of resources water-filled.
    fn solve_component(
        &mut self,
        flows: &[u32],
        demands: &[FlowDemand],
        caps: &[f64],
        rates: &mut [f64],
    ) -> (u64, u64) {
        // 1. Cluster into equivalence classes: identical resource sets
        // consume identically, so one weighted representative suffices.
        self.members.clear();
        for &f in flows {
            self.members.push((demands[f as usize].class_key(), f));
        }
        self.members.sort_unstable();
        self.class_demand.clear();
        self.class_weight.clear();
        self.class_level.clear();
        self.class_frozen.clear();
        let mut i = 0;
        while i < self.members.len() {
            let key = self.members[i].0;
            let mut j = i + 1;
            while j < self.members.len() && self.members[j].0 == key {
                j += 1;
            }
            self.class_demand
                .push(demands[self.members[i].1 as usize]);
            self.class_weight.push(j - i);
            self.class_level.push(0.0);
            self.class_frozen.push(false);
            i = j;
        }
        let n_classes = self.class_demand.len();

        // 2. Register active classes; zero-capacity resources block their
        // classes outright (same semantics as the oracle).
        let mut n_active = 0usize;
        for c in 0..n_classes {
            let d = self.class_demand[c];
            let blocked = d.resources().any(|r| caps[r] <= 0.0);
            if blocked {
                self.class_frozen[c] = true;
                continue;
            }
            n_active += 1;
            let w = self.class_weight[c];
            for r in d.resources() {
                if !self.in_comp[r] {
                    self.in_comp[r] = true;
                    self.sat[r] = false;
                    self.rem[r] = caps[r].max(0.0);
                    self.upd[r] = 0.0;
                    self.users[r] = 0;
                    self.touched.push(r);
                }
                self.users[r] += w;
                self.classes_on[r].push(c as u32);
            }
        }

        // 3. Fill in saturation order: the heap keys each resource by the
        // level at which it would saturate if its user count froze now
        // (`finish = level + remaining / users`); freezing a class
        // updates the finish of every resource it releases, and stale
        // entries are skipped on pop.
        self.heap.clear();
        for &r in &self.touched {
            let finish = self.rem[r] / self.users[r] as f64;
            self.cur_finish[r] = finish;
            self.heap.push(Reverse((Level(finish), r)));
        }
        let mut level = 0.0f64;
        while n_active > 0 {
            let Some(Reverse((Level(finish), r))) = self.heap.pop() else {
                break;
            };
            if self.sat[r] || finish.to_bits() != self.cur_finish[r].to_bits() {
                continue;
            }
            if finish > level {
                level = finish;
            }
            self.sat[r] = true;
            for ci in 0..self.classes_on[r].len() {
                let c = self.classes_on[r][ci] as usize;
                if self.class_frozen[c] {
                    continue;
                }
                self.class_frozen[c] = true;
                self.class_level[c] = level;
                n_active -= 1;
                let w = self.class_weight[c];
                for rr in self.class_demand[c].resources() {
                    if self.sat[rr] {
                        continue;
                    }
                    let mut rem = self.rem[rr] - (level - self.upd[rr]) * self.users[rr] as f64;
                    if rem < 0.0 {
                        rem = 0.0;
                    }
                    self.rem[rr] = rem;
                    self.upd[rr] = level;
                    self.users[rr] -= w;
                    if self.users[rr] > 0 {
                        let finish = level + rem / self.users[rr] as f64;
                        self.cur_finish[rr] = finish;
                        self.heap.push(Reverse((Level(finish), rr)));
                    } else {
                        // Nothing left to saturate it: poison the finish
                        // so any queued entry reads as stale.
                        self.cur_finish[rr] = f64::NEG_INFINITY;
                    }
                }
            }
        }
        // Defensive: a drained heap with classes still active cannot
        // happen (every active class keeps a finite finish queued), but
        // mirror the oracle's early-break by stamping the reached level.
        for c in 0..n_classes {
            if !self.class_frozen[c] {
                self.class_level[c] = level;
            }
        }

        // 4. Stamp member rates and reset per-component state.
        i = 0;
        for c in 0..n_classes {
            let w = self.class_weight[c];
            let lv = if self.class_demand[c]
                .resources()
                .any(|r| caps[r] <= 0.0)
            {
                0.0
            } else {
                self.class_level[c]
            };
            for k in i..i + w {
                rates[self.members[k].1 as usize] = lv;
            }
            i += w;
        }
        let n_resources = self.touched.len() as u64;
        for r in self.touched.drain(..) {
            self.in_comp[r] = false;
            self.classes_on[r].clear();
        }
        self.heap.clear();
        (n_classes as u64, n_resources)
    }
}

/// Persistent incremental max-min solver over struct-of-arrays flow
/// slots. See the module docs for the architecture.
///
/// The caller owns slot assignment (the flow world uses
/// `2 · connection-slot + direction`); slots are dense `u32`-sized
/// indices, and all per-flow state lives in parallel arrays.
#[derive(Debug)]
pub struct RateEngine {
    mode: SolverMode,
    caps: Vec<f64>,
    demands: Vec<FlowDemand>,
    present: Vec<bool>,
    rates: Vec<f64>,
    /// Per-resource incidence: present flow slots using the resource.
    flows_on: Vec<Vec<u32>>,
    dirty: Vec<ResourceId>,
    dirty_flag: Vec<bool>,
    all_dirty: bool,
    n_present: usize,
    stats: SolverStats,
    kernel: Kernel,
    // Component-sweep scratch.
    visit_res: Vec<bool>,
    visit_flow: Vec<bool>,
    res_stack: Vec<ResourceId>,
    comp_flows: Vec<u32>,
    seen_res: Vec<ResourceId>,
    seen_flows: Vec<u32>,
    #[cfg(debug_assertions)]
    verify_rates: Vec<f64>,
}

impl Default for RateEngine {
    fn default() -> Self {
        Self::new(SolverMode::Incremental)
    }
}

impl RateEngine {
    /// An empty engine.
    pub fn new(mode: SolverMode) -> Self {
        RateEngine {
            mode,
            caps: Vec::new(),
            demands: Vec::new(),
            present: Vec::new(),
            rates: Vec::new(),
            flows_on: Vec::new(),
            dirty: Vec::new(),
            dirty_flag: Vec::new(),
            all_dirty: true,
            n_present: 0,
            stats: SolverStats::default(),
            kernel: Kernel::default(),
            visit_res: Vec::new(),
            visit_flow: Vec::new(),
            res_stack: Vec::new(),
            comp_flows: Vec::new(),
            seen_res: Vec::new(),
            seen_flows: Vec::new(),
            #[cfg(debug_assertions)]
            verify_rates: Vec::new(),
        }
    }

    /// The active solve strategy.
    pub fn mode(&self) -> SolverMode {
        self.mode
    }

    /// Work counters so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Grows the resource space to at least `nr` slots (capacity 0).
    pub fn ensure_resources(&mut self, nr: usize) {
        if self.caps.len() < nr {
            self.caps.resize(nr, 0.0);
            self.dirty_flag.resize(nr, false);
            self.flows_on.resize_with(nr, Vec::new);
            self.visit_res.resize(nr, false);
        }
    }

    /// Number of resource slots.
    pub fn resource_count(&self) -> usize {
        self.caps.len()
    }

    /// Present flows.
    pub fn flow_count(&self) -> usize {
        self.n_present
    }

    /// Current capacity of a resource.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.caps[r]
    }

    /// Sets a resource's capacity, dirtying it when the value changes.
    pub fn set_capacity(&mut self, r: ResourceId, cap: f64) {
        if self.caps[r].to_bits() != cap.to_bits() {
            self.caps[r] = cap;
            self.mark_dirty(r);
        }
    }

    /// Whether a slot currently holds a flow.
    pub fn has_flow(&self, slot: usize) -> bool {
        self.present.get(slot).copied().unwrap_or(false)
    }

    /// The flow's last solved rate (0 for absent or never-solved slots).
    pub fn rate(&self, slot: usize) -> f64 {
        self.rates.get(slot).copied().unwrap_or(0.0)
    }

    /// The demand registered at a slot, if present.
    pub fn demand(&self, slot: usize) -> Option<FlowDemand> {
        if self.has_flow(slot) {
            Some(self.demands[slot])
        } else {
            None
        }
    }

    /// Inserts or replaces the flow at `slot`. A no-op when the slot
    /// already holds an identical demand; otherwise both the old and new
    /// resource sets are dirtied.
    ///
    /// # Panics
    ///
    /// Panics when the demand references a resource slot that does not
    /// exist (grow first via [`RateEngine::ensure_resources`]).
    pub fn upsert_flow(&mut self, slot: usize, d: FlowDemand) {
        if slot >= self.demands.len() {
            let n = slot + 1;
            self.demands.resize(n, FlowDemand::single(0));
            self.present.resize(n, false);
            self.rates.resize(n, 0.0);
            self.visit_flow.resize(n, false);
        }
        if self.present[slot] {
            if self.demands[slot] == d {
                return;
            }
            self.unlink(slot);
        } else {
            self.present[slot] = true;
            self.n_present += 1;
        }
        for r in d.resources() {
            assert!(r < self.caps.len(), "resource {r} out of range");
            self.flows_on[r].push(slot as u32);
            self.mark_dirty(r);
        }
        self.demands[slot] = d;
        // A fresh flow carries no rate until the next solve.
        self.rates[slot] = 0.0;
    }

    /// Removes the flow at `slot` (no-op when absent); its rate drops to
    /// zero immediately and its resources are dirtied.
    pub fn remove_flow(&mut self, slot: usize) {
        if !self.has_flow(slot) {
            return;
        }
        self.unlink(slot);
        self.present[slot] = false;
        self.rates[slot] = 0.0;
        self.n_present -= 1;
    }

    fn unlink(&mut self, slot: usize) {
        let d = self.demands[slot];
        for r in d.resources() {
            let list = &mut self.flows_on[r];
            if let Some(pos) = list.iter().position(|&f| f == slot as u32) {
                list.swap_remove(pos);
            }
            self.mark_dirty(r);
        }
    }

    fn mark_dirty(&mut self, r: ResourceId) {
        if !self.dirty_flag[r] {
            self.dirty_flag[r] = true;
            self.dirty.push(r);
        }
    }

    /// True when inputs changed since the last solve (the next
    /// [`RateEngine::solve`] will do work).
    pub fn is_dirty(&self) -> bool {
        self.all_dirty || !self.dirty.is_empty()
    }

    /// Re-solves what changed. Returns `false` (and counts nothing) when
    /// the problem is clean — the previous allocation is still exact.
    pub fn solve(&mut self) -> bool {
        if !self.is_dirty() {
            return false;
        }
        // Full-solve fallback: forced mode, first solve, or a dirty set
        // so large the component sweep would cover everything anyway.
        let full = self.mode == SolverMode::Full
            || self.all_dirty
            || self.dirty.len() * 2 >= self.caps.len().max(1);
        if full {
            self.stats.full_solves += 1;
            self.solve_full();
        } else {
            self.stats.incremental_solves += 1;
            self.solve_incremental();
            #[cfg(debug_assertions)]
            self.verify_incremental();
        }
        for r in self.dirty.drain(..) {
            self.dirty_flag[r] = false;
        }
        self.all_dirty = false;
        true
    }

    fn solve_full(&mut self) {
        let mut stamped = std::mem::take(&mut self.seen_flows);
        stamped.clear();
        for slot in 0..self.demands.len() {
            if self.present[slot] && !self.visit_flow[slot] {
                self.collect_component_from_flow(slot as u32);
                self.run_component();
            }
            if self.present[slot] {
                stamped.push(slot as u32);
            }
        }
        for f in stamped.drain(..) {
            self.visit_flow[f as usize] = false;
        }
        for r in self.seen_res.drain(..) {
            self.visit_res[r] = false;
        }
        self.seen_flows = stamped;
    }

    fn solve_incremental(&mut self) {
        // The dirty list is borrowed out and restored *unclipped*: the
        // caller drains it to reset the per-resource dirty flags.
        let dirty = std::mem::take(&mut self.dirty);
        for &r in &dirty {
            if self.visit_res[r] {
                continue;
            }
            self.visit_res[r] = true;
            self.seen_res.push(r);
            self.res_stack.push(r);
            self.collect_reachable();
            self.run_component();
        }
        self.dirty = dirty;
        for f in self.seen_flows.drain(..) {
            self.visit_flow[f as usize] = false;
        }
        for r in self.seen_res.drain(..) {
            self.visit_res[r] = false;
        }
    }

    /// Seeds the sweep from one flow (full solve).
    fn collect_component_from_flow(&mut self, f: u32) {
        self.visit_flow[f as usize] = true;
        self.comp_flows.push(f);
        for r in self.demands[f as usize].resources() {
            if !self.visit_res[r] {
                self.visit_res[r] = true;
                self.seen_res.push(r);
                self.res_stack.push(r);
            }
        }
        self.collect_reachable();
    }

    /// Drains the resource stack, collecting every reachable flow of the
    /// component into `comp_flows`.
    fn collect_reachable(&mut self) {
        while let Some(r) = self.res_stack.pop() {
            for fi in 0..self.flows_on[r].len() {
                let f = self.flows_on[r][fi];
                if self.visit_flow[f as usize] {
                    continue;
                }
                self.visit_flow[f as usize] = true;
                self.comp_flows.push(f);
                for rr in self.demands[f as usize].resources() {
                    if !self.visit_res[rr] {
                        self.visit_res[rr] = true;
                        self.seen_res.push(rr);
                        self.res_stack.push(rr);
                    }
                }
            }
        }
    }

    /// Runs the kernel over the flows collected in `comp_flows`. In a
    /// full solve `seen_flows` doubles as the visited-cleanup list, so
    /// component flows are appended there too by the caller's stamping.
    fn run_component(&mut self) {
        if self.comp_flows.is_empty() {
            return;
        }
        self.kernel.ensure_resources(self.caps.len());
        let (classes, resources) = self.kernel.solve_component(
            &self.comp_flows,
            &self.demands,
            &self.caps,
            &mut self.rates,
        );
        self.stats.class_solves += classes;
        self.stats.resources_touched += resources;
        self.stats.flows_touched += self.comp_flows.len() as u64;
        // Flows were marked visited as they were collected; remember
        // them for cleanup (incremental path — the full path tracks all
        // present flows itself, dedup is harmless).
        for &f in &self.comp_flows {
            self.seen_flows.push(f);
        }
        self.comp_flows.clear();
    }

    /// Debug-mode ground truth: an incremental solve must leave exactly
    /// the rates a from-scratch full solve of the same population
    /// produces, bit for bit.
    #[cfg(debug_assertions)]
    fn verify_incremental(&mut self) {
        let mut fresh = std::mem::take(&mut self.verify_rates);
        fresh.clear();
        fresh.resize(self.rates.len(), 0.0);
        let saved_stats = self.stats;
        std::mem::swap(&mut self.rates, &mut fresh);
        self.solve_full();
        std::mem::swap(&mut self.rates, &mut fresh);
        self.stats = saved_stats;
        for (slot, &want) in fresh.iter().enumerate().take(self.demands.len()) {
            if self.present[slot] {
                assert!(
                    self.rates[slot].to_bits() == want.to_bits(),
                    "incremental solve diverged from full solve at slot {slot}: \
                     {} != {want}",
                    self.rates[slot],
                );
            }
        }
        self.verify_rates = fresh;
    }

    /// Marks everything dirty: the next solve re-fills the whole
    /// population (used at world start and by tests).
    pub fn invalidate_all(&mut self) {
        self.all_dirty = true;
    }

    /// Serializes the engine's persistent allocation state.
    ///
    /// The kernel and component-sweep scratch are empty between solves
    /// and are rebuilt by [`RateEngine::restore_state`]; the solver
    /// `mode` is environment configuration and stays with the live
    /// engine. `flows_on` is serialized verbatim (not rebuilt from the
    /// demands) because its intra-list order is perturbed by
    /// `swap_remove` on unlink, and a later `save` of the restored
    /// engine must be byte-identical to a save of the straight-run one.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.section("rate_engine");
        self.caps.snap(w);
        self.demands.snap(w);
        self.present.snap(w);
        self.rates.snap(w);
        self.flows_on.snap(w);
        self.dirty.snap(w);
        self.dirty_flag.snap(w);
        w.put_bool(self.all_dirty);
        w.put_usize(self.n_present);
        self.stats.snap(w);
    }

    /// Restores state captured by [`RateEngine::save_state`], keeping
    /// the live engine's `mode` and re-sizing scratch to match.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) {
        r.section("rate_engine");
        self.caps = Snap::unsnap(r);
        self.demands = Snap::unsnap(r);
        self.present = Snap::unsnap(r);
        self.rates = Snap::unsnap(r);
        self.flows_on = Snap::unsnap(r);
        self.dirty = Snap::unsnap(r);
        self.dirty_flag = Snap::unsnap(r);
        self.all_dirty = r.get_bool();
        self.n_present = r.get_usize();
        self.stats = Snap::unsnap(r);
        self.kernel = Kernel::default();
        self.kernel.ensure_resources(self.caps.len());
        self.visit_res.clear();
        self.visit_res.resize(self.caps.len(), false);
        self.visit_flow.clear();
        self.visit_flow.resize(self.demands.len(), false);
        self.res_stack.clear();
        self.comp_flows.clear();
        self.seen_res.clear();
        self.seen_flows.clear();
        #[cfg(debug_assertions)]
        self.verify_rates.clear();
    }
}

use simnet::snapshot::{Snap, SnapReader, SnapWriter};

impl Snap for FlowDemand {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.r1);
        self.r2.snap(w);
        self.r3.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        FlowDemand {
            r1: r.get_usize(),
            r2: Snap::unsnap(r),
            r3: Snap::unsnap(r),
        }
    }
}

impl Snap for SolverStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.full_solves);
        w.put_u64(self.incremental_solves);
        w.put_u64(self.class_solves);
        w.put_u64(self.resources_touched);
        w.put_u64(self.flows_touched);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        SolverStats {
            full_solves: r.get_u64(),
            incremental_solves: r.get_u64(),
            class_solves: r.get_u64(),
            resources_touched: r.get_u64(),
            flows_touched: r.get_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_gets_bottleneck() {
        // Flow crosses a 100 and a 40 resource: gets 40.
        let rates = max_min_rates(&[FlowDemand::new(0, 1)], &[100.0, 40.0]);
        assert!(close(rates[0], 40.0));
    }

    #[test]
    fn equal_sharing_of_one_resource() {
        let flows = vec![FlowDemand::single(0); 4];
        let rates = max_min_rates(&flows, &[100.0]);
        for r in rates {
            assert!(close(r, 25.0));
        }
    }

    #[test]
    fn classic_max_min_example() {
        // Resource 0 cap 10 shared by flows A,B; resource 1 cap 100 used
        // by B and C. A=5, B=5, C=95.
        let flows = vec![
            FlowDemand::single(0),
            FlowDemand::new(0, 1),
            FlowDemand::single(1),
        ];
        let rates = max_min_rates(&flows, &[10.0, 100.0]);
        assert!(close(rates[0], 5.0), "A={}", rates[0]);
        assert!(close(rates[1], 5.0), "B={}", rates[1]);
        assert!(close(rates[2], 95.0), "C={}", rates[2]);
    }

    #[test]
    fn wireless_self_contention() {
        // One wireless channel (resource 0): an upload and a download both
        // use it and split the capacity — the paper's §3.3 effect.
        let flows = vec![FlowDemand::single(0), FlowDemand::single(0)];
        let rates = max_min_rates(&flows, &[200.0]);
        assert!(close(rates[0], 100.0));
        assert!(close(rates[1], 100.0));
    }

    #[test]
    fn zero_capacity_blocks_flow() {
        let flows = vec![FlowDemand::new(0, 1), FlowDemand::single(1)];
        let rates = max_min_rates(&flows, &[0.0, 50.0]);
        assert_eq!(rates[0], 0.0);
        assert!(close(rates[1], 50.0));
    }

    #[test]
    fn conservation_per_resource() {
        // Random-ish mix: total through each resource never exceeds cap.
        let flows = vec![
            FlowDemand::new(0, 1),
            FlowDemand::new(0, 2),
            FlowDemand::new(1, 2),
            FlowDemand::single(2),
            FlowDemand::new(0, 1),
        ];
        let caps = [30.0, 20.0, 25.0];
        let rates = max_min_rates(&flows, &caps);
        let mut used = [0.0f64; 3];
        for (f, r) in flows.iter().zip(&rates) {
            for res in [Some(f.r1), f.r2, f.r3].into_iter().flatten() {
                used[res] += r;
            }
        }
        for (u, c) in used.iter().zip(&caps) {
            assert!(*u <= c + 1e-6, "used {u} of {c}");
        }
        // Work conservation: at least one resource is (nearly) full.
        assert!(used
            .iter()
            .zip(&caps)
            .any(|(u, c)| (c - u).abs() < 1e-6 * c));
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &[10.0]).is_empty());
    }

    #[test]
    fn solver_reuse_matches_one_shot() {
        // A persistent solver must give the same answers as fresh calls
        // even when consecutive problems change shape (more resources,
        // fewer flows, zero-cap resources appearing).
        let problems: Vec<(Vec<FlowDemand>, Vec<f64>)> = vec![
            (
                vec![
                    FlowDemand::single(0),
                    FlowDemand::new(0, 1),
                    FlowDemand::single(1),
                ],
                vec![10.0, 100.0],
            ),
            (
                vec![
                    FlowDemand::new(0, 3).with_cap(4),
                    FlowDemand::new(1, 2),
                    FlowDemand::single(2),
                ],
                vec![30.0, 20.0, 25.0, 40.0, 7.5],
            ),
            (vec![FlowDemand::new(0, 1)], vec![0.0, 50.0]),
            (vec![], vec![10.0]),
            (vec![FlowDemand::single(0); 4], vec![100.0]),
        ];
        let mut solver = MaxMinSolver::new();
        let mut out = Vec::new();
        for (flows, caps) in &problems {
            solver.solve(flows, caps, &mut out);
            assert_eq!(out, max_min_rates(flows, caps), "flows={flows:?}");
        }
    }

    #[test]
    fn same_resource_twice_counts_once() {
        // FlowDemand::new dedupes; a self-loop on a wireless channel
        // consumes its share once per direction entry, not twice.
        let d = FlowDemand::new(3, 3);
        assert_eq!(d.r2, None);
    }

    // ------------------------------------------------------------------
    // RateEngine
    // ------------------------------------------------------------------

    /// Loads a static problem into a fresh engine.
    fn engine_with(flows: &[FlowDemand], caps: &[f64], mode: SolverMode) -> RateEngine {
        let mut e = RateEngine::new(mode);
        e.ensure_resources(caps.len());
        for (r, &c) in caps.iter().enumerate() {
            e.set_capacity(r, c);
        }
        for (i, &d) in flows.iter().enumerate() {
            e.upsert_flow(i, d);
        }
        e
    }

    fn assert_close_to_oracle(e: &RateEngine, flows: &[FlowDemand], caps: &[f64]) {
        let oracle = max_min_rates(flows, caps);
        for (i, want) in oracle.iter().enumerate() {
            assert!(
                close(e.rate(i), *want),
                "flow {i}: engine {} vs oracle {want}",
                e.rate(i)
            );
        }
    }

    #[test]
    fn engine_matches_oracle_on_static_problems() {
        let problems: Vec<(Vec<FlowDemand>, Vec<f64>)> = vec![
            (
                vec![
                    FlowDemand::single(0),
                    FlowDemand::new(0, 1),
                    FlowDemand::single(1),
                ],
                vec![10.0, 100.0],
            ),
            (vec![FlowDemand::single(0); 4], vec![100.0]),
            (vec![FlowDemand::new(0, 1), FlowDemand::single(1)], vec![0.0, 50.0]),
            (
                vec![
                    FlowDemand::new(0, 3).with_cap(4),
                    FlowDemand::new(1, 2),
                    FlowDemand::single(2),
                ],
                vec![30.0, 20.0, 25.0, 40.0, 7.5],
            ),
            // Two disjoint components.
            (
                vec![FlowDemand::new(0, 1), FlowDemand::new(2, 3)],
                vec![10.0, 20.0, 5.0, 100.0],
            ),
        ];
        for (flows, caps) in &problems {
            let mut e = engine_with(flows, caps, SolverMode::Incremental);
            assert!(e.solve(), "dirty engine must solve");
            assert_close_to_oracle(&e, flows, caps);
        }
    }

    #[test]
    fn clean_engine_skips() {
        let flows = [FlowDemand::single(0), FlowDemand::single(0)];
        let mut e = engine_with(&flows, &[100.0], SolverMode::Incremental);
        assert!(e.solve());
        assert!(!e.solve(), "clean problem must skip");
        assert_eq!(e.stats().full_solves, 1);
        // Re-registering an identical demand stays clean.
        e.upsert_flow(0, FlowDemand::single(0));
        assert!(!e.is_dirty());
    }

    #[test]
    fn incremental_touches_only_the_dirty_component() {
        // Components {0,1} and {2,3}; dirtying component B must leave
        // component A's work counters untouched.
        let flows = [FlowDemand::new(0, 1), FlowDemand::new(2, 3)];
        let caps = [10.0, 20.0, 5.0, 100.0];
        let mut e = engine_with(&flows, &caps, SolverMode::Incremental);
        assert!(e.solve());
        let before = e.stats();
        e.set_capacity(2, 7.0);
        assert!(e.solve());
        let after = e.stats();
        assert_eq!(after.incremental_solves, before.incremental_solves + 1);
        assert_eq!(
            after.flows_touched,
            before.flows_touched + 1,
            "only the one flow in the dirty component re-solves"
        );
        assert!(close(e.rate(1), 7.0));
        assert!(close(e.rate(0), 10.0), "spliced rate survives");
    }

    #[test]
    fn incremental_matches_full_bitwise_under_churn() {
        // Drive two engines (incremental vs full-every-solve) through a
        // randomized demand/capacity/churn sequence: rates must stay
        // byte-identical at every step. (Debug builds additionally
        // self-verify inside the incremental engine.)
        let mut rng = simnet::rng::SimRng::new(0xFA57);
        let nr = 24usize;
        let mut inc = RateEngine::new(SolverMode::Incremental);
        let mut full = RateEngine::new(SolverMode::Full);
        for e in [&mut inc, &mut full] {
            e.ensure_resources(nr);
            for r in 0..nr {
                e.set_capacity(r, 50.0);
            }
        }
        let nslots = 64usize;
        for step in 0..400 {
            let op = rng.range(0..100u32);
            if op < 45 {
                let slot = rng.range(0..nslots);
                let a = rng.range(0..nr);
                let b = rng.range(0..nr);
                let mut d = FlowDemand::new(a, b);
                if rng.chance(0.3) {
                    d = d.with_cap(rng.range(0..nr));
                }
                inc.upsert_flow(slot, d);
                full.upsert_flow(slot, d);
            } else if op < 70 {
                let slot = rng.range(0..nslots);
                inc.remove_flow(slot);
                full.remove_flow(slot);
            } else if op < 90 {
                let r = rng.range(0..nr);
                // Occasionally drop a resource to zero capacity.
                let c = if rng.chance(0.15) {
                    0.0
                } else {
                    rng.range(1..200u32) as f64
                };
                inc.set_capacity(r, c);
                full.set_capacity(r, c);
            } else {
                // All-dirty shock.
                inc.invalidate_all();
                full.invalidate_all();
            }
            inc.solve();
            full.solve();
            for slot in 0..nslots {
                assert_eq!(
                    inc.rate(slot).to_bits(),
                    full.rate(slot).to_bits(),
                    "step {step} slot {slot}: incremental {} vs full {}",
                    inc.rate(slot),
                    full.rate(slot)
                );
            }
        }
        assert!(inc.stats().incremental_solves > 0, "never took the fast path");
        assert!(full.stats().incremental_solves == 0, "full mode must not");
    }

    #[test]
    fn class_aggregation_compresses_symmetric_flows() {
        // 16 identical flows through one pipe: one class, one level.
        let flows = vec![FlowDemand::new(0, 1); 16];
        let mut e = engine_with(&flows, &[80.0, 800.0], SolverMode::Incremental);
        assert!(e.solve());
        for i in 0..16 {
            assert!(close(e.rate(i), 5.0), "flow {i} = {}", e.rate(i));
        }
        assert_eq!(e.stats().class_solves, 1, "16 flows, one class");
        assert_eq!(e.stats().flows_touched, 16);
    }

    #[test]
    fn removal_zeroes_rate_immediately() {
        let flows = [FlowDemand::single(0), FlowDemand::single(0)];
        let mut e = engine_with(&flows, &[100.0], SolverMode::Incremental);
        e.solve();
        assert!(close(e.rate(0), 50.0));
        e.remove_flow(0);
        assert_eq!(e.rate(0), 0.0, "removed flow is rateless pre-solve");
        assert!(e.solve());
        assert!(close(e.rate(1), 100.0), "survivor inherits the pipe");
    }

    #[test]
    fn zero_capacity_engine_blocks_flow_and_unblocks() {
        let flows = [FlowDemand::new(0, 1), FlowDemand::single(1)];
        let mut e = engine_with(&flows, &[0.0, 50.0], SolverMode::Incremental);
        e.solve();
        assert_eq!(e.rate(0), 0.0);
        assert!(close(e.rate(1), 50.0));
        e.set_capacity(0, 30.0);
        e.solve();
        assert!(close(e.rate(0), 25.0));
        assert!(close(e.rate(1), 25.0));
    }

    #[test]
    fn solver_mode_env_parsing() {
        // Only inspects the parser default; the env var itself is read
        // once at world construction.
        assert_eq!(SolverMode::from_env(), SolverMode::from_env());
    }
}
