//! Max-min fair rate allocation for the fluid (flow-level) transport.
//!
//! Every active transfer consumes capacity at one or two *resources*: the
//! sender's uplink and the receiver's downlink for wired hosts, or the one
//! shared channel of a wireless host — the same resource for its uploads
//! **and** downloads, which is how upload/download self-contention (paper
//! §3.3) enters the model.
//!
//! Rates are assigned by progressive filling (water-filling): all flows
//! rise together; when a resource saturates, its flows freeze at the
//! current level and the rest keep rising. This is the classic max-min
//! idealization of many long-lived TCP flows sharing bottlenecks.

/// Index of a capacity resource (a link direction or a wireless channel).
pub type ResourceId = usize;

/// One active flow's resource usage (up to three distinct resources:
/// sender-side capacity, receiver-side capacity, and an optional sender
/// rate-cap pseudo-resource).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowDemand {
    /// First resource (always present).
    pub r1: ResourceId,
    /// Optional second resource (`None` when both endpoints share one
    /// resource, e.g. a wireless-to-same-channel transfer).
    pub r2: Option<ResourceId>,
    /// Optional third resource — typically a per-sender upload-cap
    /// pseudo-resource, which is how an application-level rate limit
    /// releases real channel capacity to other flows.
    pub r3: Option<ResourceId>,
}

impl FlowDemand {
    /// A flow crossing two distinct resources (deduplicated).
    pub fn new(a: ResourceId, b: ResourceId) -> Self {
        if a == b {
            FlowDemand {
                r1: a,
                r2: None,
                r3: None,
            }
        } else {
            FlowDemand {
                r1: a,
                r2: Some(b),
                r3: None,
            }
        }
    }

    /// A flow using a single resource.
    pub fn single(r: ResourceId) -> Self {
        FlowDemand {
            r1: r,
            r2: None,
            r3: None,
        }
    }

    /// Adds a third (cap) resource, deduplicated against the others.
    pub fn with_cap(mut self, cap: ResourceId) -> Self {
        if cap != self.r1 && Some(cap) != self.r2 {
            self.r3 = Some(cap);
        }
        self
    }

    fn resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        std::iter::once(self.r1).chain(self.r2).chain(self.r3)
    }
}

/// Computes max-min fair rates (bytes/second) for `flows` over resources
/// with the given `capacities` (bytes/second).
///
/// Resources with non-positive capacity admit no traffic.
///
/// One-shot convenience over [`MaxMinSolver`]; callers on a hot path
/// should hold a solver and call [`MaxMinSolver::solve`] to reuse its
/// scratch buffers.
///
/// # Panics
///
/// Panics when a flow references an out-of-range resource.
pub fn max_min_rates(flows: &[FlowDemand], capacities: &[f64]) -> Vec<f64> {
    let mut rates = Vec::new();
    MaxMinSolver::new().solve(flows, capacities, &mut rates);
    rates
}

/// Reusable progressive-filling solver.
///
/// All active flows rise together, so instead of bumping every flow's
/// rate each round the solver tracks one shared `level` and stamps it
/// onto a flow when the flow freezes. Freezing walks only the flows on
/// the just-saturated resource (per-resource membership lists built once
/// per solve), and per-resource active-user counts are maintained
/// incrementally — each round costs O(resources touched), and the total
/// freeze work across all rounds is O(flow-resource incidences), not
/// O(rounds × flows) as in the naive rescan.
///
/// Scratch buffers persist across calls so steady-state solves allocate
/// nothing.
#[derive(Debug, Default)]
pub struct MaxMinSolver {
    remaining: Vec<f64>,
    users: Vec<usize>,
    flows_on: Vec<Vec<usize>>,
    /// Resources with at least one active user in the current solve; the
    /// per-resource state of exactly these is cleared on the next call.
    touched: Vec<ResourceId>,
    active: Vec<bool>,
}

impl MaxMinSolver {
    /// A solver with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the allocation into `rates` (cleared and resized to
    /// `flows.len()`). Semantics are identical to [`max_min_rates`].
    pub fn solve(&mut self, flows: &[FlowDemand], capacities: &[f64], rates: &mut Vec<f64>) {
        let n = flows.len();
        rates.clear();
        rates.resize(n, 0.0);
        if n == 0 {
            return;
        }
        let nr = capacities.len();
        if self.remaining.len() < nr {
            self.remaining.resize(nr, 0.0);
            self.users.resize(nr, 0);
            self.flows_on.resize_with(nr, Vec::new);
        }
        // Reset only what the previous solve dirtied.
        for r in self.touched.drain(..) {
            self.users[r] = 0;
            self.flows_on[r].clear();
        }
        for (rem, &c) in self.remaining.iter_mut().zip(capacities) {
            *rem = c.max(0.0);
        }
        self.active.clear();
        self.active.resize(n, true);

        // Flows on zero-capacity resources never start; the rest are
        // registered on each resource they use.
        for (i, f) in flows.iter().enumerate() {
            for r in f.resources() {
                assert!(r < nr, "resource {r} out of range");
                if self.remaining[r] <= 0.0 {
                    self.active[i] = false;
                }
            }
            if self.active[i] {
                for r in f.resources() {
                    if self.users[r] == 0 {
                        self.touched.push(r);
                    }
                    self.users[r] += 1;
                    self.flows_on[r].push(i);
                }
            }
        }
        let mut n_active = self.active.iter().filter(|&&a| a).count();

        let eps = 1e-9;
        let mut level = 0.0f64;
        while n_active > 0 {
            // The smallest per-flow headroom across used resources.
            let mut delta = f64::INFINITY;
            for &r in &self.touched {
                let u = self.users[r];
                if u > 0 {
                    delta = delta.min(self.remaining[r] / u as f64);
                }
            }
            if !delta.is_finite() || delta <= 0.0 {
                break;
            }
            level += delta;
            for &r in &self.touched {
                let u = self.users[r];
                if u > 0 {
                    self.remaining[r] -= delta * u as f64;
                }
            }
            // Freeze the flows on each (numerically) saturated resource
            // at the current level, releasing their claims elsewhere.
            for ti in 0..self.touched.len() {
                let r = self.touched[ti];
                if self.users[r] == 0 || self.remaining[r] > eps * capacities[r].max(1.0) {
                    continue;
                }
                for fi in 0..self.flows_on[r].len() {
                    let i = self.flows_on[r][fi];
                    if !self.active[i] {
                        continue;
                    }
                    self.active[i] = false;
                    rates[i] = level;
                    n_active -= 1;
                    for rr in flows[i].resources() {
                        self.users[rr] -= 1;
                    }
                }
            }
        }
        // Anything still active when the fill stalls keeps the level it
        // reached (mirrors the rescan implementation's early break).
        if n_active > 0 {
            for (i, a) in self.active.iter().enumerate() {
                if *a {
                    rates[i] = level;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_gets_bottleneck() {
        // Flow crosses a 100 and a 40 resource: gets 40.
        let rates = max_min_rates(&[FlowDemand::new(0, 1)], &[100.0, 40.0]);
        assert!(close(rates[0], 40.0));
    }

    #[test]
    fn equal_sharing_of_one_resource() {
        let flows = vec![FlowDemand::single(0); 4];
        let rates = max_min_rates(&flows, &[100.0]);
        for r in rates {
            assert!(close(r, 25.0));
        }
    }

    #[test]
    fn classic_max_min_example() {
        // Resource 0 cap 10 shared by flows A,B; resource 1 cap 100 used
        // by B and C. A=5, B=5, C=95.
        let flows = vec![
            FlowDemand::single(0),
            FlowDemand::new(0, 1),
            FlowDemand::single(1),
        ];
        let rates = max_min_rates(&flows, &[10.0, 100.0]);
        assert!(close(rates[0], 5.0), "A={}", rates[0]);
        assert!(close(rates[1], 5.0), "B={}", rates[1]);
        assert!(close(rates[2], 95.0), "C={}", rates[2]);
    }

    #[test]
    fn wireless_self_contention() {
        // One wireless channel (resource 0): an upload and a download both
        // use it and split the capacity — the paper's §3.3 effect.
        let flows = vec![FlowDemand::single(0), FlowDemand::single(0)];
        let rates = max_min_rates(&flows, &[200.0]);
        assert!(close(rates[0], 100.0));
        assert!(close(rates[1], 100.0));
    }

    #[test]
    fn zero_capacity_blocks_flow() {
        let flows = vec![FlowDemand::new(0, 1), FlowDemand::single(1)];
        let rates = max_min_rates(&flows, &[0.0, 50.0]);
        assert_eq!(rates[0], 0.0);
        assert!(close(rates[1], 50.0));
    }

    #[test]
    fn conservation_per_resource() {
        // Random-ish mix: total through each resource never exceeds cap.
        let flows = vec![
            FlowDemand::new(0, 1),
            FlowDemand::new(0, 2),
            FlowDemand::new(1, 2),
            FlowDemand::single(2),
            FlowDemand::new(0, 1),
        ];
        let caps = [30.0, 20.0, 25.0];
        let rates = max_min_rates(&flows, &caps);
        let mut used = [0.0f64; 3];
        for (f, r) in flows.iter().zip(&rates) {
            for res in [Some(f.r1), f.r2, f.r3].into_iter().flatten() {
                used[res] += r;
            }
        }
        for (u, c) in used.iter().zip(&caps) {
            assert!(*u <= c + 1e-6, "used {u} of {c}");
        }
        // Work conservation: at least one resource is (nearly) full.
        assert!(used
            .iter()
            .zip(&caps)
            .any(|(u, c)| (c - u).abs() < 1e-6 * c));
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &[10.0]).is_empty());
    }

    #[test]
    fn solver_reuse_matches_one_shot() {
        // A persistent solver must give the same answers as fresh calls
        // even when consecutive problems change shape (more resources,
        // fewer flows, zero-cap resources appearing).
        let problems: Vec<(Vec<FlowDemand>, Vec<f64>)> = vec![
            (
                vec![
                    FlowDemand::single(0),
                    FlowDemand::new(0, 1),
                    FlowDemand::single(1),
                ],
                vec![10.0, 100.0],
            ),
            (
                vec![
                    FlowDemand::new(0, 3).with_cap(4),
                    FlowDemand::new(1, 2),
                    FlowDemand::single(2),
                ],
                vec![30.0, 20.0, 25.0, 40.0, 7.5],
            ),
            (vec![FlowDemand::new(0, 1)], vec![0.0, 50.0]),
            (vec![], vec![10.0]),
            (vec![FlowDemand::single(0); 4], vec![100.0]),
        ];
        let mut solver = MaxMinSolver::new();
        let mut out = Vec::new();
        for (flows, caps) in &problems {
            solver.solve(flows, caps, &mut out);
            assert_eq!(out, max_min_rates(flows, caps), "flows={flows:?}");
        }
    }

    #[test]
    fn same_resource_twice_counts_once() {
        // FlowDemand::new dedupes; a self-loop on a wireless channel
        // consumes its share once per direction entry, not twice.
        let d = FlowDemand::new(3, 3);
        assert_eq!(d.r2, None);
    }
}
