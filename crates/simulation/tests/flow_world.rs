//! End-to-end tests of the flow-level world: whole swarms downloading,
//! mobility, identity retention, and determinism.

use bittorrent::client::ClientConfig;
use bittorrent::metainfo::Metainfo;
use p2p_simulation::flow::{Access, FlowConfig, FlowWorld, TaskSpec, TorrentSpec};
use simnet::mobility::MobilityProcess;
use simnet::time::{SimDuration, SimTime};
use wp2p::config::WP2pConfig;

const PIECE: u32 = 64 * 1024;
const MB: u64 = 1024 * 1024;

fn torrent(len: u64) -> TorrentSpec {
    let meta = Metainfo::synthetic("test.bin", "tracker", PIECE, len, 7);
    TorrentSpec::from_metainfo(&meta, PIECE)
}

/// 1 seed + 2 wired leeches; everyone finishes.
#[test]
fn small_swarm_completes() {
    let mut w = FlowWorld::new(FlowConfig::default(), 1);
    let spec = torrent(2 * MB);
    let seed_node = w.add_node(Access::campus());
    let l1 = w.add_node(Access::residential());
    let l2 = w.add_node(Access::residential());
    let _seed = w.add_task(TaskSpec::default_client(seed_node, spec, true));
    let t1 = w.add_task(TaskSpec::default_client(l1, spec, false));
    let t2 = w.add_task(TaskSpec::default_client(l2, spec, false));
    w.start();
    w.run_until(SimTime::from_secs(300), |_| {});
    assert_eq!(
        w.progress_fraction(t1),
        1.0,
        "leech 1 incomplete: {} bytes",
        w.downloaded_bytes(t1)
    );
    assert_eq!(w.progress_fraction(t2), 1.0);
    assert!(w.completed_at(t1).is_some());
    // Both leeches actually pulled the whole file.
    assert_eq!(w.downloaded_bytes(t1), 2 * MB);
}

/// Download time is bounded by the access bottleneck, not much worse.
#[test]
fn download_time_tracks_bottleneck() {
    let mut w = FlowWorld::new(FlowConfig::default(), 2);
    let spec = torrent(4 * MB);
    let seed_node = w.add_node(Access::campus());
    let leech = w.add_node(Access::Wired {
        up: 50_000.0,
        down: 100_000.0,
    });
    let _seed = w.add_task(TaskSpec::default_client(seed_node, spec, true));
    let t = w.add_task(TaskSpec::default_client(leech, spec, false));
    w.start();
    w.run_until(SimTime::from_secs(300), |_| {});
    let done = w.completed_at(t).expect("finished");
    // Ideal: 4 MB / 100 kB/s ≈ 42 s. Allow protocol overheads.
    let secs = done.as_secs_f64();
    assert!(secs > 40.0, "faster than the line rate? {secs}");
    assert!(secs < 120.0, "way slower than the line rate: {secs}");
}

/// Wireless self-contention: a leech that also uploads heavily on a shared
/// channel downloads slower than one that does not upload.
#[test]
fn wireless_upload_contention_slows_downloads() {
    let run = |allow_upload: bool| -> f64 {
        let mut w = FlowWorld::new(FlowConfig::default(), 3);
        let spec = torrent(2 * MB);
        let seed_node = w.add_node(Access::campus());
        // A competing leech that will request data from our client.
        let other = w.add_node(Access::residential());
        let wireless = w.add_node(Access::Wireless {
            capacity: 150_000.0,
        });
        let _seed = w.add_task(TaskSpec::default_client(seed_node, spec, true));
        let _competitor = w.add_task(TaskSpec::default_client(other, spec, false));
        let t = w.add_task(TaskSpec {
            node: wireless,
            torrent: spec,
            start_complete: false,
            start_fraction: None,
            start_at: SimTime::ZERO,
            make_config: Box::new(move || ClientConfig {
                allow_upload,
                ..ClientConfig::default()
            }),
            wp2p: WP2pConfig::default_client(),
        });
        w.start();
        w.run_until(SimTime::from_secs(120), |_| {});
        w.delivered_down_bytes(t) as f64
    };
    let with_upload = run(true);
    let without_upload = run(false);
    assert!(
        without_upload >= with_upload,
        "uploading on a shared channel should not help raw download: \
         with={with_upload} without={without_upload}"
    );
}

/// Mobility with a default client loses progress pace; the client still
/// eventually reconnects via the tracker.
#[test]
fn mobility_disrupts_but_recovers() {
    let mut cfg = FlowConfig::default();
    cfg.tracker.announce_interval = SimDuration::from_mins(5);
    let mut w = FlowWorld::new(cfg, 4);
    // Large enough that the run cannot finish before the hand-offs bite.
    let spec = torrent(64 * MB);
    let seed_node = w.add_node(Access::campus());
    let mobile = w.add_node(Access::Wireless {
        capacity: 200_000.0,
    });
    let _seed = w.add_task(TaskSpec::default_client(seed_node, spec, true));
    let t = w.add_task(TaskSpec::default_client(mobile, spec, false));
    w.set_mobility(
        mobile,
        MobilityProcess::periodic(SimDuration::from_secs(60), SimDuration::from_secs(3)),
    );
    w.start();
    w.run_until(SimTime::from_secs(420), |_| {});
    let bytes = w.downloaded_bytes(t);
    assert!(bytes > 0, "mobile client never downloaded anything");
    // It must have survived several hand-offs and kept downloading in the
    // later part of the run.
    let series = w.download_series(t);
    let early = series.value_at(SimTime::from_secs(120)).unwrap_or(0.0);
    let late = series.last_value().unwrap_or(0.0);
    assert!(
        late > early,
        "no progress after the first hand-offs: early={early} late={late}"
    );
}

/// Identity retention keeps tit-for-tat credit across hand-offs: the
/// retaining client downloads at least as much as the default one under
/// identical mobility.
#[test]
fn identity_retention_helps_under_mobility() {
    let run = |retention: bool| -> u64 {
        let mut cfg = FlowConfig::default();
        cfg.tracker.announce_interval = SimDuration::from_mins(5);
        let mut w = FlowWorld::new(cfg, 5);
        let spec = torrent(16 * MB);
        // A contended swarm: one seed with limited upload, several leeches
        // competing for its slots.
        let seed_node = w.add_node(Access::Wired {
            up: 200_000.0,
            down: 200_000.0,
        });
        let _seed = w.add_task(TaskSpec::default_client(seed_node, spec, true));
        for _ in 0..4 {
            let n = w.add_node(Access::residential());
            w.add_task(TaskSpec::default_client(n, spec, false));
        }
        let mobile = w.add_node(Access::Wireless {
            capacity: 250_000.0,
        });
        let t = w.add_task(TaskSpec {
            node: mobile,
            torrent: spec,
            start_complete: false,
            start_fraction: None,
            start_at: SimTime::ZERO,
            make_config: Box::new(ClientConfig::default),
            wp2p: if retention {
                WP2pConfig::identity_only()
            } else {
                WP2pConfig::default_client()
            },
        });
        w.set_mobility(
            mobile,
            MobilityProcess::periodic(SimDuration::from_secs(60), SimDuration::from_secs(2)),
        );
        w.start();
        w.run_until(SimTime::from_secs(600), |_| {});
        w.downloaded_bytes(t)
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with as f64 >= 0.9 * without as f64,
        "retention should not hurt: with={with} without={without}"
    );
}

/// Tracing records the load-bearing events of a mobile run.
#[test]
fn trace_captures_mobility_and_connections() {
    use metrics::trace::TraceKind;
    let mut w = FlowWorld::new(FlowConfig::default(), 8);
    let spec = torrent(4 * MB);
    let s = w.add_node(Access::campus());
    let m = w.add_node(Access::Wireless {
        capacity: 200_000.0,
    });
    w.add_task(TaskSpec::default_client(s, spec, true));
    w.add_task(TaskSpec::default_client(m, spec, false));
    w.set_mobility(
        m,
        MobilityProcess::periodic(SimDuration::from_secs(30), SimDuration::from_secs(2)),
    );
    w.enable_trace();
    w.start();
    w.run_until(SimTime::from_secs(100), |_| {});
    let trace = w.trace();
    assert!(
        trace.of_kind(TraceKind::Mobility).count() >= 4,
        "hand-offs traced"
    );
    assert!(
        trace.of_kind(TraceKind::Connection).count() >= 2,
        "dials traced"
    );
    assert!(
        trace.of_kind(TraceKind::Tracker).count() >= 2,
        "announces traced"
    );
    // Render sanity.
    assert!(trace.render().contains("hand-off"));
}

/// Regression: client connection keys restart at 1 after re-initiation;
/// removing a *stale* connection (e.g. the ghost a returning peer-id
/// replaces) must never unindex the new connection that reuses the same
/// `(task, key)` tuple. Before the fix, the retained-identity client
/// silently black-holed after its first hand-off (downloading ~4× less
/// than the default); with it, the single-seed scenario recovers fully.
#[test]
fn reinitiated_client_keys_do_not_alias_stale_connections() {
    let run = |retention: bool| -> u64 {
        let mut cfg = FlowConfig::default();
        cfg.tracker.announce_interval = SimDuration::from_secs(300);
        let mut w = FlowWorld::new(cfg, 7);
        let spec = torrent(64 * MB);
        let sn = w.add_node(Access::Wired {
            up: 200_000.0,
            down: 500_000.0,
        });
        w.add_task(TaskSpec::default_client(sn, spec, true));
        let m = w.add_node(Access::Wireless {
            capacity: 250_000.0,
        });
        let t = w.add_task(TaskSpec {
            node: m,
            torrent: spec,
            start_complete: false,
            start_fraction: None,
            start_at: SimTime::ZERO,
            make_config: Box::new(ClientConfig::default),
            wp2p: if retention {
                WP2pConfig::identity_only()
            } else {
                WP2pConfig::default_client()
            },
        });
        w.set_mobility(
            m,
            MobilityProcess::periodic(SimDuration::from_secs(60), SimDuration::from_secs(5)),
        );
        w.start();
        w.run_until(SimTime::from_secs(300), |_| {});
        w.downloaded_bytes(t)
    };
    let default = run(false);
    let retained = run(true);
    // With a single seed there is no slot competition: the two arms must
    // come out equal. A large gap would mean one arm's connections are
    // being black-holed again.
    let ratio = retained as f64 / default.max(1) as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "arms should be equal in a single-seed world: default={default} retained={retained}"
    );
    assert!(default > 10 * MB, "both arms should make real progress");
}

/// The same seed yields identical results; different seeds differ.
#[test]
fn deterministic_given_seed() {
    let run = |seed: u64| -> (u64, u64) {
        let mut w = FlowWorld::new(FlowConfig::default(), seed);
        let spec = torrent(MB);
        let s = w.add_node(Access::campus());
        let l = w.add_node(Access::residential());
        let _ = w.add_task(TaskSpec::default_client(s, spec, true));
        let t = w.add_task(TaskSpec::default_client(l, spec, false));
        w.start();
        w.run_until(SimTime::from_secs(60), |_| {});
        (
            w.downloaded_bytes(t),
            w.completed_at(t).map_or(0, |t| t.as_micros()),
        )
    };
    assert_eq!(run(11), run(11));
}

/// stop_task removes the peer from the swarm; a late joiner starved of
/// seeds cannot finish.
#[test]
fn stopping_the_only_seed_stalls_leeches() {
    let mut w = FlowWorld::new(FlowConfig::default(), 6);
    let spec = torrent(20 * MB);
    let seed_node = w.add_node(Access::campus());
    let l1 = w.add_node(Access::residential());
    let seed = w.add_task(TaskSpec::default_client(seed_node, spec, true));
    let t = w.add_task(TaskSpec::default_client(l1, spec, false));
    w.start();
    // Let the download get going (announce latency + the first 10 s
    // rechoke cycle pass first), then remove the seed.
    w.run_until(SimTime::from_secs(25), |_| {});
    w.stop_task(seed, true);
    w.run_until(SimTime::from_secs(180), |_| {});
    assert!(
        w.progress_fraction(t) < 1.0,
        "cannot finish without the seed"
    );
    assert!(w.downloaded_bytes(t) > 0, "got something before removal");
}

/// Experiment drivers are deterministic end to end: the same driver call
/// yields bit-identical series.
#[test]
fn experiment_drivers_are_deterministic() {
    use metrics::handle::MetricsHandle;
    use p2p_simulation::experiments::fig3::{run_fig3c_arm_with, Fig3cArm, Fig3cParams};
    let params = Fig3cParams {
        duration: SimDuration::from_secs(120),
        file_size: 8 * 1024 * 1024,
        ..Fig3cParams::quick()
    };
    let arm = Fig3cArm {
        mobility: true,
        uploading: true,
    };
    let a = run_fig3c_arm_with(&params, arm, &MetricsHandle::disabled(), 99);
    let b = run_fig3c_arm_with(&params, arm, &MetricsHandle::disabled(), 99);
    assert_eq!(a.final_bytes, b.final_bytes);
    assert_eq!(a.series.points(), b.series.points());
}
