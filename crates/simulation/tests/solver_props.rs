//! Seeded property tests for the incremental / class-aggregated rate
//! solver against the reference `max_min_rates` oracle.
//!
//! Two claims are exercised over randomized demand/capacity/churn
//! sequences (plus the degenerate corners: zero-capacity resources,
//! single-flow classes, all-dirty updates):
//!
//! 1. **Cross-mode bit-identity** — an `Incremental` engine and a `Full`
//!    engine fed the same mutation stream produce bit-identical rates
//!    after every solve. This is the release-build counterpart of the
//!    debug-only `verify_incremental` assertion.
//! 2. **Oracle agreement** — engine rates match the reference
//!    progressive-filling oracle to tight tolerance. Tolerance, not
//!    bit-identity: the engine fills per connected component and per
//!    class while the oracle advances one global water level, which can
//!    reorder mathematically-equivalent float operations.

use p2p_simulation::rates::{max_min_rates, FlowDemand, RateEngine, SolverMode};
use simnet::rng::SimRng;

const SLOTS: usize = 96;

/// Relative-tolerance comparison against the oracle.
fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-6 * scale
}

/// A random demand over `nr` resources. Biased toward small resource
/// sets so flows collide (shared bottlenecks) and classes form
/// (identical triples ⇒ single equivalence class).
fn random_demand(rng: &mut SimRng, nr: usize) -> FlowDemand {
    let a = rng.range(0..nr);
    let b = rng.range(0..nr);
    let mut d = FlowDemand::new(a, b);
    if rng.chance(0.3) {
        d = d.with_cap(rng.range(0..nr));
    }
    d
}

/// Mirrors every mutation into both engines plus the dense oracle
/// inputs, then checks both claims after every solve.
struct Harness {
    inc: RateEngine,
    full: RateEngine,
    caps: Vec<f64>,
    demands: Vec<Option<FlowDemand>>,
}

impl Harness {
    fn new(nr: usize) -> Self {
        let mut inc = RateEngine::new(SolverMode::Incremental);
        let mut full = RateEngine::new(SolverMode::Full);
        inc.ensure_resources(nr);
        full.ensure_resources(nr);
        Harness {
            inc,
            full,
            caps: vec![0.0; nr],
            demands: vec![None; SLOTS],
        }
    }

    fn set_capacity(&mut self, r: usize, cap: f64) {
        self.caps[r] = cap;
        self.inc.set_capacity(r, cap);
        self.full.set_capacity(r, cap);
    }

    fn upsert(&mut self, slot: usize, d: FlowDemand) {
        self.demands[slot] = Some(d);
        self.inc.upsert_flow(slot, d);
        self.full.upsert_flow(slot, d);
    }

    fn remove(&mut self, slot: usize) {
        self.demands[slot] = None;
        self.inc.remove_flow(slot);
        self.full.remove_flow(slot);
    }

    fn solve_and_check(&mut self, step: usize) {
        self.inc.solve();
        self.full.solve();
        // Claim 1: cross-mode bit-identity.
        for slot in 0..SLOTS {
            assert_eq!(
                self.inc.rate(slot).to_bits(),
                self.full.rate(slot).to_bits(),
                "step {step}: incremental and full engines diverged at slot {slot}: \
                 {} != {}",
                self.inc.rate(slot),
                self.full.rate(slot),
            );
        }
        // Claim 2: oracle agreement on the present population.
        let mut flows = Vec::new();
        let mut slots = Vec::new();
        for (slot, d) in self.demands.iter().enumerate() {
            if let Some(d) = d {
                flows.push(*d);
                slots.push(slot);
            }
        }
        let want = max_min_rates(&flows, &self.caps);
        for (&slot, &want) in slots.iter().zip(&want) {
            let got = self.inc.rate(slot);
            assert!(
                close(got, want),
                "step {step}: engine disagrees with oracle at slot {slot}: \
                 got {got}, oracle {want}",
            );
        }
        // Absent slots read zero.
        for slot in 0..SLOTS {
            if self.demands[slot].is_none() {
                assert_eq!(self.inc.rate(slot), 0.0);
            }
        }
    }
}

#[test]
fn randomized_churn_matches_oracle_and_full_solver() {
    for seed in [1u64, 0xBEEF, 0x5CA1E] {
        let mut rng = SimRng::new(seed);
        let nr = 24;
        let mut h = Harness::new(nr);
        for r in 0..nr {
            // Some resources start at zero capacity (degenerate corner:
            // flows touching them must pin to rate 0, not NaN/inf).
            let cap = if rng.chance(0.15) {
                0.0
            } else {
                rng.range(1..200u64) as f64 * 1000.0
            };
            h.set_capacity(r, cap);
        }
        for step in 0..300 {
            match rng.range(0..100u32) {
                // Mostly flow churn: insert/overwrite…
                0..=54 => {
                    let slot = rng.range(0..SLOTS);
                    let d = random_demand(&mut rng, nr);
                    h.upsert(slot, d);
                }
                // …and removal (including no-op removes of empty slots).
                55..=79 => {
                    let slot = rng.range(0..SLOTS);
                    h.remove(slot);
                }
                // Capacity moves, sometimes to zero and back.
                80..=94 => {
                    let r = rng.range(0..nr);
                    let cap = if rng.chance(0.2) {
                        0.0
                    } else {
                        rng.range(1..200u64) as f64 * 1000.0
                    };
                    h.set_capacity(r, cap);
                }
                // All-dirty updates: force the full-solve path on the
                // incremental engine too.
                _ => {
                    h.inc.invalidate_all();
                    h.full.invalidate_all();
                }
            }
            h.solve_and_check(step);
        }
    }
}

#[test]
fn single_flow_classes_match_oracle() {
    // Every flow gets a distinct resource pair: all classes are
    // singletons, so aggregation must degenerate gracefully.
    let mut h = Harness::new(2 * SLOTS);
    for r in 0..2 * SLOTS {
        h.set_capacity(r, ((r % 7) + 1) as f64 * 10_000.0);
    }
    for slot in 0..SLOTS {
        h.upsert(slot, FlowDemand::new(2 * slot, 2 * slot + 1));
    }
    h.solve_and_check(0);
    // Each flow alone on its pair: rate = min of the two capacities.
    for slot in 0..SLOTS {
        let want = h.caps[2 * slot].min(h.caps[2 * slot + 1]);
        assert_eq!(h.inc.rate(slot), want);
    }
}

#[test]
fn symmetric_population_collapses_to_one_class() {
    // All flows share one (up, down) pair — one equivalence class. The
    // aggregated path must split the bottleneck exactly evenly.
    let mut h = Harness::new(2);
    h.set_capacity(0, 64_000.0);
    h.set_capacity(1, f64::INFINITY);
    for slot in 0..32 {
        h.upsert(slot, FlowDemand::new(0, 1));
    }
    h.solve_and_check(0);
    for slot in 0..32 {
        assert_eq!(h.inc.rate(slot), 2_000.0, "even split of the uplink");
    }
    let stats = h.inc.stats();
    assert_eq!(
        stats.class_solves, 1,
        "32 symmetric flows must fill as a single class"
    );
}

#[test]
fn zero_capacity_resource_blocks_exactly_its_flows() {
    let mut h = Harness::new(4);
    h.set_capacity(0, 10_000.0);
    h.set_capacity(1, 10_000.0);
    h.set_capacity(2, 0.0);
    h.set_capacity(3, 10_000.0);
    h.upsert(0, FlowDemand::new(0, 1));
    h.upsert(1, FlowDemand::new(2, 3)); // through the dead resource
    h.solve_and_check(0);
    assert_eq!(h.inc.rate(0), 10_000.0);
    assert_eq!(h.inc.rate(1), 0.0, "zero-capacity resource pins its flows");
    // Reviving the resource revives the flow.
    h.set_capacity(2, 5_000.0);
    h.solve_and_check(1);
    assert_eq!(h.inc.rate(1), 5_000.0);
}
