//! End-to-end tests of the packet-level world: raw TCP over wireless
//! channels, the BitTorrent overlay, and the AM filter in the datapath.

use bittorrent::client::ClientConfig;
use bittorrent::metainfo::Metainfo;
use p2p_simulation::packet::{PacketConfig, PacketWorld};
use simnet::time::{SimDuration, SimTime};
use simnet::wireless::{Direction, WirelessConfig};
use wp2p::am::AmConfig;

fn wlan(bytes_per_sec: u64) -> WirelessConfig {
    WirelessConfig {
        bandwidth_bps: bytes_per_sec * 8,
        prop_delay: SimDuration::from_millis(2),
        queue_frames: 100,
        ber: 0.0,
        per_frame_overhead: SimDuration::from_micros(100),
    }
}

#[test]
fn raw_tcp_transfer_over_wireless() {
    let mut w = PacketWorld::new(PacketConfig::default(), 1);
    let mobile = w.add_node(Some(wlan(500_000)));
    let fixed = w.add_node(None);
    let c = w.open_tcp(mobile, fixed);
    // Download direction: fixed (b side) sends to mobile (a side).
    w.tcp_write(c, false, 1_000_000);
    w.run_until(SimTime::from_secs(60), |_| {});
    assert_eq!(w.tcp_delivered(c, true), 1_000_000);
    // The channel carried both directions.
    assert!(w.channel_stats(mobile, Direction::Down).delivered > 0);
    assert!(w.channel_stats(mobile, Direction::Up).delivered > 0, "ACKs");
}

#[test]
fn bit_errors_degrade_but_do_not_break_tcp() {
    let mut w = PacketWorld::new(PacketConfig::default(), 2);
    let mobile = w.add_node(Some(wlan(500_000)));
    let fixed = w.add_node(None);
    w.set_ber(mobile, 1e-5);
    let c = w.open_tcp(mobile, fixed);
    w.tcp_write(c, false, 300_000);
    w.run_until(SimTime::from_secs(120), |_| {});
    assert_eq!(w.tcp_delivered(c, true), 300_000);
    let ep = w.endpoint(c, false).unwrap();
    assert!(
        ep.stats().retransmissions > 0,
        "BER 1e-5 must cause retransmissions"
    );
}

#[test]
fn bidirectional_tcp_self_contends_on_the_channel() {
    // One connection, simultaneous data both ways, one shared channel:
    // total goodput is bounded by the single channel capacity.
    let mut w = PacketWorld::new(PacketConfig::default(), 3);
    let mobile = w.add_node(Some(wlan(250_000)));
    let fixed = w.add_node(None);
    let c = w.open_tcp(mobile, fixed);
    w.tcp_write(c, true, 2_000_000);
    w.tcp_write(c, false, 2_000_000);
    w.run_until(SimTime::from_secs(10), |_| {});
    let down = w.tcp_delivered(c, true);
    let up = w.tcp_delivered(c, false);
    let total = (down + up) as f64;
    // 10 s at 250 kB/s shared = 2.5 MB ceiling (minus overheads).
    assert!(total < 2_500_000.0, "exceeded channel capacity: {total}");
    assert!(total > 1_200_000.0, "far below channel capacity: {total}");
    assert!(down > 0 && up > 0, "both directions progressed");
}

#[test]
fn am_filter_decouples_acks_on_young_connections() {
    let mut w = PacketWorld::new(PacketConfig::default(), 4);
    let mobile = w.add_node(Some(wlan(500_000)));
    let fixed = w.add_node(None);
    w.set_am(mobile, AmConfig::default());
    let c = w.open_tcp(mobile, fixed);
    // Bidirectional exchange so the mobile host has data to piggyback on.
    w.tcp_write(c, true, 200_000);
    w.tcp_write(c, false, 200_000);
    w.run_until(SimTime::from_secs(30), |_| {});
    let stats = w.am_stats(c, true).expect("AM enabled on mobile side");
    assert!(
        stats.decoupled > 0,
        "young phase should decouple some ACKs: {stats:?}"
    );
    // The transfer still completes with the filter in the path.
    assert_eq!(w.tcp_delivered(c, true), 200_000);
    assert_eq!(w.tcp_delivered(c, false), 200_000);
}

#[test]
fn bittorrent_over_packet_tcp_completes() {
    let meta = Metainfo::synthetic("pkt.bin", "tr", 64 * 1024, 512 * 1024, 9);
    let ih = meta.info.info_hash();
    let mut w = PacketWorld::new(PacketConfig::default(), 5);
    let seed = w.add_node(None);
    let leech = w.add_node(Some(wlan(500_000)));
    w.add_client(
        seed,
        ClientConfig::default(),
        ih,
        meta.info.piece_length,
        meta.info.length,
        16 * 1024,
        true,
    );
    w.add_client(
        leech,
        ClientConfig::default(),
        ih,
        meta.info.piece_length,
        meta.info.length,
        16 * 1024,
        false,
    );
    w.start_clients();
    w.run_until(SimTime::from_secs(120), |_| {});
    let client = w.client(leech).expect("leech alive");
    assert!(
        client.is_seed(),
        "download incomplete: {} of {} bytes",
        client.progress().bytes_downloaded(),
        meta.info.length
    );
    assert_eq!(w.delivered_down(leech), 512 * 1024);
    assert_eq!(w.delivered_up(seed), 512 * 1024);
}

#[test]
fn leech_to_leech_exchange_with_complementary_halves() {
    // The Fig. 8(a) scenario: two leeches holding complementary halves
    // (as after a removed seed) finish from each other over bi-directional
    // TCP on their wireless legs.
    use bittorrent::progress::TorrentProgress;
    let meta = Metainfo::synthetic("ex.bin", "tr", 64 * 1024, 1024 * 1024, 10);
    let ih = meta.info.info_hash();
    let mut w = PacketWorld::new(PacketConfig::default(), 6);
    let l1 = w.add_node(Some(wlan(400_000)));
    let l2 = w.add_node(Some(wlan(400_000)));
    let num_pieces = meta.info.num_pieces();
    let mut p1 =
        TorrentProgress::with_block_size(meta.info.piece_length, meta.info.length, 16 * 1024);
    let mut p2 =
        TorrentProgress::with_block_size(meta.info.piece_length, meta.info.length, 16 * 1024);
    for piece in 0..num_pieces {
        if piece % 2 == 0 {
            p1.mark_piece_complete(piece);
        } else {
            p2.mark_piece_complete(piece);
        }
    }
    w.add_client_with_progress(l1, ClientConfig::default(), ih, p1);
    w.add_client_with_progress(l2, ClientConfig::default(), ih, p2);
    w.start_clients();
    w.run_until(SimTime::from_secs(300), |_| {});
    let c1 = w.client(l1).unwrap();
    let c2 = w.client(l2).unwrap();
    assert!(
        c1.is_seed() && c2.is_seed(),
        "leech-to-leech exchange incomplete: {:.2} / {:.2}",
        c1.progress().downloaded_fraction(),
        c2.progress().downloaded_fraction()
    );
    // Data flowed both ways over a single bi-directional connection pair.
    assert!(w.delivered_down(l1) >= 512 * 1024 - 64 * 1024);
    assert!(w.delivered_down(l2) >= 512 * 1024 - 64 * 1024);
}

#[test]
fn deterministic_given_seed() {
    let run = |seed: u64| {
        let mut w = PacketWorld::new(PacketConfig::default(), seed);
        let mobile = w.add_node(Some(wlan(300_000)));
        let fixed = w.add_node(None);
        w.set_ber(mobile, 5e-6);
        let c = w.open_tcp(mobile, fixed);
        w.tcp_write(c, false, 500_000);
        w.run_until(SimTime::from_secs(60), |_| {});
        (
            w.tcp_delivered(c, true),
            w.endpoint(c, false).unwrap().stats().retransmissions,
        )
    };
    assert_eq!(run(42), run(42));
}

/// Packet-level experiment drivers are deterministic too.
#[test]
fn fig2a_driver_is_deterministic() {
    use metrics::handle::MetricsHandle;
    use p2p_simulation::experiments::fig2::{run_fig2a_with, Fig2aParams, FIG2A_SEED};
    let params = Fig2aParams {
        bers: vec![1.0e-5],
        runs: 1,
        duration: SimDuration::from_secs(10),
        channel_bytes_per_sec: 50_000,
        delayed_ack: false,
    };
    let a = run_fig2a_with(&params, &MetricsHandle::disabled(), FIG2A_SEED);
    let b = run_fig2a_with(&params, &MetricsHandle::disabled(), FIG2A_SEED);
    assert_eq!(a[0].bi.mean, b[0].bi.mean);
    assert_eq!(a[0].uni.mean, b[0].uni.mean);
}
