//! Deterministic randomness.
//!
//! Every stochastic decision in the simulator (bit-error draws, picker
//! tie-breaks, peer behaviour jitter) flows from a single `u64` experiment
//! seed through [`SimRng`]. Component streams are derived with
//! [`SimRng::fork`], so adding a new consumer of randomness in one module
//! does not perturb the draws seen by another — the property that keeps
//! regression tests on full experiment outputs stable.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable random-number generator with simulation-oriented helpers.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

/// SplitMix64 finalizer; used to decorrelate forked stream seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl SimRng {
    /// Creates a generator from an experiment seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(splitmix64(seed)),
            seed,
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent stream for a named component.
    ///
    /// Forks with the same `(seed, stream)` pair always produce the same
    /// sequence, regardless of how much the parent has been used.
    pub fn fork(&self, stream: u64) -> SimRng {
        SimRng::new(splitmix64(self.seed ^ splitmix64(stream.wrapping_add(1))))
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform sample from a range, e.g. `rng.range(0..10)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// Used for memoryless inter-arrival processes (peer churn, jittered
    /// timers). Returns zero for non-positive means.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF; 1-u avoids ln(0).
        let u: f64 = self.inner.gen::<f64>();
        -mean * (1.0 - u).ln()
    }

    /// Picks a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.range(0..items.len());
            Some(&items[i])
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0..=i);
            items.swap(i, j);
        }
    }

    /// Multiplicative jitter: a uniform sample from
    /// `[base·(1−spread), base·(1+spread)]`.
    pub fn jitter(&mut self, base: f64, spread: f64) -> f64 {
        let spread = spread.clamp(0.0, 1.0);
        if spread == 0.0 {
            return base;
        }
        base * (1.0 + self.range(-spread..=spread))
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_parent_usage() {
        let parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        // Burn some draws on parent2 before forking.
        for _ in 0..50 {
            parent2.next_u64();
        }
        let mut f1 = parent1.fork(3);
        let mut f2 = parent2.fork(3);
        for _ in 0..20 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn fork_streams_differ() {
        let root = SimRng::new(9);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(0);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_is_calibrated() {
        let mut rng = SimRng::new(123);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exp_mean_is_plausible() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exp(2.0)).sum();
        let mean = sum / n as f64;
        assert!((1.9..2.1).contains(&mean), "mean={mean}");
        assert_eq!(rng.exp(0.0), 0.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(77);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let x = rng.jitter(100.0, 0.1);
            assert!((90.0..=110.0).contains(&x));
        }
        assert_eq!(rng.jitter(5.0, 0.0), 5.0);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert!(rng.choose(&[42]).is_some());
    }
}
