//! Deterministic randomness.
//!
//! Every stochastic decision in the simulator (bit-error draws, picker
//! tie-breaks, peer behaviour jitter) flows from a single `u64` experiment
//! seed through [`SimRng`]. Component streams are derived with
//! [`SimRng::fork`], so adding a new consumer of randomness in one module
//! does not perturb the draws seen by another — the property that keeps
//! regression tests on full experiment outputs stable.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna),
//! state-seeded through SplitMix64. No external crates: the workspace
//! builds in a fully offline environment, and a ~30-line PRNG whose
//! sequence we control end-to-end is also what makes the parallel sweep
//! harness byte-reproducible across machines and toolchain updates.

/// A seedable random-number generator with simulation-oriented helpers.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 finalizer; used to expand seeds and decorrelate forked
/// stream seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl SimRng {
    /// Creates a generator from an experiment seed.
    pub fn new(seed: u64) -> Self {
        // Expand the 64-bit seed into 256 bits of state with SplitMix64,
        // as the xoshiro authors recommend. A SplitMix64 stream never
        // yields four consecutive zeros, so the state is always valid.
        let mut s = splitmix64(seed);
        let mut state = [0u64; 4];
        for w in &mut state {
            s = splitmix64(s);
            *w = s;
        }
        SimRng { state, seed }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent stream for a named component.
    ///
    /// Forks with the same `(seed, stream)` pair always produce the same
    /// sequence, regardless of how much the parent has been used.
    pub fn fork(&self, stream: u64) -> SimRng {
        SimRng::new(splitmix64(self.seed ^ splitmix64(stream.wrapping_add(1))))
    }

    /// Next 64 uniformly random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform integer in `[0, bound)` via the widening-multiply method
    /// (bias ≤ 2⁻⁶⁴·bound, far below anything an experiment can observe).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform sample from a range, e.g. `rng.range(0..10)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: Sample,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// Used for memoryless inter-arrival processes (peer churn, jittered
    /// timers). Returns zero for non-positive means.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF; 1-u avoids ln(0).
        let u: f64 = self.unit();
        -mean * (1.0 - u).ln()
    }

    /// Picks a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.range(0..items.len());
            Some(&items[i])
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0..=i);
            items.swap(i, j);
        }
    }

    /// Multiplicative jitter: a uniform sample from
    /// `[base·(1−spread), base·(1+spread)]`.
    pub fn jitter(&mut self, base: f64, spread: f64) -> f64 {
        let spread = spread.clamp(0.0, 1.0);
        if spread == 0.0 {
            return base;
        }
        base * (1.0 + self.range(-spread..=spread))
    }
}

/// Types [`SimRng::range`] can sample uniformly.
pub trait Sample: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Callers guarantee a non-empty range.
    fn sample_between(rng: &mut SimRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample_between(rng: &mut SimRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                // Span arithmetic in u64 handles negative bounds too
                // (two's-complement subtraction gives the distance).
                let span = (hi as u64).wrapping_sub(lo as u64);
                let span = if inclusive {
                    if span == u64::MAX {
                        // Full domain: a raw draw is already uniform.
                        return rng.next_u64() as $t;
                    }
                    span + 1
                } else {
                    span
                };
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for f64 {
    fn sample_between(rng: &mut SimRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
        // The closed/half-open distinction is measure-zero for floats.
        lo + rng.unit() * (hi - lo)
    }
}

impl Sample for f32 {
    fn sample_between(rng: &mut SimRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + rng.unit() as f32 * (hi - lo)
    }
}

/// Range shapes [`SimRng::range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut SimRng) -> T;
}

impl<T: Sample> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: Sample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

impl crate::snapshot::Snap for SimRng {
    fn snap(&self, w: &mut crate::snapshot::SnapWriter) {
        for word in self.state {
            w.put_u64(word);
        }
        w.put_u64(self.seed);
    }
    fn unsnap(r: &mut crate::snapshot::SnapReader<'_>) -> Self {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.get_u64();
        }
        SimRng {
            state,
            seed: r.get_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_parent_usage() {
        let parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        // Burn some draws on parent2 before forking.
        for _ in 0..50 {
            parent2.next_u64();
        }
        let mut f1 = parent1.fork(3);
        let mut f2 = parent2.fork(3);
        for _ in 0..20 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn fork_streams_differ() {
        let root = SimRng::new(9);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(0);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_is_calibrated() {
        let mut rng = SimRng::new(123);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exp_mean_is_plausible() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exp(2.0)).sum();
        let mean = sum / n as f64;
        assert!((1.9..2.1).contains(&mean), "mean={mean}");
        assert_eq!(rng.exp(0.0), 0.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(77);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let x = rng.jitter(100.0, 0.1);
            assert!((90.0..=110.0).contains(&x));
        }
        assert_eq!(rng.jitter(5.0, 0.0), 5.0);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert!(rng.choose(&[42]).is_some());
    }

    #[test]
    fn range_signed_and_unsigned_bounds() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let x: i64 = rng.range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let y: u8 = rng.range(0..=u8::MAX);
            let _ = y; // full domain must not panic
            let z: usize = rng.range(3..4);
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn range_covers_both_endpoints_inclusive() {
        let mut rng = SimRng::new(21);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen={seen:?}");
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = SimRng::new(33);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SimRng::new(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
