//! Point-to-point (wired) link model.
//!
//! A [`Link`] is a unidirectional pipe with finite bandwidth, a fixed
//! propagation delay, a drop-tail queue measured in packets, and an
//! optional random bit-error rate. A full-duplex wired link is simply two
//! `Link`s, one per direction — wired up/down directions do **not** share
//! capacity (contrast with [`crate::wireless::WirelessChannel`]).
//!
//! The link is a passive calculator rather than an event source: the caller
//! offers a packet with [`Link::send`] and receives back *when* (and
//! whether) it is delivered, then schedules the delivery event itself. This
//! keeps the model free of callbacks and trivially testable.

use crate::rng::SimRng;
use crate::time::{transmission_delay, SimDuration, SimTime};
use std::collections::VecDeque;

/// Static parameters of a link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Serialization bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// Drop-tail queue capacity in packets (packets waiting or in flight on
    /// the transmitter). When the queue is full new packets are dropped.
    pub queue_packets: usize,
    /// Random bit-error rate. A packet of `n` bytes is lost with probability
    /// `1 − (1 − ber)^(8n)` — longer packets are proportionally more
    /// vulnerable, which is the effect the paper's §3.2 builds on.
    pub ber: f64,
}

impl LinkConfig {
    /// A typical residential broadband downlink: 4 Mbit/s, 20 ms, 50-packet
    /// queue, error-free (the paper's Comcast reference, §3.3).
    pub fn wired_downlink() -> Self {
        LinkConfig {
            bandwidth_bps: 4_000_000,
            prop_delay: SimDuration::from_millis(20),
            queue_packets: 50,
            ber: 0.0,
        }
    }

    /// The matching 384 kbit/s uplink.
    pub fn wired_uplink() -> Self {
        LinkConfig {
            bandwidth_bps: 384_000,
            prop_delay: SimDuration::from_millis(20),
            queue_packets: 50,
            ber: 0.0,
        }
    }

    /// A fast, short backbone hop used between fixed peers.
    pub fn backbone() -> Self {
        LinkConfig {
            bandwidth_bps: 100_000_000,
            prop_delay: SimDuration::from_millis(5),
            queue_packets: 200,
            ber: 0.0,
        }
    }
}

/// Why a packet offered to a link failed to get through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The drop-tail queue was full (congestion loss).
    BufferFull,
    /// The packet was corrupted by random bit errors in flight.
    BitError,
}

/// Result of offering a packet to a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// The packet will arrive at the far end at the given instant.
    Delivered {
        /// Arrival time of the last bit at the receiver.
        at: SimTime,
    },
    /// The packet was lost. Bit-error losses still consume transmission
    /// time (the bits went on the wire); buffer drops do not.
    Dropped {
        /// Why the packet was lost.
        reason: DropReason,
    },
}

impl SendOutcome {
    /// Convenience accessor for the delivery time.
    pub fn delivered_at(self) -> Option<SimTime> {
        match self {
            SendOutcome::Delivered { at } => Some(at),
            SendOutcome::Dropped { .. } => None,
        }
    }
}

/// Cumulative link counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted into the queue.
    pub accepted: u64,
    /// Packets delivered to the far end.
    pub delivered: u64,
    /// Packets dropped because the queue was full.
    pub dropped_buffer: u64,
    /// Packets corrupted by bit errors.
    pub dropped_error: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
}

/// A unidirectional link. See the module docs for the interaction model.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    /// Transmission-completion times of packets accepted but possibly still
    /// serializing; the front entries expire as `now` advances.
    completions: VecDeque<SimTime>,
    /// When the transmitter becomes free.
    busy_until: SimTime,
    stats: LinkStats,
}

impl Link {
    /// Creates a link with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero or `queue_packets` is zero.
    pub fn new(config: LinkConfig) -> Self {
        assert!(config.bandwidth_bps > 0, "link bandwidth must be positive");
        assert!(
            config.queue_packets > 0,
            "queue must hold at least 1 packet"
        );
        assert!(
            (0.0..1.0).contains(&config.ber),
            "BER must be in [0, 1): {}",
            config.ber
        );
        Link {
            config,
            completions: VecDeque::new(),
            busy_until: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// The link's static parameters.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Updates the bit-error rate (used by experiments that sweep BER).
    pub fn set_ber(&mut self, ber: f64) {
        assert!((0.0..1.0).contains(&ber));
        self.config.ber = ber;
    }

    /// Probability that a packet of `bytes` is corrupted in flight.
    pub fn packet_error_rate(&self, bytes: u32) -> f64 {
        packet_error_rate(self.config.ber, bytes)
    }

    fn expire(&mut self, now: SimTime) {
        while let Some(&front) = self.completions.front() {
            if front <= now {
                self.completions.pop_front();
            } else {
                break;
            }
        }
    }

    /// Packets currently queued or serializing.
    pub fn queue_len(&mut self, now: SimTime) -> usize {
        self.expire(now);
        self.completions.len()
    }

    /// Offers a packet of `bytes` to the link at time `now`.
    ///
    /// On success the returned instant is when the last bit arrives at the
    /// receiver (serialization behind any queued packets, plus propagation).
    pub fn send(&mut self, now: SimTime, bytes: u32, rng: &mut SimRng) -> SendOutcome {
        self.expire(now);
        if self.completions.len() >= self.config.queue_packets {
            self.stats.dropped_buffer += 1;
            return SendOutcome::Dropped {
                reason: DropReason::BufferFull,
            };
        }
        let start = self.busy_until.max(now);
        let finish = start + transmission_delay(bytes as u64, self.config.bandwidth_bps);
        self.busy_until = finish;
        self.completions.push_back(finish);
        self.stats.accepted += 1;

        if rng.chance(self.packet_error_rate(bytes)) {
            self.stats.dropped_error += 1;
            return SendOutcome::Dropped {
                reason: DropReason::BitError,
            };
        }
        self.stats.delivered += 1;
        self.stats.bytes_delivered += bytes as u64;
        SendOutcome::Delivered {
            at: finish + self.config.prop_delay,
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Resets counters (queue state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = LinkStats::default();
    }
}

/// `1 − (1 − ber)^(8·bytes)`, computed in log space for numeric stability at
/// the small BERs the paper sweeps (1e-6 … 2e-5).
pub fn packet_error_rate(ber: f64, bytes: u32) -> f64 {
    if ber <= 0.0 {
        return 0.0;
    }
    if ber >= 1.0 {
        return 1.0;
    }
    let bits = (bytes as f64) * 8.0;
    1.0 - ((1.0 - ber).ln() * bits).exp()
}

use crate::snapshot::{Snap, SnapReader, SnapWriter};

impl Snap for LinkConfig {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.bandwidth_bps);
        self.prop_delay.snap(w);
        w.put_usize(self.queue_packets);
        w.put_f64(self.ber);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        LinkConfig {
            bandwidth_bps: r.get_u64(),
            prop_delay: Snap::unsnap(r),
            queue_packets: r.get_usize(),
            ber: r.get_f64(),
        }
    }
}

impl Snap for LinkStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.accepted);
        w.put_u64(self.delivered);
        w.put_u64(self.dropped_buffer);
        w.put_u64(self.dropped_error);
        w.put_u64(self.bytes_delivered);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        LinkStats {
            accepted: r.get_u64(),
            delivered: r.get_u64(),
            dropped_buffer: r.get_u64(),
            dropped_error: r.get_u64(),
            bytes_delivered: r.get_u64(),
        }
    }
}

impl Snap for Link {
    fn snap(&self, w: &mut SnapWriter) {
        self.config.snap(w);
        self.completions.snap(w);
        self.busy_until.snap(w);
        self.stats.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        Link {
            config: Snap::unsnap(r),
            completions: Snap::unsnap(r),
            busy_until: Snap::unsnap(r),
            stats: Snap::unsnap(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_link(bw: u64, queue: usize) -> Link {
        Link::new(LinkConfig {
            bandwidth_bps: bw,
            prop_delay: SimDuration::from_millis(10),
            queue_packets: queue,
            ber: 0.0,
        })
    }

    #[test]
    fn delivery_time_includes_serialization_and_propagation() {
        let mut link = quiet_link(8_000_000, 10); // 1 byte per microsecond
        let mut rng = SimRng::new(0);
        let out = link.send(SimTime::ZERO, 1000, &mut rng);
        // 1000 us serialization + 10 ms propagation.
        assert_eq!(
            out,
            SendOutcome::Delivered {
                at: SimTime::from_micros(11_000)
            }
        );
    }

    #[test]
    fn back_to_back_packets_serialize() {
        let mut link = quiet_link(8_000_000, 10);
        let mut rng = SimRng::new(0);
        let a = link
            .send(SimTime::ZERO, 1000, &mut rng)
            .delivered_at()
            .unwrap();
        let b = link
            .send(SimTime::ZERO, 1000, &mut rng)
            .delivered_at()
            .unwrap();
        assert_eq!(b - a, SimDuration::from_micros(1000));
    }

    #[test]
    fn queue_overflow_drops() {
        let mut link = quiet_link(8_000, 2); // slow: 1 ms per byte
        let mut rng = SimRng::new(0);
        assert!(matches!(
            link.send(SimTime::ZERO, 100, &mut rng),
            SendOutcome::Delivered { .. }
        ));
        assert!(matches!(
            link.send(SimTime::ZERO, 100, &mut rng),
            SendOutcome::Delivered { .. }
        ));
        let third = link.send(SimTime::ZERO, 100, &mut rng);
        assert_eq!(
            third,
            SendOutcome::Dropped {
                reason: DropReason::BufferFull
            }
        );
        assert_eq!(link.stats().dropped_buffer, 1);
    }

    #[test]
    fn queue_drains_with_time() {
        let mut link = quiet_link(8_000, 1); // 100 bytes take 100 ms
        let mut rng = SimRng::new(0);
        assert!(matches!(
            link.send(SimTime::ZERO, 100, &mut rng),
            SendOutcome::Delivered { .. }
        ));
        // Immediately full...
        assert!(matches!(
            link.send(SimTime::ZERO, 100, &mut rng),
            SendOutcome::Dropped { .. }
        ));
        // ...but after the first packet finishes, space again.
        let later = SimTime::from_millis(150);
        assert_eq!(link.queue_len(later), 0);
        assert!(matches!(
            link.send(later, 100, &mut rng),
            SendOutcome::Delivered { .. }
        ));
    }

    #[test]
    fn per_is_zero_without_errors_and_grows_with_size() {
        assert_eq!(packet_error_rate(0.0, 1500), 0.0);
        let small = packet_error_rate(1e-5, 40);
        let large = packet_error_rate(1e-5, 1500);
        assert!(large > small, "longer packets must be lossier");
        // Sanity: PER(1e-5, 1500B) = 1-(1-1e-5)^12000 ~ 0.113
        assert!((0.10..0.13).contains(&large), "per={large}");
    }

    #[test]
    fn bit_errors_lose_packets_at_the_right_rate() {
        let mut link = Link::new(LinkConfig {
            bandwidth_bps: 1_000_000_000,
            prop_delay: SimDuration::ZERO,
            queue_packets: 1_000_000,
            ber: 1e-5,
        });
        let mut rng = SimRng::new(11);
        let n = 20_000;
        let mut lost = 0;
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            if link.send(t, 1500, &mut rng).delivered_at().is_none() {
                lost += 1;
            }
            t += SimDuration::from_millis(1);
        }
        let rate = lost as f64 / n as f64;
        let expect = packet_error_rate(1e-5, 1500);
        assert!(
            (rate - expect).abs() < 0.02,
            "rate={rate}, expected≈{expect}"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Link::new(LinkConfig {
            bandwidth_bps: 0,
            prop_delay: SimDuration::ZERO,
            queue_packets: 1,
            ber: 0.0,
        });
    }
}
