//! # simnet — deterministic discrete-event network simulation
//!
//! The substrate for the wP2P reproduction ("On the Impact of Mobile Hosts
//! in Peer-to-Peer Data Networks", ICDCS 2008). It provides:
//!
//! * [`time`] — exact microsecond virtual time ([`time::SimTime`],
//!   [`time::SimDuration`]).
//! * [`event`] / [`sim`] — a cancellable event queue and the
//!   [`sim::Simulator`] driver, generic over the embedder's event enum.
//! * [`rng`] — a single-seed, forkable random stream ([`rng::SimRng`]) so
//!   whole experiments are reproducible.
//! * [`addr`] — node identity vs. network address, with hand-off
//!   reassignment.
//! * [`link`] — wired point-to-point links (bandwidth, delay, drop-tail
//!   queue, BER).
//! * [`wireless`] — a shared half-duplex channel where uplink and downlink
//!   contend for the same capacity, the defining constraint of the paper.
//! * [`mobility`] — hand-off schedules with outage windows.
//! * [`hash`] — a deterministic FxHash-style hasher for the hot maps
//!   (cross-process-stable iteration, cheap integer keys).
//! * [`fault`] — seeded deterministic fault plans (loss bursts,
//!   black-holes, address churn, tracker outages, bandwidth squeezes,
//!   crash/restart) replayed into any world implementing
//!   [`fault::FaultHooks`].
//!
//! Statistics helpers and the bounded event trace formerly at
//! `simnet::stats` / `simnet::trace` moved to the `metrics` crate,
//! which unifies them with counters, gauges, histograms, and the
//! series recorder behind one `MetricsHandle`.
//!
//! ## Example
//!
//! ```
//! use simnet::prelude::*;
//!
//! // One mobile host behind a lossy wireless channel.
//! let mut ch = WirelessChannel::new(WirelessConfig::wlan_80211g());
//! ch.set_ber(1e-5);
//! let mut rng = SimRng::new(1);
//! let mut sim: Simulator<&str> = Simulator::new();
//!
//! match ch.send(sim.now(), Direction::Up, 1500, &mut rng) {
//!     SendOutcome::Delivered { at } => { sim.schedule_at(at, "frame arrives"); }
//!     SendOutcome::Dropped { .. } => { /* the sender's loss recovery reacts */ }
//! }
//! sim.run(|_, _, _| Step::Continue);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod event;
pub mod fault;
pub mod hash;
pub mod link;
pub mod mobility;
pub mod rng;
pub mod sim;
pub mod snapshot;
pub mod time;
pub mod wireless;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::addr::{AddressBook, NodeId, SimAddr};
    pub use crate::event::{EventQueue, EventToken};
    pub use crate::fault::{
        FaultEvent, FaultHooks, FaultInjector, FaultKind, FaultPlan, FaultPlanConfig,
    };
    pub use crate::link::{DropReason, Link, LinkConfig, SendOutcome};
    pub use crate::mobility::{Handoff, MobilityProcess};
    pub use crate::rng::SimRng;
    pub use crate::sim::{Simulator, Step};
    pub use crate::time::{transmission_delay, SimDuration, SimTime};
    pub use crate::wireless::{Direction, DirectionStats, WirelessChannel, WirelessConfig};
}
