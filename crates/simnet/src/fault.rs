//! Deterministic fault injection.
//!
//! The paper's claims are all claims about behaviour under adversity —
//! lossy wireless legs (§3.2), hand-offs that destroy peer identity
//! (§3.4), seeds that vanish mid-swarm (§5). A [`FaultPlan`] turns that
//! adversity into *data*: a seeded, pre-computed schedule of fault events
//! that a simulation world replays exactly. Same seed ⇒ byte-identical
//! schedule ([`FaultPlan::render`]) ⇒ byte-identical simulation trace, so
//! every failure a fuzzing sweep finds becomes a one-line reproducible
//! regression.
//!
//! The pieces:
//!
//! * [`FaultKind`] / [`FaultEvent`] — the fault vocabulary: loss bursts,
//!   link black-holes, address churn, tracker outages, bandwidth
//!   squeezes, peer crash/restart.
//! * [`FaultPlan`] — an ordered schedule, either hand-built
//!   ([`FaultPlan::push`]) or generated from a seed
//!   ([`FaultPlan::generate`]).
//! * [`FaultHooks`] — the world-side surface. Both simulation worlds
//!   (flow and packet) implement it; each documents how it approximates
//!   faults its model cannot express literally.
//! * [`FaultInjector`] — the replay driver: expands windowed faults into
//!   begin/end actions and applies every action that has come due, from
//!   the world's `run_until` callback.
//!
//! ```
//! use simnet::fault::{FaultPlan, FaultPlanConfig};
//! use simnet::addr::NodeId;
//! use simnet::time::SimDuration;
//!
//! let cfg = FaultPlanConfig::new(SimDuration::from_secs(600), vec![NodeId(1)]);
//! let a = FaultPlan::generate(42, &cfg);
//! let b = FaultPlan::generate(42, &cfg);
//! assert_eq!(a.render(), b.render()); // byte-identical schedule
//! ```

use crate::addr::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The node's wireless leg turns lossy: bit-error rate `ber` for
    /// `duration`, then back to its pre-fault value.
    LossBurst {
        /// Affected node.
        node: NodeId,
        /// Bit-error rate during the burst.
        ber: f64,
        /// Length of the burst.
        duration: SimDuration,
    },
    /// All traffic to and from the node silently disappears for
    /// `duration` — the link is up as far as both ends can tell, nothing
    /// arrives (the paper's "fixed peers continue to try to reach the
    /// mobile peer").
    LinkBlackhole {
        /// Affected node.
        node: NodeId,
        /// Length of the outage.
        duration: SimDuration,
    },
    /// The node instantly moves to a fresh network address (a hand-off
    /// with a negligible outage window).
    AddressChurn {
        /// Affected node.
        node: NodeId,
    },
    /// The tracker is unreachable for `duration`: announces go
    /// unanswered and register nothing.
    TrackerOutage {
        /// Length of the outage.
        duration: SimDuration,
    },
    /// The node's access capacity is scaled by `factor` (in `(0, 1]`)
    /// for `duration`, then restored.
    BandwidthSqueeze {
        /// Affected node.
        node: NodeId,
        /// Capacity multiplier during the squeeze.
        factor: f64,
        /// Length of the squeeze.
        duration: SimDuration,
    },
    /// The node's client process dies losing all connections, and
    /// restarts `downtime` later from its persisted progress.
    PeerCrash {
        /// Affected node.
        node: NodeId,
        /// Time until the restart.
        downtime: SimDuration,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::LossBurst {
                node,
                ber,
                duration,
            } => {
                write!(
                    f,
                    "loss-burst node={} ber={:e} for {}",
                    node.0, ber, duration
                )
            }
            FaultKind::LinkBlackhole { node, duration } => {
                write!(f, "blackhole node={} for {}", node.0, duration)
            }
            FaultKind::AddressChurn { node } => write!(f, "addr-churn node={}", node.0),
            FaultKind::TrackerOutage { duration } => {
                write!(f, "tracker-outage for {}", duration)
            }
            FaultKind::BandwidthSqueeze {
                node,
                factor,
                duration,
            } => write!(
                f,
                "bw-squeeze node={} factor={:.3} for {}",
                node.0, factor, duration
            ),
            FaultKind::PeerCrash { node, downtime } => {
                write!(f, "crash node={} down {}", node.0, downtime)
            }
        }
    }
}

/// A fault scheduled at an absolute virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault begins.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Parameters for seeded plan generation.
#[derive(Clone, Debug)]
pub struct FaultPlanConfig {
    /// Faults are scheduled in `[0, horizon)`.
    pub horizon: SimDuration,
    /// Nodes eligible for node-scoped faults (must be non-empty).
    pub nodes: Vec<NodeId>,
    /// How many fault events to schedule.
    pub events: usize,
    /// Mean window length for windowed faults (exponentially
    /// distributed, clamped to `[1 s, horizon/2]`).
    pub mean_duration: SimDuration,
    /// Include tracker outages in the mix.
    pub tracker_outages: bool,
    /// Include crash/restart in the mix (worlds whose clients cannot be
    /// rebuilt may exclude them).
    pub crashes: bool,
}

impl FaultPlanConfig {
    /// A default mix over `nodes`: 6 events, 30 s mean windows, all
    /// fault kinds enabled.
    pub fn new(horizon: SimDuration, nodes: Vec<NodeId>) -> Self {
        FaultPlanConfig {
            horizon,
            nodes,
            events: 6,
            mean_duration: SimDuration::from_secs(30),
            tracker_outages: true,
            crashes: true,
        }
    }
}

/// A deterministic, ordered fault schedule. See the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan to [`push`](FaultPlan::push) events onto.
    pub fn empty(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Generates a random plan — a pure function of `(seed, cfg)`.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.nodes` is empty or `cfg.horizon` is zero.
    pub fn generate(seed: u64, cfg: &FaultPlanConfig) -> Self {
        assert!(!cfg.nodes.is_empty(), "no fault-eligible nodes");
        assert!(cfg.horizon > SimDuration::ZERO, "zero horizon");
        let root = SimRng::new(seed);
        let mut plan = FaultPlan::empty(seed);
        let horizon_us = cfg.horizon.as_micros();
        for i in 0..cfg.events {
            let mut r = root.fork(i as u64);
            let at = SimTime::from_micros(r.range(0..horizon_us.max(1)));
            let node = *r.choose(&cfg.nodes).expect("nodes non-empty");
            let dur_secs = r
                .exp(cfg.mean_duration.as_secs_f64())
                .clamp(1.0, (cfg.horizon.as_secs_f64() / 2.0).max(1.0));
            let duration = SimDuration::from_micros((dur_secs * 1e6) as u64);
            // Weighted kind choice; indices stay stable so schedules only
            // change when the config changes.
            let kinds: &[u32] = match (cfg.tracker_outages, cfg.crashes) {
                (true, true) => &[0, 1, 2, 3, 4, 5],
                (true, false) => &[0, 1, 2, 3, 4],
                (false, true) => &[0, 1, 2, 4, 5],
                (false, false) => &[0, 1, 2, 4],
            };
            let kind = match *r.choose(kinds).expect("kinds non-empty") {
                0 => FaultKind::LossBurst {
                    node,
                    // 1e-5..1e-4: enough to hurt long frames without
                    // severing the link outright.
                    ber: 1e-5 * 10f64.powf(r.unit()),
                    duration,
                },
                1 => FaultKind::LinkBlackhole { node, duration },
                2 => FaultKind::AddressChurn { node },
                3 => FaultKind::TrackerOutage { duration },
                4 => FaultKind::BandwidthSqueeze {
                    node,
                    factor: 0.1 + 0.6 * r.unit(),
                    duration,
                },
                _ => FaultKind::PeerCrash {
                    node,
                    downtime: duration,
                },
            };
            plan.push(at, kind);
        }
        plan
    }

    /// Adds a fault, keeping the schedule ordered by time (ties keep
    /// insertion order).
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, kind });
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the schedule, one event per line. Byte-identical for
    /// identical `(seed, config)` — the string regression tests pin.
    pub fn render(&self) -> String {
        let mut out = format!("fault plan seed={}\n", self.seed);
        for e in &self.events {
            out.push_str(&format!("[{}] {}\n", e.at, e.kind));
        }
        out
    }
}

/// The world-side fault surface.
///
/// Windowed faults arrive as begin/end pairs; the world remembers
/// whatever baseline it needs to restore. Implementations must tolerate
/// faults targeting nodes where they do not literally apply (e.g. a loss
/// burst on a wired node) by approximating or ignoring them —
/// documented per world.
pub trait FaultHooks {
    /// Current virtual time of the world (drives [`FaultInjector::poll`]).
    fn fault_now(&self) -> SimTime;
    /// A loss burst begins on `node`.
    fn begin_loss_burst(&mut self, node: NodeId, ber: f64);
    /// The loss burst on `node` ends; restore the baseline.
    fn end_loss_burst(&mut self, node: NodeId);
    /// All traffic to/from `node` starts silently vanishing.
    fn begin_blackhole(&mut self, node: NodeId);
    /// The black-hole on `node` ends.
    fn end_blackhole(&mut self, node: NodeId);
    /// `node` instantly moves to a fresh address.
    fn churn_address(&mut self, node: NodeId);
    /// The tracker stops answering.
    fn begin_tracker_outage(&mut self);
    /// The tracker is reachable again.
    fn end_tracker_outage(&mut self);
    /// `node`'s capacity is scaled by `factor`.
    fn begin_bandwidth_squeeze(&mut self, node: NodeId, factor: f64);
    /// The squeeze on `node` ends; restore full capacity.
    fn end_bandwidth_squeeze(&mut self, node: NodeId);
    /// `node`'s client crashes (connections become black holes).
    fn crash_peer(&mut self, node: NodeId);
    /// `node`'s client restarts from persisted progress.
    fn restart_peer(&mut self, node: NodeId);
}

/// One instantaneous action on the expanded timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
enum FaultAction {
    LossBurstStart(NodeId, f64),
    LossBurstEnd(NodeId),
    BlackholeStart(NodeId),
    BlackholeEnd(NodeId),
    AddressChurn(NodeId),
    TrackerOutageStart,
    TrackerOutageEnd,
    SqueezeStart(NodeId, f64),
    SqueezeEnd(NodeId),
    Crash(NodeId),
    Restart(NodeId),
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::LossBurstStart(n, ber) => {
                write!(f, "loss-burst-start node={} ber={:e}", n.0, ber)
            }
            FaultAction::LossBurstEnd(n) => write!(f, "loss-burst-end node={}", n.0),
            FaultAction::BlackholeStart(n) => write!(f, "blackhole-start node={}", n.0),
            FaultAction::BlackholeEnd(n) => write!(f, "blackhole-end node={}", n.0),
            FaultAction::AddressChurn(n) => write!(f, "addr-churn node={}", n.0),
            FaultAction::TrackerOutageStart => write!(f, "tracker-outage-start"),
            FaultAction::TrackerOutageEnd => write!(f, "tracker-outage-end"),
            FaultAction::SqueezeStart(n, x) => {
                write!(f, "bw-squeeze-start node={} factor={:.3}", n.0, x)
            }
            FaultAction::SqueezeEnd(n) => write!(f, "bw-squeeze-end node={}", n.0),
            FaultAction::Crash(n) => write!(f, "crash node={}", n.0),
            FaultAction::Restart(n) => write!(f, "restart node={}", n.0),
        }
    }
}

/// Replays a [`FaultPlan`] against a world.
///
/// Call [`poll`](FaultInjector::poll) from the world's `run_until`
/// callback; every action whose time has come is applied, in order.
pub struct FaultInjector {
    timeline: Vec<(SimTime, FaultAction)>,
    next: usize,
}

impl FaultInjector {
    /// Expands a plan's windowed faults into an ordered begin/end
    /// timeline.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut timeline: Vec<(SimTime, FaultAction)> = Vec::new();
        for e in plan.events() {
            match e.kind {
                FaultKind::LossBurst {
                    node,
                    ber,
                    duration,
                } => {
                    timeline.push((e.at, FaultAction::LossBurstStart(node, ber)));
                    timeline.push((e.at + duration, FaultAction::LossBurstEnd(node)));
                }
                FaultKind::LinkBlackhole { node, duration } => {
                    timeline.push((e.at, FaultAction::BlackholeStart(node)));
                    timeline.push((e.at + duration, FaultAction::BlackholeEnd(node)));
                }
                FaultKind::AddressChurn { node } => {
                    timeline.push((e.at, FaultAction::AddressChurn(node)));
                }
                FaultKind::TrackerOutage { duration } => {
                    timeline.push((e.at, FaultAction::TrackerOutageStart));
                    timeline.push((e.at + duration, FaultAction::TrackerOutageEnd));
                }
                FaultKind::BandwidthSqueeze {
                    node,
                    factor,
                    duration,
                } => {
                    timeline.push((e.at, FaultAction::SqueezeStart(node, factor)));
                    timeline.push((e.at + duration, FaultAction::SqueezeEnd(node)));
                }
                FaultKind::PeerCrash { node, downtime } => {
                    timeline.push((e.at, FaultAction::Crash(node)));
                    timeline.push((e.at + downtime, FaultAction::Restart(node)));
                }
            }
        }
        // Stable by time: simultaneous actions apply in plan order, ends
        // before later starts.
        timeline.sort_by_key(|&(at, _)| at);
        FaultInjector { timeline, next: 0 }
    }

    /// Applies every action due at or before the world's current time.
    /// Returns how many actions were applied by this call.
    pub fn poll(&mut self, hooks: &mut impl FaultHooks) -> usize {
        let now = hooks.fault_now();
        let mut applied = 0;
        while let Some(&(at, action)) = self.timeline.get(self.next) {
            if at > now {
                break;
            }
            self.next += 1;
            applied += 1;
            match action {
                FaultAction::LossBurstStart(n, ber) => hooks.begin_loss_burst(n, ber),
                FaultAction::LossBurstEnd(n) => hooks.end_loss_burst(n),
                FaultAction::BlackholeStart(n) => hooks.begin_blackhole(n),
                FaultAction::BlackholeEnd(n) => hooks.end_blackhole(n),
                FaultAction::AddressChurn(n) => hooks.churn_address(n),
                FaultAction::TrackerOutageStart => hooks.begin_tracker_outage(),
                FaultAction::TrackerOutageEnd => hooks.end_tracker_outage(),
                FaultAction::SqueezeStart(n, x) => hooks.begin_bandwidth_squeeze(n, x),
                FaultAction::SqueezeEnd(n) => hooks.end_bandwidth_squeeze(n),
                FaultAction::Crash(n) => hooks.crash_peer(n),
                FaultAction::Restart(n) => hooks.restart_peer(n),
            }
        }
        applied
    }

    /// Actions applied so far.
    pub fn applied(&self) -> usize {
        self.next
    }

    /// True when every action has been applied.
    pub fn finished(&self) -> bool {
        self.next >= self.timeline.len()
    }

    /// Fast-forwards the cursor past the first `applied` actions
    /// without invoking any hooks. Restoring a snapshot rebuilds the
    /// injector from the original plan and then skips the actions the
    /// saved world had already absorbed; their effects live in the
    /// world state itself.
    pub fn skip_to(&mut self, applied: usize) {
        self.next = applied.min(self.timeline.len());
    }

    /// Renders the expanded action timeline, one action per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (at, a) in &self.timeline {
            out.push_str(&format!("[{}] {}\n", at, a));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FaultPlanConfig {
        FaultPlanConfig::new(
            SimDuration::from_secs(600),
            vec![NodeId(0), NodeId(1), NodeId(2)],
        )
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::generate(7, &cfg());
        let b = FaultPlan::generate(7, &cfg());
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(1, &cfg());
        let b = FaultPlan::generate(2, &cfg());
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn events_are_time_ordered() {
        let p = FaultPlan::generate(3, &cfg());
        assert_eq!(p.len(), cfg().events);
        for w in p.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn push_keeps_order() {
        let mut p = FaultPlan::empty(0);
        p.push(
            SimTime::from_secs(10),
            FaultKind::AddressChurn { node: NodeId(0) },
        );
        p.push(
            SimTime::from_secs(5),
            FaultKind::TrackerOutage {
                duration: SimDuration::from_secs(1),
            },
        );
        p.push(
            SimTime::from_secs(10),
            FaultKind::AddressChurn { node: NodeId(1) },
        );
        let times: Vec<u64> = p.events().iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![5_000_000, 10_000_000, 10_000_000]);
        // Ties keep insertion order.
        assert_eq!(
            p.events()[1].kind,
            FaultKind::AddressChurn { node: NodeId(0) }
        );
    }

    #[test]
    fn injector_expands_windows() {
        let mut p = FaultPlan::empty(0);
        p.push(
            SimTime::from_secs(1),
            FaultKind::LinkBlackhole {
                node: NodeId(4),
                duration: SimDuration::from_secs(3),
            },
        );
        let inj = FaultInjector::new(&p);
        let r = inj.render();
        assert!(r.contains("blackhole-start node=4"));
        assert!(r.contains("blackhole-end node=4"));
        assert_eq!(r.lines().count(), 2);
    }

    #[test]
    fn injector_applies_in_order() {
        struct Log {
            now: SimTime,
            log: Vec<String>,
        }
        impl FaultHooks for Log {
            fn fault_now(&self) -> SimTime {
                self.now
            }
            fn begin_loss_burst(&mut self, n: NodeId, ber: f64) {
                self.log.push(format!("lb+{} {ber:e}", n.0));
            }
            fn end_loss_burst(&mut self, n: NodeId) {
                self.log.push(format!("lb-{}", n.0));
            }
            fn begin_blackhole(&mut self, n: NodeId) {
                self.log.push(format!("bh+{}", n.0));
            }
            fn end_blackhole(&mut self, n: NodeId) {
                self.log.push(format!("bh-{}", n.0));
            }
            fn churn_address(&mut self, n: NodeId) {
                self.log.push(format!("ac{}", n.0));
            }
            fn begin_tracker_outage(&mut self) {
                self.log.push("to+".into());
            }
            fn end_tracker_outage(&mut self) {
                self.log.push("to-".into());
            }
            fn begin_bandwidth_squeeze(&mut self, n: NodeId, x: f64) {
                self.log.push(format!("sq+{} {x:.3}", n.0));
            }
            fn end_bandwidth_squeeze(&mut self, n: NodeId) {
                self.log.push(format!("sq-{}", n.0));
            }
            fn crash_peer(&mut self, n: NodeId) {
                self.log.push(format!("cr{}", n.0));
            }
            fn restart_peer(&mut self, n: NodeId) {
                self.log.push(format!("rs{}", n.0));
            }
        }
        let mut p = FaultPlan::empty(0);
        p.push(
            SimTime::from_secs(2),
            FaultKind::TrackerOutage {
                duration: SimDuration::from_secs(2),
            },
        );
        p.push(
            SimTime::from_secs(1),
            FaultKind::PeerCrash {
                node: NodeId(0),
                downtime: SimDuration::from_secs(5),
            },
        );
        let mut inj = FaultInjector::new(&p);
        let mut w = Log {
            now: SimTime::ZERO,
            log: Vec::new(),
        };
        assert_eq!(inj.poll(&mut w), 0);
        w.now = SimTime::from_secs(3);
        assert_eq!(inj.poll(&mut w), 2);
        assert_eq!(w.log, vec!["cr0", "to+"]);
        w.now = SimTime::from_secs(60);
        inj.poll(&mut w);
        assert!(inj.finished());
        assert_eq!(w.log, vec!["cr0", "to+", "to-", "rs0"]);
    }
}
