//! Virtual time for the discrete-event simulator.
//!
//! Time is an unsigned count of **microseconds** since the start of the
//! simulation. Microsecond resolution is fine enough to order back-to-back
//! packet transmissions on multi-megabit links (a 1500-byte frame at
//! 54 Mbit/s lasts ~222 µs) while keeping arithmetic exact: no floating
//! point is involved in ordering events, so runs are bit-for-bit
//! reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant in virtual time, measured in microseconds from simulation start.
///
/// ```
/// use simnet::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
///
/// ```
/// use simnet::time::SimDuration;
/// assert_eq!(SimDuration::from_secs(2) / 4, SimDuration::from_millis(500));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "infinite" deadline).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    ///
    /// Returns `None` when `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1_000_000)
    }

    /// Creates a duration from a float second count, rounding to the nearest
    /// microsecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration in seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True for the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a float factor (used by backoff with jitter).
    /// Clamps non-finite or negative results to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `rhs` is later than `self`; saturates to
    /// zero in release builds.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(
            self.0 >= rhs.0,
            "SimTime subtraction went negative: {self} - {rhs}"
        );
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl std::ops::Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics when `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Computes the serialization (transmission) delay of `bytes` at
/// `bits_per_sec`, rounded up to a whole microsecond so that a nonzero
/// payload never transmits in zero time.
///
/// # Panics
///
/// Panics when `bits_per_sec` is zero.
///
/// ```
/// use simnet::time::{transmission_delay, SimDuration};
/// // 1250 bytes at 10 Mbit/s = 1 ms
/// assert_eq!(transmission_delay(1250, 10_000_000), SimDuration::from_millis(1));
/// ```
pub fn transmission_delay(bytes: u64, bits_per_sec: u64) -> SimDuration {
    assert!(bits_per_sec > 0, "link bandwidth must be positive");
    let bits = bytes * 8;
    // ceil(bits * 1e6 / bps) without overflow for realistic sizes.
    let micros = (bits as u128 * 1_000_000u128).div_ceil(bits_per_sec as u128);
    SimDuration(micros.min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimTime::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t0 = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::from_secs(1).checked_since(SimTime::from_secs(2)),
            None
        );
    }

    #[test]
    fn float_conversion_is_clamped() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn transmission_delay_rounds_up() {
        // 1 byte at 1 Gbit/s is 8 ns -> rounds up to 1 us.
        assert_eq!(
            transmission_delay(1, 1_000_000_000),
            SimDuration::from_micros(1)
        );
        // 1500 bytes at 54 Mbit/s ~ 222.2 us -> 223 us (ceiling).
        assert_eq!(
            transmission_delay(1500, 54_000_000),
            SimDuration::from_micros(223)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(25).to_string(), "0.000025s");
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d * 3, SimDuration::from_secs(6));
        assert_eq!(d / 4, SimDuration::from_millis(500));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
    }
}
