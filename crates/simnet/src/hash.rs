//! A fast, deterministic hasher for the simulation's hot maps.
//!
//! `std::collections::HashMap`'s default `RandomState` does two things
//! this workspace doesn't want on its per-message paths: it seeds
//! per-instance (so iteration order varies between processes, which is
//! why every effectful map walk here collects and sorts), and it runs
//! SipHash-1-3 — measurable overhead when the keys are single integers
//! looked up millions of times per simulated run.
//!
//! [`FastHasher`] is the FxHash construction (rotate, xor, multiply by a
//! 64-bit odd constant per word). It is not DoS-resistant — irrelevant
//! for a closed simulation — but it is a pure function of the key bytes,
//! so maps built with it hash identically in every process, and it
//! compiles to a handful of instructions for integer keys.
//!
//! Determinism note: swapping a map to [`FastHashMap`] fixes its
//! iteration order across processes (same insertions → same order), but
//! sorted-order guarantees still belong to the call sites; the ones that
//! act on iteration keep their collect-and-sort.

use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (golden-ratio derived, odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash: word-at-a-time rotate/xor/multiply. See module docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (zero-sized, `Default`).
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` hashed by [`FastHasher`]: deterministic across processes
/// and cheap for integer keys. Drop-in except for construction
/// (`FastHashMap::default()` instead of `HashMap::new()`).
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_keys_hash_identically_across_instances() {
        let mut a = FastHashMap::default();
        let mut b = FastHashMap::default();
        for k in [3u64, 1, 41, 7, 1 << 40] {
            a.insert(k, k as f64);
            b.insert(k, k as f64);
        }
        let ka: Vec<u64> = a.keys().copied().collect();
        let kb: Vec<u64> = b.keys().copied().collect();
        assert_eq!(ka, kb, "iteration order must be a pure function of inserts");
    }

    #[test]
    fn multi_word_and_tail_bytes_feed_the_state() {
        use std::hash::BuildHasher;
        let h = |bytes: &[u8]| FastBuildHasher::default().hash_one(bytes);
        assert_ne!(h(b"0123456789abcdef"), h(b"0123456789abcdeg"));
        assert_ne!(h(b"short"), h(b"shoru"));
        assert_ne!(h(b""), h(b"\0"));
    }
}
