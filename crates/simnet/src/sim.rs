//! The simulation driver: a clock plus an event queue.
//!
//! `Simulator<E>` is deliberately agnostic about what an event *is*: the
//! embedding crate defines a closed event enum and dispatches on it in the
//! handler passed to [`Simulator::run_until`]. This keeps the lower layers
//! (links, TCP, BitTorrent) free of circular knowledge about each other —
//! they are sans-IO state machines, and only the top-level world knows how
//! an event touches which component.

use crate::event::{EventQueue, EventToken, QueueStats, Scheduler};
use crate::time::{SimDuration, SimTime};

/// Outcome of handling one event, controlling the main loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// Keep running.
    Continue,
    /// Stop the simulation immediately (e.g. the measured download finished).
    Halt,
}

/// A discrete-event simulator over events of type `E`.
///
/// ```
/// use simnet::sim::{Simulator, Step};
/// use simnet::time::{SimDuration, SimTime};
///
/// let mut sim: Simulator<&str> = Simulator::new();
/// sim.schedule_in(SimDuration::from_secs(1), "tick");
/// let mut fired = Vec::new();
/// sim.run_until(SimTime::from_secs(10), |_sim, _t, e| {
///     fired.push(e);
///     Step::Continue
/// });
/// assert_eq!(fired, vec!["tick"]);
/// assert_eq!(sim.now(), SimTime::from_secs(1));
/// ```
pub struct Simulator<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates a simulator at time zero with an empty agenda, using the
    /// scheduler selected by `WP2P_SCHEDULER` (see [`Scheduler::from_env`]).
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// Creates a simulator backed by an explicit event-queue scheduler.
    pub fn with_scheduler(scheduler: Scheduler) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::with_scheduler(scheduler),
            processed: 0,
        }
    }

    /// Which scheduler backs the event queue.
    pub fn scheduler(&self) -> Scheduler {
        self.queue.scheduler()
    }

    /// Event-queue instrumentation counters (depth, high-water depth,
    /// schedule/cancellation totals).
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `event` at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is in the past.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventToken {
        debug_assert!(time >= self.now, "scheduling into the past");
        self.queue.schedule_at(time, event)
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        let at = self.now + delay;
        self.queue.schedule_at(at, event)
    }

    /// Cancels a scheduled event. No-op if it already fired.
    pub fn cancel(&mut self, token: EventToken) {
        self.queue.cancel(token);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue went backwards");
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// True when no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Runs until the agenda is exhausted, `deadline` is reached, or the
    /// handler returns [`Step::Halt`]. Events scheduled exactly at the
    /// deadline still fire; later ones stay queued. On return, `now` is the
    /// time of the last processed event (or `deadline` if the deadline cut
    /// the run short while events remained).
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F)
    where
        F: FnMut(&mut Simulator<E>, SimTime, E) -> Step,
    {
        loop {
            match self.peek_time() {
                None => return,
                Some(t) if t > deadline => {
                    self.now = deadline;
                    return;
                }
                Some(_) => {}
            }
            let (t, e) = self.next_event().expect("peeked event exists");
            if handler(self, t, e) == Step::Halt {
                return;
            }
        }
    }

    /// Runs until the agenda is exhausted or the handler halts.
    pub fn run<F>(&mut self, handler: F)
    where
        F: FnMut(&mut Simulator<E>, SimTime, E) -> Step,
    {
        self.run_until(SimTime::MAX, handler);
    }
}

impl<E> std::fmt::Debug for Simulator<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("processed", &self.processed)
            .field("queue", &self.queue)
            .finish()
    }
}

impl<E: crate::snapshot::Snap> crate::snapshot::Snap for Simulator<E> {
    fn snap(&self, w: &mut crate::snapshot::SnapWriter) {
        w.section("sim");
        self.now.snap(w);
        self.queue.snap(w);
        w.put_u64(self.processed);
    }
    fn unsnap(r: &mut crate::snapshot::SnapReader<'_>) -> Self {
        r.section("sim");
        Simulator {
            now: crate::snapshot::Snap::unsnap(r),
            queue: crate::snapshot::Snap::unsnap(r),
            processed: r.get_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_in(SimDuration::from_secs(5), 1);
        sim.schedule_in(SimDuration::from_secs(2), 2);
        let (t, e) = sim.next_event().unwrap();
        assert_eq!((t, e), (SimTime::from_secs(2), 2));
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), 1);
        sim.schedule_at(SimTime::from_secs(10), 2);
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_secs(5), |_, _, e| {
            seen.push(e);
            Step::Continue
        });
        assert_eq!(seen, vec![1]);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        // The event after the deadline is still queued.
        assert_eq!(sim.peek_time(), Some(SimTime::from_secs(10)));
    }

    #[test]
    fn deadline_boundary_event_fires() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5), 7);
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_secs(5), |_, _, e| {
            seen.push(e);
            Step::Continue
        });
        assert_eq!(seen, vec![7]);
    }

    #[test]
    fn handler_can_halt() {
        let mut sim: Simulator<u32> = Simulator::new();
        for i in 0..10 {
            sim.schedule_at(SimTime::from_secs(i), i as u32);
        }
        let mut count = 0;
        sim.run(|_, _, _| {
            count += 1;
            if count == 3 {
                Step::Halt
            } else {
                Step::Continue
            }
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn handler_can_schedule_more_events() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), 0);
        let mut ticks = 0;
        sim.run_until(SimTime::from_secs(100), |sim, _, n| {
            ticks += 1;
            if n < 4 {
                sim.schedule_in(SimDuration::from_secs(1), n + 1);
            }
            Step::Continue
        });
        assert_eq!(ticks, 5);
        assert_eq!(sim.processed(), 5);
    }
}
