//! Deterministic world snapshots.
//!
//! A snapshot is a versioned, little-endian binary blob capturing the
//! *dynamic* state of a simulation world — clocks, event queues (both
//! scheduler backends, verbatim, so outstanding [`crate::event::EventToken`]s
//! stay valid), RNG streams, protocol state machines, and metric cells.
//! Static structure (topology, torrent specs, config closures, piece
//! pickers) is deliberately excluded: a blob is restored *onto* a world
//! freshly built by the same scenario code, overwriting its dynamic
//! state. The contract is byte-identity: `restore(save(w))` followed by
//! running to time `T` produces exactly the bytes that running `w`
//! straight through to `T` would have — including a second `save`.
//!
//! The format has no self-describing field tags; it is a fixed field
//! order per type, guarded by [`FORMAT_VERSION`] in the header and
//! per-section markers that catch writer/reader drift early. Floats are
//! stored as IEEE-754 bit patterns ([`f64::to_bits`]), never formatted,
//! so round-trips are exact.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Magic bytes opening every snapshot blob.
pub const MAGIC: &[u8; 8] = b"WP2PSNAP";

/// Bumped on any change to the field order or encoding of any
/// [`Snap`] implementation. Restoring a blob with a mismatched version
/// fails loudly instead of misinterpreting bytes.
pub const FORMAT_VERSION: u32 = 1;

/// Serializer: appends fixed-width little-endian fields to a byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// A writer with the versioned header already emitted. `world_tag`
    /// distinguishes blob kinds (flow vs. packet world) so a blob cannot
    /// be restored into the wrong world type.
    pub fn new(world_tag: u32) -> Self {
        let mut w = SnapWriter { buf: Vec::new() };
        w.buf.extend_from_slice(MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u32(world_tag);
        w
    }

    /// A bare writer without a header (for nested structures serialized
    /// on their own, e.g. metric dumps embedded in a world blob).
    pub fn bare() -> Self {
        SnapWriter::default()
    }

    /// Consumes the writer, returning the blob.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a section marker. Readers consume it with
    /// [`SnapReader::section`]; a mismatch means the writer and reader
    /// disagree about field order and panics with both names.
    pub fn section(&mut self, name: &str) {
        self.put_u16(0xA5A5);
        self.put_str(name);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Deserializer over a snapshot blob. Every getter panics on truncation
/// or marker mismatch: a malformed blob is a programming error (version
/// skew is caught by the header check), not a recoverable condition.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Opens a blob, validating magic, [`FORMAT_VERSION`], and the world
    /// tag.
    ///
    /// # Panics
    ///
    /// Panics when the header does not match.
    pub fn new(buf: &'a [u8], world_tag: u32) -> Self {
        let mut r = SnapReader { buf, pos: 0 };
        let magic = r.take(MAGIC.len());
        assert_eq!(magic, MAGIC, "not a snapshot blob");
        let version = r.get_u32();
        assert_eq!(
            version, FORMAT_VERSION,
            "snapshot format version mismatch: blob v{version}, reader v{FORMAT_VERSION}"
        );
        let tag = r.get_u32();
        assert_eq!(tag, world_tag, "snapshot is for a different world kind");
        r
    }

    /// A bare reader without a header.
    pub fn bare(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// True when the whole blob has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(
            self.pos + n <= self.buf.len(),
            "snapshot truncated at byte {} (wanted {n} more of {})",
            self.pos,
            self.buf.len()
        );
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Consumes a section marker written by [`SnapWriter::section`].
    ///
    /// # Panics
    ///
    /// Panics when the next bytes are not the expected marker.
    pub fn section(&mut self, name: &str) {
        let sentinel = self.get_u16();
        assert_eq!(sentinel, 0xA5A5, "expected section marker '{name}'");
        let found = self.get_string();
        assert_eq!(found, name, "section order drift: wanted '{name}'");
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a bool.
    pub fn get_bool(&mut self) -> bool {
        match self.get_u8() {
            0 => false,
            1 => true,
            b => panic!("invalid bool byte {b}"),
        }
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn get_usize(&mut self) -> usize {
        let v = self.get_u64();
        usize::try_from(v).expect("usize overflow in snapshot")
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Reads a length-prefixed byte string.
    pub fn get_byte_vec(&mut self) -> Vec<u8> {
        let n = self.get_usize();
        self.take(n).to_vec()
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> String {
        String::from_utf8(self.get_byte_vec()).expect("snapshot string not UTF-8")
    }
}

/// Types that serialize to / deserialize from a snapshot blob.
///
/// Implementations must write and read the exact same fields in the
/// exact same order; any change is a [`FORMAT_VERSION`] bump. Types
/// with private fields implement this inside their defining module.
pub trait Snap: Sized {
    /// Appends this value's dynamic state.
    fn snap(&self, w: &mut SnapWriter);
    /// Reads a value previously written by [`Snap::snap`].
    fn unsnap(r: &mut SnapReader<'_>) -> Self;
}

macro_rules! impl_snap_scalar {
    ($($t:ty => $put:ident / $get:ident),* $(,)?) => {$(
        impl Snap for $t {
            fn snap(&self, w: &mut SnapWriter) {
                w.$put(*self);
            }
            fn unsnap(r: &mut SnapReader<'_>) -> Self {
                r.$get()
            }
        }
    )*};
}

impl_snap_scalar! {
    u8 => put_u8 / get_u8,
    u16 => put_u16 / get_u16,
    u32 => put_u32 / get_u32,
    u64 => put_u64 / get_u64,
    i64 => put_i64 / get_i64,
    usize => put_usize / get_usize,
    f64 => put_f64 / get_f64,
    bool => put_bool / get_bool,
}

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        r.get_string()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        if r.get_bool() {
            Some(T::unsnap(r))
        } else {
            None
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        let n = r.get_usize();
        (0..n).map(|_| T::unsnap(r)).collect()
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        let n = r.get_usize();
        (0..n).map(|_| T::unsnap(r)).collect()
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        (A::unsnap(r), B::unsnap(r))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        (A::unsnap(r), B::unsnap(r), C::unsnap(r))
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        let n = r.get_usize();
        (0..n).map(|_| (K::unsnap(r), V::unsnap(r))).collect()
    }
}

impl<T: Snap + Ord> Snap for BTreeSet<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        let n = r.get_usize();
        (0..n).map(|_| T::unsnap(r)).collect()
    }
}

/// Serializes any `HashMap` in sorted key order. Hash maps (std or
/// [`crate::hash::FastHashMap`]) are rebuilt by re-inserting in sorted
/// key order on restore, which makes the restored iteration order a
/// pure function of the blob — the same blob always rebuilds the same
/// map — independent of the insertion history of the saved map.
pub fn snap_hash_map<K, V, S>(
    map: &std::collections::HashMap<K, V, S>,
    w: &mut SnapWriter,
) where
    K: Snap + Ord + Clone,
    V: Snap + Clone,
{
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    w.put_usize(entries.len());
    for (k, v) in entries {
        k.snap(w);
        v.snap(w);
    }
}

/// Restores a `HashMap` written by [`snap_hash_map`].
pub fn unsnap_hash_map<K, V, S>(r: &mut SnapReader<'_>) -> std::collections::HashMap<K, V, S>
where
    K: Snap + Eq + std::hash::Hash,
    V: Snap,
    S: std::hash::BuildHasher + Default,
{
    let n = r.get_usize();
    let mut map = std::collections::HashMap::with_capacity_and_hasher(n, S::default());
    for _ in 0..n {
        let k = K::unsnap(r);
        let v = V::unsnap(r);
        map.insert(k, v);
    }
    map
}

/// Serializes any `HashSet` in sorted order (see [`snap_hash_map`]).
pub fn snap_hash_set<T, S>(set: &std::collections::HashSet<T, S>, w: &mut SnapWriter)
where
    T: Snap + Ord + Clone,
{
    let mut entries: Vec<&T> = set.iter().collect();
    entries.sort();
    w.put_usize(entries.len());
    for v in entries {
        v.snap(w);
    }
}

/// Restores a `HashSet` written by [`snap_hash_set`].
pub fn unsnap_hash_set<T, S>(r: &mut SnapReader<'_>) -> std::collections::HashSet<T, S>
where
    T: Snap + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    let n = r.get_usize();
    let mut set = std::collections::HashSet::with_capacity_and_hasher(n, S::default());
    for _ in 0..n {
        set.insert(T::unsnap(r));
    }
    set
}

impl Snap for crate::time::SimTime {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.as_micros());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        crate::time::SimTime::from_micros(r.get_u64())
    }
}

impl Snap for crate::time::SimDuration {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.as_micros());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        crate::time::SimDuration::from_micros(r.get_u64())
    }
}

impl Snap for crate::addr::NodeId {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.0);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        crate::addr::NodeId(r.get_u32())
    }
}

impl Snap for crate::addr::SimAddr {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.0);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        crate::addr::SimAddr(r.get_u32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn scalar_round_trip() {
        let mut w = SnapWriter::new(7);
        w.put_u8(0xAB);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.1);
        w.put_f64(f64::NAN);
        w.put_str("hello");
        w.put_bool(true);
        let blob = w.into_bytes();
        let mut r = SnapReader::new(&blob, 7);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u64(), u64::MAX - 3);
        assert_eq!(r.get_f64(), -0.1);
        assert!(r.get_f64().is_nan());
        assert_eq!(r.get_string(), "hello");
        assert!(r.get_bool());
        assert!(r.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "different world kind")]
    fn wrong_world_tag_is_rejected() {
        let w = SnapWriter::new(1);
        let blob = w.into_bytes();
        let _ = SnapReader::new(&blob, 2);
    }

    #[test]
    #[should_panic(expected = "section order drift")]
    fn section_drift_panics() {
        let mut w = SnapWriter::bare();
        w.section("alpha");
        let blob = w.into_bytes();
        let mut r = SnapReader::bare(&blob);
        r.section("beta");
    }

    #[test]
    fn container_round_trip() {
        let mut w = SnapWriter::bare();
        let v: Vec<u64> = vec![1, 2, 3];
        let d: VecDeque<(SimTime, f64)> = [(SimTime::from_secs(1), 0.5)].into_iter().collect();
        let o: Option<SimDuration> = Some(SimDuration::from_millis(250));
        let m: BTreeMap<u32, bool> = [(4, true), (1, false)].into_iter().collect();
        v.snap(&mut w);
        d.snap(&mut w);
        o.snap(&mut w);
        m.snap(&mut w);
        let blob = w.into_bytes();
        let mut r = SnapReader::bare(&blob);
        assert_eq!(Vec::<u64>::unsnap(&mut r), v);
        assert_eq!(VecDeque::<(SimTime, f64)>::unsnap(&mut r), d);
        assert_eq!(Option::<SimDuration>::unsnap(&mut r), o);
        assert_eq!(BTreeMap::<u32, bool>::unsnap(&mut r), m);
        assert!(r.is_exhausted());
    }

    #[test]
    fn hash_map_serializes_sorted_and_rebuilds_canonically() {
        let mut a: crate::hash::FastHashMap<u64, u64> = Default::default();
        let mut b: crate::hash::FastHashMap<u64, u64> = Default::default();
        // Different insertion orders, same contents.
        for k in [9u64, 2, 5, 1] {
            a.insert(k, k * 10);
        }
        for k in [1u64, 5, 2, 9] {
            b.insert(k, k * 10);
        }
        let dump = |m: &crate::hash::FastHashMap<u64, u64>| {
            let mut w = SnapWriter::bare();
            snap_hash_map(m, &mut w);
            w.into_bytes()
        };
        assert_eq!(dump(&a), dump(&b), "blob must not depend on insert order");
        let blob = dump(&a);
        let mut r = SnapReader::bare(&blob);
        let back: crate::hash::FastHashMap<u64, u64> = unsnap_hash_map(&mut r);
        assert_eq!(back, a);
    }

    #[test]
    fn rng_round_trip_preserves_stream() {
        use crate::rng::SimRng;
        let mut rng = SimRng::new(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut w = SnapWriter::bare();
        rng.snap(&mut w);
        let blob = w.into_bytes();
        let mut r = SnapReader::bare(&blob);
        let mut back = SimRng::unsnap(&mut r);
        assert_eq!(back.seed(), rng.seed());
        for _ in 0..100 {
            assert_eq!(back.next_u64(), rng.next_u64());
        }
    }
}
