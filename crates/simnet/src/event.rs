//! Generic, cancellable event queue.
//!
//! The queue is a binary heap ordered by `(time, sequence)`. The sequence
//! number is a monotone counter assigned at scheduling time, so two events
//! scheduled for the same instant fire in scheduling order — the property
//! that makes whole-simulation runs deterministic.
//!
//! Cancellation is *lazy*: [`EventQueue::cancel`] records the token in a
//! tombstone set, and the event is discarded when it reaches the top of the
//! heap. This keeps both operations `O(log n)` amortised.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Handle identifying a scheduled event, used to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EventToken(u64);

struct Scheduled<E> {
    time: SimTime,
    token: EventToken,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.token == other.token
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event
        // (breaking ties by scheduling order) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.token.cmp(&self.token))
    }
}

/// A priority queue of timestamped events.
///
/// ```
/// use simnet::event::EventQueue;
/// use simnet::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(2), "late");
/// let tok = q.schedule_at(SimTime::from_secs(1), "early");
/// q.cancel(tok);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: HashSet<EventToken>,
    next_token: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_token: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules `event` to fire at `time` and returns a cancellation token.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventToken {
        let token = EventToken(self.next_token);
        self.next_token += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { time, token, event });
        token
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancelling an already-fired or already-cancelled event is a no-op.
    pub fn cancel(&mut self, token: EventToken) {
        self.cancelled.insert(token);
    }

    /// Removes and returns the earliest live event, skipping tombstones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.token) {
                continue;
            }
            return Some((s.time, s.event));
        }
        // All remaining tombstones (if any) referenced popped events.
        self.cancelled.clear();
        None
    }

    /// The timestamp of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop tombstoned heads so the reported time is a live event's.
        while let Some(s) = self.heap.peek() {
            if self.cancelled.contains(&s.token) {
                let s = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&s.token);
                continue;
            }
            return Some(s.time);
        }
        None
    }

    /// Number of entries currently in the heap (including tombstones).
    #[allow(clippy::len_without_is_empty)] // is_empty exists but needs &mut
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len().min(self.heap.len())
    }

    /// True when no live events remain.
    ///
    /// Takes `&mut self` (unlike the convention) because answering
    /// requires pruning lazily-cancelled tombstones off the heap top.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Total number of events ever scheduled (for instrumentation).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("tombstones", &self.cancelled.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 3);
        q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        assert!(q.pop().is_some());
        q.cancel(a);
        q.schedule_at(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
