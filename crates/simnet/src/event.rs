//! Generic, cancellable event queue with two interchangeable schedulers.
//!
//! Both implementations order events by `(time, sequence)`. The sequence
//! number is a monotone counter assigned at scheduling time, so two events
//! scheduled for the same instant fire in scheduling order — the property
//! that makes whole-simulation runs deterministic, and the contract the
//! differential tests below pin between the two schedulers.
//!
//! * [`Scheduler::Heap`] — the original binary heap. Cancellation is
//!   *validated* against a live-token set and then recorded as a tombstone
//!   that is discarded when it reaches the top of the heap: `O(log n)`
//!   schedule/pop, `O(1)` cancel, but tombstones occupy heap slots until
//!   they surface.
//! * [`Scheduler::Wheel`] — a hierarchical timer wheel over slab storage:
//!   `O(1)` schedule, `O(1)` *eager* cancellation (the entry is unlinked
//!   immediately; no tombstone outlives the operation), and amortised
//!   `O(1)` pop via cascading. Six levels of 64 slots cover ~19 virtual
//!   hours at 1 µs resolution; farther timers wait in an overflow list.
//!
//! Tokens are generation-checked: cancelling an already-fired or
//! already-cancelled token is detected exactly (a counted no-op), fixing
//! the historical accounting bug where such tombstones pinned memory and
//! made `len()` under-report until the heap fully drained.
//!
//! The scheduler is chosen per queue: [`EventQueue::new`] consults the
//! `WP2P_SCHEDULER` env var (`heap` or `wheel`, default wheel) on every
//! call, and [`EventQueue::with_scheduler`] picks explicitly (used by
//! tests and the scale sweep, which compare both under one process).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use crate::time::SimTime;

/// Handle identifying a scheduled event, used to cancel it.
///
/// Tokens are unique over the life of a queue: once the event fires or is
/// cancelled, the token is dead and later [`EventQueue::cancel`] calls
/// with it are detected no-ops (the wheel checks a slab generation, the
/// heap a live-token set).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EventToken(u64);

/// Which event-queue implementation backs a queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheduler {
    /// Binary heap with validated lazy tombstones.
    Heap,
    /// Hierarchical timer wheel with eager cancellation.
    Wheel,
}

impl Scheduler {
    /// Reads `WP2P_SCHEDULER` (`heap` | `wheel`); defaults to the wheel.
    ///
    /// Read on every call (not cached) so a single process can compare
    /// both schedulers back to back, as `scale_sweep` does.
    pub fn from_env() -> Scheduler {
        match std::env::var("WP2P_SCHEDULER") {
            Ok(v) if v.eq_ignore_ascii_case("heap") => Scheduler::Heap,
            _ => Scheduler::Wheel,
        }
    }
}

/// Point-in-time counters for queue instrumentation (depth gauges and
/// cancellation rates in the scale experiment).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct QueueStats {
    /// Live (scheduled, not yet fired or cancelled) events right now.
    pub live: usize,
    /// High-water mark of `live` over the queue's lifetime.
    pub max_live: usize,
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Cancellations that removed a live event.
    pub cancelled: u64,
    /// Cancellations of already-fired/already-cancelled tokens (no-ops).
    pub cancel_noops: u64,
}

// ---------------------------------------------------------------------------
// Heap implementation
// ---------------------------------------------------------------------------

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event
        // (breaking ties by scheduling order) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original scheduler: heap + validated tombstones. A token is the
/// event's sequence number; `pending` holds exactly the live ones, so
/// `cancel` can reject dead tokens instead of leaking a tombstone.
struct HeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    pending: HashSet<u64>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> HeapQueue<E> {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    fn schedule_at(&mut self, time: SimTime, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Scheduled { time, seq, event });
        EventToken(seq)
    }

    fn cancel(&mut self, token: EventToken) -> bool {
        // Only a live token becomes a tombstone; a dead one is a no-op, so
        // tombstones can never outnumber (or outlive) heap entries.
        if self.pending.remove(&token.0) {
            self.cancelled.insert(token.0);
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.seq) {
                continue;
            }
            self.pending.remove(&s.seq);
            return Some((s.time, s.event));
        }
        debug_assert!(self.cancelled.is_empty() && self.pending.is_empty());
        None
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        // Drop tombstoned heads so the reported time is a live event's.
        while let Some(s) = self.heap.peek() {
            if self.cancelled.contains(&s.seq) {
                let s = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&s.seq);
                continue;
            }
            return Some(s.time);
        }
        None
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

// ---------------------------------------------------------------------------
// Wheel implementation
// ---------------------------------------------------------------------------

const LEVEL_BITS: u32 = 6;
const SLOTS: usize = 1 << LEVEL_BITS;
const LEVELS: usize = 6;
/// Times at least this far (in µs) past the wheel origin go to overflow.
const HORIZON: u64 = 1 << (LEVEL_BITS * LEVELS as u32);
const NIL: u32 = u32::MAX;

/// Where a slab entry currently lives (needed to unlink it on cancel).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Loc {
    /// On the free list.
    Free,
    /// Linked into `levels[level][slot]`.
    Slot { level: u8, slot: u8 },
    /// Linked into the overflow list (beyond the wheel horizon).
    Overflow,
    /// In the due batch awaiting pop.
    Batch,
    /// Cancelled while in the batch; slab slot is held (so the batch's
    /// index stays valid) and reclaimed when the batch reaches it.
    Dead,
}

struct Entry<E> {
    /// Scheduled fire time in µs (the time reported on pop).
    time: u64,
    /// Scheduling order, the tie-break within one instant.
    seq: u64,
    /// Bumped every time the slab slot is freed; tokens embed the value
    /// they were minted with, so stale tokens never touch a reused slot.
    gen: u32,
    prev: u32,
    next: u32,
    loc: Loc,
    event: Option<E>,
}

/// Hierarchical timer wheel. Level `l` buckets time at `64^l` µs; an
/// event goes to the lowest level whose current window contains its fire
/// time (`level = floor(log64(t XOR cur))`). Popping drains the earliest
/// due level-0 slot into a `(time, seq)`-sorted batch; when level 0 is
/// exhausted the earliest occupied higher-level slot cascades down, and
/// when the whole wheel is empty the origin jumps to the overflow list.
struct WheelQueue<E> {
    entries: Vec<Entry<E>>,
    free_head: u32,
    /// List heads per slot.
    levels: [[u32; SLOTS]; LEVELS],
    /// One bit per slot: does the slot have entries?
    occupied: [u64; LEVELS],
    overflow_head: u32,
    /// Wheel origin in µs: the base every slot index is relative to.
    /// Advances monotonically as slots drain; all slot/overflow entries
    /// satisfy `time > cur`, batch entries `time <= cur`.
    cur: u64,
    /// Due events in pop order.
    batch: VecDeque<u32>,
    next_seq: u64,
}

impl<E> WheelQueue<E> {
    fn new() -> Self {
        WheelQueue {
            entries: Vec::new(),
            free_head: NIL,
            levels: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            overflow_head: NIL,
            cur: 0,
            batch: VecDeque::new(),
            next_seq: 0,
        }
    }

    fn alloc(&mut self, time: u64, seq: u64, event: E) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let e = &mut self.entries[idx as usize];
            self.free_head = e.next;
            e.time = time;
            e.seq = seq;
            e.prev = NIL;
            e.next = NIL;
            e.event = Some(event);
            idx
        } else {
            let idx = u32::try_from(self.entries.len()).expect("slab indices fit u32");
            self.entries.push(Entry {
                time,
                seq,
                gen: 0,
                prev: NIL,
                next: NIL,
                loc: Loc::Free,
                event: None,
            });
            self.entries[idx as usize].event = Some(event);
            idx
        }
    }

    /// Returns the slab slot to the free list, bumping the generation so
    /// outstanding tokens for it go stale.
    fn free(&mut self, idx: u32) {
        let e = &mut self.entries[idx as usize];
        debug_assert!(e.loc != Loc::Free);
        e.gen = e.gen.wrapping_add(1);
        e.loc = Loc::Free;
        e.event = None;
        e.prev = NIL;
        e.next = self.free_head;
        self.free_head = idx;
    }

    fn token(&self, idx: u32) -> EventToken {
        EventToken((u64::from(self.entries[idx as usize].gen) << 32) | u64::from(idx))
    }

    /// Links `idx` into the wheel (or overflow) relative to `self.cur`.
    /// Caller guarantees `entries[idx].time > self.cur`.
    fn link(&mut self, idx: u32) {
        let t = self.entries[idx as usize].time;
        debug_assert!(t > self.cur);
        let diff = t ^ self.cur;
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        if level >= LEVELS {
            let head = self.overflow_head;
            self.entries[idx as usize].prev = NIL;
            self.entries[idx as usize].next = head;
            self.entries[idx as usize].loc = Loc::Overflow;
            if head != NIL {
                self.entries[head as usize].prev = idx;
            }
            self.overflow_head = idx;
        } else {
            let slot = ((t >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            let head = self.levels[level][slot];
            self.entries[idx as usize].prev = NIL;
            self.entries[idx as usize].next = head;
            self.entries[idx as usize].loc = Loc::Slot {
                level: level as u8,
                slot: slot as u8,
            };
            if head != NIL {
                self.entries[head as usize].prev = idx;
            }
            self.levels[level][slot] = idx;
            self.occupied[level] |= 1u64 << slot;
        }
    }

    /// Unlinks `idx` from the slot/overflow list it lives in.
    fn unlink(&mut self, idx: u32) {
        let (prev, next, loc) = {
            let e = &self.entries[idx as usize];
            (e.prev, e.next, e.loc)
        };
        if next != NIL {
            self.entries[next as usize].prev = prev;
        }
        if prev != NIL {
            self.entries[prev as usize].next = next;
        } else {
            match loc {
                Loc::Slot { level, slot } => {
                    self.levels[level as usize][slot as usize] = next;
                    if next == NIL {
                        self.occupied[level as usize] &= !(1u64 << slot);
                    }
                }
                Loc::Overflow => self.overflow_head = next,
                _ => unreachable!("unlink of unlinked entry"),
            }
        }
    }

    fn schedule_at(&mut self, time: SimTime, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.alloc(time.as_micros(), seq, event);
        self.insert(idx);
        self.token(idx)
    }

    /// Places `idx` where it belongs relative to the origin: due entries
    /// (`time <= cur`) go straight into the batch at their `(time, seq)`
    /// rank — exactly where the heap would pop them — the rest onto the
    /// wheel or overflow.
    fn insert(&mut self, idx: u32) {
        let e = &self.entries[idx as usize];
        if e.time <= self.cur {
            let key = (e.time, e.seq);
            let pos = self
                .batch
                .binary_search_by(|&i| {
                    let e = &self.entries[i as usize];
                    (e.time, e.seq).cmp(&key)
                })
                .unwrap_err();
            self.entries[idx as usize].loc = Loc::Batch;
            self.batch.insert(pos, idx);
        } else {
            self.link(idx);
        }
    }

    fn cancel(&mut self, token: EventToken) -> bool {
        let idx = (token.0 & u64::from(u32::MAX)) as u32;
        let gen = (token.0 >> 32) as u32;
        let Some(e) = self.entries.get(idx as usize) else {
            return false;
        };
        if e.gen != gen {
            return false;
        }
        match e.loc {
            Loc::Free | Loc::Dead => false,
            Loc::Slot { .. } | Loc::Overflow => {
                self.unlink(idx);
                self.free(idx);
                true
            }
            Loc::Batch => {
                // The batch is indexed by position; keep the slab slot
                // alive (and its sort key intact) until the batch passes.
                let e = &mut self.entries[idx as usize];
                e.event = None;
                e.loc = Loc::Dead;
                true
            }
        }
    }

    /// Drops cancelled entries off the batch front.
    fn prune_batch(&mut self) {
        while let Some(&idx) = self.batch.front() {
            if self.entries[idx as usize].loc == Loc::Dead {
                self.batch.pop_front();
                self.free(idx);
            } else {
                return;
            }
        }
    }

    /// Refills the batch from the wheel. Returns false when no live
    /// events remain anywhere.
    fn advance(&mut self) -> bool {
        loop {
            self.prune_batch();
            if !self.batch.is_empty() {
                return true;
            }
            // Level 0: drain the earliest due slot of the current window.
            let s0 = (self.cur & (SLOTS as u64 - 1)) as u32;
            let m = self.occupied[0] & (!0u64 << s0);
            debug_assert_eq!(self.occupied[0] & !(!0u64 << s0), 0, "stale level-0 slots");
            if m != 0 {
                let s = u64::from(m.trailing_zeros());
                self.cur = (self.cur & !(SLOTS as u64 - 1)) | s;
                self.drain_slot_to_batch(s as usize);
                continue;
            }
            // Higher levels: cascade the earliest occupied slot down.
            if let Some((level, slot)) = self.earliest_high_slot() {
                let span = LEVEL_BITS * (level as u32 + 1);
                let next = (self.cur & !((1u64 << span) - 1))
                    | ((slot as u64) << (LEVEL_BITS * level as u32));
                debug_assert!(next >= self.cur, "wheel origin went backwards");
                self.cur = next;
                self.cascade_slot(level, slot);
                continue;
            }
            // Wheel empty: jump the origin to the overflow horizon.
            if self.overflow_head != NIL {
                let mut min_t = u64::MAX;
                let mut i = self.overflow_head;
                while i != NIL {
                    min_t = min_t.min(self.entries[i as usize].time);
                    i = self.entries[i as usize].next;
                }
                let next = min_t & !(HORIZON - 1);
                debug_assert!(next > self.cur);
                self.cur = next;
                // Re-admit everything now inside the horizon.
                let mut i = self.overflow_head;
                while i != NIL {
                    let step = self.entries[i as usize].next;
                    if (self.entries[i as usize].time ^ self.cur) < HORIZON {
                        self.unlink(i);
                        self.insert(i);
                    }
                    i = step;
                }
                continue;
            }
            return false;
        }
    }

    /// Earliest occupied `(level, slot)` at or after the origin's index,
    /// scanning levels bottom-up (lower level = finer, earlier window).
    fn earliest_high_slot(&self) -> Option<(usize, usize)> {
        for level in 1..LEVELS {
            let sl = ((self.cur >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as u32;
            let m = self.occupied[level] & (!0u64 << sl);
            debug_assert_eq!(self.occupied[level] & !(!0u64 << sl), 0, "stale slots");
            if m != 0 {
                return Some((level, m.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Moves every entry of level-0 slot `s` into the batch, restoring
    /// `(time, seq)` pop order (entries may differ in seq, and past-time
    /// entries clamped here keep their original time for the sort).
    fn drain_slot_to_batch(&mut self, s: usize) {
        debug_assert!(self.batch.is_empty());
        let mut i = self.levels[0][s];
        self.levels[0][s] = NIL;
        self.occupied[0] &= !(1u64 << s);
        while i != NIL {
            let next = self.entries[i as usize].next;
            self.entries[i as usize].loc = Loc::Batch;
            self.batch.push_back(i);
            i = next;
        }
        let entries = &self.entries;
        self.batch.make_contiguous().sort_by_key(|&i| {
            let e = &entries[i as usize];
            (e.time, e.seq)
        });
    }

    /// Re-inserts every entry of `levels[level][slot]` relative to the
    /// (just advanced) origin; each lands at a lower level or the batch.
    fn cascade_slot(&mut self, level: usize, slot: usize) {
        let mut i = self.levels[level][slot];
        self.levels[level][slot] = NIL;
        self.occupied[level] &= !(1u64 << slot);
        while i != NIL {
            let next = self.entries[i as usize].next;
            self.insert(i);
            i = next;
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.advance() {
            return None;
        }
        let idx = self.batch.pop_front().expect("advance filled the batch");
        let e = &mut self.entries[idx as usize];
        let time = SimTime::from_micros(e.time);
        let event = e.event.take().expect("batch front is live");
        self.free(idx);
        Some((time, event))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if !self.advance() {
            return None;
        }
        let idx = *self.batch.front().expect("advance filled the batch");
        Some(SimTime::from_micros(self.entries[idx as usize].time))
    }
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

// One queue per simulation, so the size gap between the inline wheel
// (fixed slot heads + bitmaps) and the heap variant costs nothing;
// boxing the wheel would put a deref on every hot-path operation.
#[allow(clippy::large_enum_variant)]
enum Imp<E> {
    Heap(HeapQueue<E>),
    Wheel(WheelQueue<E>),
}

/// A priority queue of timestamped events.
///
/// ```
/// use simnet::event::EventQueue;
/// use simnet::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(2), "late");
/// let tok = q.schedule_at(SimTime::from_secs(1), "early");
/// q.cancel(tok);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    imp: Imp<E>,
    live: usize,
    max_live: usize,
    scheduled_total: u64,
    cancelled_total: u64,
    cancel_noops: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the scheduler from [`Scheduler::from_env`].
    pub fn new() -> Self {
        Self::with_scheduler(Scheduler::from_env())
    }

    /// Creates an empty queue backed by an explicit scheduler.
    pub fn with_scheduler(scheduler: Scheduler) -> Self {
        EventQueue {
            imp: match scheduler {
                Scheduler::Heap => Imp::Heap(HeapQueue::new()),
                Scheduler::Wheel => Imp::Wheel(WheelQueue::new()),
            },
            live: 0,
            max_live: 0,
            scheduled_total: 0,
            cancelled_total: 0,
            cancel_noops: 0,
        }
    }

    /// Which implementation backs this queue.
    pub fn scheduler(&self) -> Scheduler {
        match self.imp {
            Imp::Heap(_) => Scheduler::Heap,
            Imp::Wheel(_) => Scheduler::Wheel,
        }
    }

    /// Schedules `event` to fire at `time` and returns a cancellation token.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventToken {
        self.scheduled_total += 1;
        self.live += 1;
        self.max_live = self.max_live.max(self.live);
        match &mut self.imp {
            Imp::Heap(q) => q.schedule_at(time, event),
            Imp::Wheel(q) => q.schedule_at(time, event),
        }
    }

    /// Cancels a previously scheduled event; returns whether a live event
    /// was removed. Cancelling an already-fired or already-cancelled
    /// token is a no-op (`false`), detected via the token's generation —
    /// it leaves no residue in the queue.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let hit = match &mut self.imp {
            Imp::Heap(q) => q.cancel(token),
            Imp::Wheel(q) => q.cancel(token),
        };
        if hit {
            self.cancelled_total += 1;
            self.live -= 1;
        } else {
            self.cancel_noops += 1;
        }
        hit
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let out = match &mut self.imp {
            Imp::Heap(q) => q.pop(),
            Imp::Wheel(q) => q.pop(),
        };
        if out.is_some() {
            self.live -= 1;
        }
        out
    }

    /// The timestamp of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.imp {
            Imp::Heap(q) => q.peek_time(),
            Imp::Wheel(q) => q.peek_time(),
        }
    }

    /// Number of live (scheduled, not yet fired or cancelled) events.
    pub fn len(&self) -> usize {
        debug_assert!(match &self.imp {
            Imp::Heap(q) => q.len() == self.live,
            Imp::Wheel(_) => true,
        });
        self.live
    }

    /// True when no live events remain. Exact (`len() == 0 ⇔ is_empty()`)
    /// under any interleaving of scheduling, peeking and cancellation.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events ever scheduled (for instrumentation).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Instrumentation snapshot: depth, high-water depth, schedule and
    /// cancellation totals.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            live: self.live,
            max_live: self.max_live,
            scheduled: self.scheduled_total,
            cancelled: self.cancelled_total,
            cancel_noops: self.cancel_noops,
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("scheduler", &self.scheduler())
            .field("live", &self.live)
            .field("scheduled", &self.scheduled_total)
            .field("cancelled", &self.cancelled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn both(test: impl Fn(Scheduler)) {
        test(Scheduler::Heap);
        test(Scheduler::Wheel);
    }

    #[test]
    fn pops_in_time_order() {
        both(|s| {
            let mut q = EventQueue::with_scheduler(s);
            q.schedule_at(SimTime::from_secs(3), 3);
            q.schedule_at(SimTime::from_secs(1), 1);
            q.schedule_at(SimTime::from_secs(2), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        both(|s| {
            let mut q = EventQueue::with_scheduler(s);
            let t = SimTime::from_secs(1);
            for i in 0..10 {
                q.schedule_at(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn cancellation_skips_events() {
        both(|s| {
            let mut q = EventQueue::with_scheduler(s);
            let a = q.schedule_at(SimTime::from_secs(1), "a");
            q.schedule_at(SimTime::from_secs(2), "b");
            assert!(q.cancel(a));
            assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        });
    }

    #[test]
    fn cancel_after_fire_is_validated_noop() {
        both(|s| {
            let mut q = EventQueue::with_scheduler(s);
            let a = q.schedule_at(SimTime::from_secs(1), "a");
            assert!(q.pop().is_some());
            // Regression: this used to plant a tombstone that made len()
            // under-report until the heap drained.
            assert!(!q.cancel(a));
            assert_eq!(q.len(), 0);
            assert!(q.is_empty());
            q.schedule_at(SimTime::from_secs(2), "b");
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
            assert_eq!(q.stats().cancel_noops, 1);
            assert_eq!(q.stats().cancelled, 0);
        });
    }

    #[test]
    fn double_cancel_is_noop() {
        both(|s| {
            let mut q = EventQueue::with_scheduler(s);
            let a = q.schedule_at(SimTime::from_secs(1), "a");
            assert!(q.cancel(a));
            assert!(!q.cancel(a));
            assert!(q.is_empty());
            assert_eq!(q.len(), 0);
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn peek_time_skips_tombstones() {
        both(|s| {
            let mut q = EventQueue::with_scheduler(s);
            let a = q.schedule_at(SimTime::from_secs(1), "a");
            q.schedule_at(SimTime::from_secs(5), "b");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
            assert_eq!(q.len(), 1);
        });
    }

    #[test]
    fn empty_queue_behaviour() {
        both(|s| {
            let mut q: EventQueue<()> = EventQueue::with_scheduler(s);
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
            assert_eq!(q.peek_time(), None);
        });
    }

    #[test]
    fn len_and_is_empty_agree_under_interleaving() {
        // Satellite regression: interleaved peek/cancel used to leave
        // len() and is_empty() inconsistent on the heap.
        both(|s| {
            let mut q = EventQueue::with_scheduler(s);
            let a = q.schedule_at(SimTime::from_secs(1), 1);
            let b = q.schedule_at(SimTime::from_secs(2), 2);
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
            q.cancel(b);
            assert!(!q.cancel(a));
            assert_eq!(q.len(), 0);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        });
    }

    #[test]
    fn wheel_far_future_overflow_cascades() {
        // Beyond the 6-level horizon (~19 h) events park in overflow and
        // still pop in global order.
        let mut q = EventQueue::with_scheduler(Scheduler::Wheel);
        q.schedule_at(SimTime::from_secs(60 * 60 * 50), "far");
        q.schedule_at(SimTime::from_secs(1), "near");
        q.schedule_at(SimTime::from_secs(60 * 60 * 30), "mid");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "near")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(60 * 60 * 30), "mid")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(60 * 60 * 50), "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wheel_token_generations_survive_slot_reuse() {
        let mut q = EventQueue::with_scheduler(Scheduler::Wheel);
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        assert!(q.cancel(a));
        // The freed slab slot is reused for b; a's stale token must not
        // touch it.
        let b = q.schedule_at(SimTime::from_secs(2), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert!(!q.cancel(b));
        assert_eq!(q.stats().cancel_noops, 2);
    }

    #[test]
    fn schedule_at_pop_frontier_matches_heap() {
        // After popping at t, scheduling again at t must fire before
        // later events but after the pop — on both schedulers.
        both(|s| {
            let mut q = EventQueue::with_scheduler(s);
            q.schedule_at(SimTime::from_secs(1), 0);
            q.schedule_at(SimTime::from_secs(2), 9);
            assert_eq!(q.pop(), Some((SimTime::from_secs(1), 0)));
            q.schedule_at(SimTime::from_secs(1), 1);
            q.schedule_at(SimTime::from_secs(1), 2);
            assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
            assert_eq!(q.pop(), Some((SimTime::from_secs(1), 2)));
            assert_eq!(q.pop(), Some((SimTime::from_secs(2), 9)));
        });
    }

    /// Drives a heap and a wheel through the same seeded op sequence and
    /// asserts identical observable traces — the differential guarantee
    /// that lets the wheel replace the heap without perturbing a single
    /// run. Also asserts `len() == 0 ⇔ is_empty()` at every step.
    #[test]
    fn differential_heap_vs_wheel_10k_ops() {
        for seed in [1u64, 0xD1FF, 0xBADC0FFEE] {
            let mut rng = SimRng::new(seed);
            let mut heap: EventQueue<u64> = EventQueue::with_scheduler(Scheduler::Heap);
            let mut wheel: EventQueue<u64> = EventQueue::with_scheduler(Scheduler::Wheel);
            // i-th live token per queue (same index = same logical event).
            let mut live_h: Vec<EventToken> = Vec::new();
            let mut live_w: Vec<EventToken> = Vec::new();
            let mut retired_h: Vec<EventToken> = Vec::new();
            let mut retired_w: Vec<EventToken> = Vec::new();
            let mut frontier = SimTime::ZERO;
            for op in 0..10_000u64 {
                match rng.range(0..100u32) {
                    0..=54 => {
                        // Schedule at frontier + delay; occasionally far
                        // enough out to exercise overflow and cascades.
                        let delay = match rng.range(0..10u32) {
                            0 => rng.range(0..50u64),
                            1..=2 => rng.range(0..100_000_000u64),
                            3 => rng.range(0..200_000_000_000u64),
                            _ => rng.range(0..5_000_000u64),
                        };
                        let t = frontier + crate::time::SimDuration::from_micros(delay);
                        live_h.push(heap.schedule_at(t, op));
                        live_w.push(wheel.schedule_at(t, op));
                    }
                    55..=74 => {
                        if !live_h.is_empty() {
                            let i = rng.range(0..live_h.len() as u64) as usize;
                            let (a, b) = (live_h.swap_remove(i), live_w.swap_remove(i));
                            assert_eq!(heap.cancel(a), wheel.cancel(b));
                            retired_h.push(a);
                            retired_w.push(b);
                        }
                    }
                    75..=79 => {
                        // Cancel of a dead token: both must refuse.
                        if !retired_h.is_empty() {
                            let i = rng.range(0..retired_h.len() as u64) as usize;
                            assert!(!heap.cancel(retired_h[i]));
                            assert!(!wheel.cancel(retired_w[i]));
                        }
                    }
                    80..=94 => {
                        let (a, b) = (heap.pop(), wheel.pop());
                        assert_eq!(a, b, "pop diverged at op {op} (seed {seed})");
                        if let Some((t, _)) = a {
                            frontier = t;
                        }
                    }
                    _ => {
                        assert_eq!(heap.peek_time(), wheel.peek_time(), "peek diverged");
                    }
                }
                assert_eq!(heap.len(), wheel.len());
                assert_eq!(heap.is_empty(), wheel.is_empty());
                #[allow(clippy::len_zero)] // the property under test IS len()==0 <=> is_empty()
                {
                    assert_eq!(heap.is_empty(), heap.len() == 0);
                    assert_eq!(wheel.is_empty(), wheel.len() == 0);
                }
            }
            // Drain both to the end: full remaining order must agree.
            loop {
                let (a, b) = (heap.pop(), wheel.pop());
                assert_eq!(a, b, "drain diverged (seed {seed})");
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(heap.stats().cancelled, wheel.stats().cancelled);
            assert_eq!(heap.stats().scheduled, wheel.stats().scheduled);
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot support
// ---------------------------------------------------------------------------

use crate::snapshot::{Snap, SnapReader, SnapWriter};

impl Snap for EventToken {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        EventToken(r.get_u64())
    }
}

impl Snap for Loc {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Loc::Free => w.put_u8(0),
            Loc::Slot { level, slot } => {
                w.put_u8(1);
                w.put_u8(*level);
                w.put_u8(*slot);
            }
            Loc::Overflow => w.put_u8(2),
            Loc::Batch => w.put_u8(3),
            Loc::Dead => w.put_u8(4),
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        match r.get_u8() {
            0 => Loc::Free,
            1 => Loc::Slot {
                level: r.get_u8(),
                slot: r.get_u8(),
            },
            2 => Loc::Overflow,
            3 => Loc::Batch,
            4 => Loc::Dead,
            b => panic!("invalid Loc tag {b}"),
        }
    }
}

impl<E: Snap> Snap for HeapQueue<E> {
    /// The heap is stored in *canonical* form: live entries sorted by
    /// `(time, seq)`, tombstones dropped. Tombstoned entries are
    /// unobservable (pop and peek skip them, `len()` counts `pending`),
    /// so a straight-through run and a restored run — whose in-memory
    /// tombstone sets legitimately differ — serialize identically.
    /// Tokens are bare sequence numbers validated against `pending`, so
    /// dropped tombstones still cancel as detected no-ops.
    fn snap(&self, w: &mut SnapWriter) {
        let mut live: Vec<&Scheduled<E>> = self
            .heap
            .iter()
            .filter(|s| !self.cancelled.contains(&s.seq))
            .collect();
        live.sort_by_key(|s| (s.time, s.seq));
        w.put_usize(live.len());
        for s in live {
            s.time.snap(w);
            w.put_u64(s.seq);
            s.event.snap(w);
        }
        w.put_u64(self.next_seq);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        let n = r.get_usize();
        let mut q = HeapQueue::new();
        for _ in 0..n {
            let time = SimTime::unsnap(r);
            let seq = r.get_u64();
            let event = E::unsnap(r);
            q.pending.insert(seq);
            q.heap.push(Scheduled { time, seq, event });
        }
        q.next_seq = r.get_u64();
        q
    }
}

impl<E: Snap> Snap for WheelQueue<E> {
    /// The wheel slab is stored *verbatim* — free-list order, per-slot
    /// generation counters, intrusive list links, origin, and batch —
    /// because outstanding [`EventToken`]s embed `(generation, slab
    /// index)` and live inside world state (stall watchdogs, TCP
    /// timers). Any canonicalisation would dangle them. The slab layout
    /// is itself a pure function of the operation history, so verbatim
    /// storage keeps later saves byte-identical too.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.time);
            w.put_u64(e.seq);
            w.put_u32(e.gen);
            w.put_u32(e.prev);
            w.put_u32(e.next);
            e.loc.snap(w);
            e.event.snap(w);
        }
        w.put_u32(self.free_head);
        for level in &self.levels {
            for head in level {
                w.put_u32(*head);
            }
        }
        for m in &self.occupied {
            w.put_u64(*m);
        }
        w.put_u32(self.overflow_head);
        w.put_u64(self.cur);
        self.batch.snap(w);
        w.put_u64(self.next_seq);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        let n = r.get_usize();
        let mut q = WheelQueue::new();
        q.entries.reserve(n);
        for _ in 0..n {
            q.entries.push(Entry {
                time: r.get_u64(),
                seq: r.get_u64(),
                gen: r.get_u32(),
                prev: r.get_u32(),
                next: r.get_u32(),
                loc: Loc::unsnap(r),
                event: Option::<E>::unsnap(r),
            });
        }
        q.free_head = r.get_u32();
        for level in &mut q.levels {
            for head in level.iter_mut() {
                *head = r.get_u32();
            }
        }
        for m in &mut q.occupied {
            *m = r.get_u64();
        }
        q.overflow_head = r.get_u32();
        q.cur = r.get_u64();
        q.batch = VecDeque::unsnap(r);
        q.next_seq = r.get_u64();
        q
    }
}

impl<E: Snap> Snap for EventQueue<E> {
    fn snap(&self, w: &mut SnapWriter) {
        w.section("event_queue");
        match &self.imp {
            Imp::Heap(q) => {
                w.put_u8(0);
                q.snap(w);
            }
            Imp::Wheel(q) => {
                w.put_u8(1);
                q.snap(w);
            }
        }
        w.put_usize(self.live);
        w.put_usize(self.max_live);
        w.put_u64(self.scheduled_total);
        w.put_u64(self.cancelled_total);
        w.put_u64(self.cancel_noops);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        r.section("event_queue");
        let imp = match r.get_u8() {
            0 => Imp::Heap(HeapQueue::unsnap(r)),
            1 => Imp::Wheel(WheelQueue::unsnap(r)),
            b => panic!("invalid scheduler tag {b}"),
        };
        EventQueue {
            imp,
            live: r.get_usize(),
            max_live: r.get_usize(),
            scheduled_total: r.get_u64(),
            cancelled_total: r.get_u64(),
            cancel_noops: r.get_u64(),
        }
    }
}

#[cfg(test)]
mod snap_tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::snapshot::{Snap, SnapReader, SnapWriter};
    use crate::time::SimDuration;

    fn save<E: Snap>(q: &EventQueue<E>) -> Vec<u8> {
        let mut w = SnapWriter::bare();
        q.snap(&mut w);
        w.into_bytes()
    }

    fn load<E: Snap>(blob: &[u8]) -> EventQueue<E> {
        let mut r = SnapReader::bare(blob);
        let q = EventQueue::unsnap(&mut r);
        assert!(r.is_exhausted());
        q
    }

    /// Seeded soak on both schedulers: at a random point, snapshot the
    /// queue, restore it, and check that the restored queue pops, peeks,
    /// cancels, and re-serializes identically to the original —
    /// including outstanding tokens taken before the snapshot.
    #[test]
    fn queue_round_trip_preserves_order_tokens_and_stats() {
        for scheduler in [Scheduler::Heap, Scheduler::Wheel] {
            let mut rng = SimRng::new(0x5EED);
            let mut q: EventQueue<u64> = EventQueue::with_scheduler(scheduler);
            let mut tokens = Vec::new();
            let mut frontier = SimTime::ZERO;
            for op in 0..2_000u64 {
                match rng.range(0..10u32) {
                    0..=5 => {
                        let t = frontier + SimDuration::from_micros(rng.range(0..3_000_000u64));
                        tokens.push(q.schedule_at(t, op));
                    }
                    6..=7 => {
                        if let Some((t, _)) = q.pop() {
                            frontier = t;
                        }
                    }
                    _ => {
                        if !tokens.is_empty() {
                            let i = rng.range(0..tokens.len() as u64) as usize;
                            q.cancel(tokens.swap_remove(i));
                        }
                    }
                }
            }
            let blob = save(&q);
            let mut back: EventQueue<u64> = load(&blob);
            assert_eq!(back.stats(), q.stats());
            assert_eq!(back.scheduler(), q.scheduler());
            // Saving the restored queue reproduces the blob bit-for-bit.
            assert_eq!(save(&back), blob, "{scheduler:?} blob not stable");
            // Outstanding tokens cancel identically on both queues.
            for (i, &tok) in tokens.iter().enumerate() {
                if i % 3 == 0 {
                    assert_eq!(q.cancel(tok), back.cancel(tok), "{scheduler:?} token {i}");
                }
            }
            // Remaining drain order matches exactly.
            loop {
                let (a, b) = (q.pop(), back.pop());
                assert_eq!(a, b, "{scheduler:?} drain diverged");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// Regression for the wheel-cascade satellite: snapshot at an origin
    /// that is *not* slot-aligned (mid-window, between cascades) and
    /// check the restored wheel continues exactly — including entries
    /// sitting in the due batch and higher-level slots that still have
    /// to cascade.
    #[test]
    fn wheel_restore_mid_cascade_at_non_slot_aligned_origin() {
        let mut q: EventQueue<u32> = EventQueue::with_scheduler(Scheduler::Wheel);
        // Events across several levels and the overflow list.
        q.schedule_at(SimTime::from_micros(3), 0);
        q.schedule_at(SimTime::from_micros(3), 1); // same-instant tie
        q.schedule_at(SimTime::from_micros(70), 2); // level 1
        q.schedule_at(SimTime::from_micros(5_000), 3); // level 2
        q.schedule_at(SimTime::from_micros(300_000), 4); // level 3
        q.schedule_at(SimTime::from_secs(80_000), 5); // overflow (>19h)
        // Pop one event: the origin lands at t=3 (not slot-0-aligned)
        // with event 1 still in the batch and every other level pending.
        assert_eq!(q.pop(), Some((SimTime::from_micros(3), 0)));
        let blob = save(&q);
        let mut back: EventQueue<u32> = load(&blob);
        // Scheduling at the due frontier after restore keeps heap order.
        q.schedule_at(SimTime::from_micros(3), 6);
        back.schedule_at(SimTime::from_micros(3), 6);
        let rest: Vec<(SimTime, u32)> = std::iter::from_fn(|| back.pop()).collect();
        let want: Vec<(SimTime, u32)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(rest, want);
        assert_eq!(
            rest.iter().map(|&(_, e)| e).collect::<Vec<_>>(),
            vec![1, 6, 2, 3, 4, 5]
        );
    }
}
