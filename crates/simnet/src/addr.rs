//! Node identities and network addresses.
//!
//! A **node** is a stable simulation entity (a laptop, a fixed peer, a
//! tracker host). An **address** is what other endpoints use to reach it —
//! and, crucially for this paper, the thing that *changes* when a mobile
//! host hands off to a new access network. Keeping `NodeId` and `SimAddr`
//! as distinct types makes "identity survived but the address did not"
//! impossible to conflate in the protocol layers above.

use std::collections::HashMap;
use std::fmt;

/// Stable identity of a simulated host. Never changes during a run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A network-layer address (an abstract IPv4-like identifier).
///
/// Mobile hand-offs assign a fresh `SimAddr` to the same `NodeId`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SimAddr(pub u32);

impl fmt::Display for SimAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render like a dotted quad for readability in traces.
        let v = self.0;
        write!(
            f,
            "{}.{}.{}.{}",
            (v >> 24) & 0xff,
            (v >> 16) & 0xff,
            (v >> 8) & 0xff,
            v & 0xff
        )
    }
}

/// Allocates unique addresses and tracks the current node⇄address binding.
///
/// ```
/// use simnet::addr::{AddressBook, NodeId};
/// let mut book = AddressBook::new();
/// let n = NodeId(1);
/// let a0 = book.assign(n);
/// let a1 = book.reassign(n);
/// assert_ne!(a0, a1);
/// assert_eq!(book.addr_of(n), Some(a1));
/// assert_eq!(book.node_at(a1), Some(n));
/// assert_eq!(book.node_at(a0), None, "old address is unroutable");
/// ```
#[derive(Debug, Default, Clone)]
pub struct AddressBook {
    next: u32,
    by_node: HashMap<NodeId, SimAddr>,
    by_addr: HashMap<SimAddr, NodeId>,
    reassignments: u64,
}

impl AddressBook {
    /// Creates an empty address book.
    pub fn new() -> Self {
        AddressBook {
            // Start in a 10.x space, purely cosmetic.
            next: 10 << 24 | 1,
            by_node: HashMap::new(),
            by_addr: HashMap::new(),
            reassignments: 0,
        }
    }

    fn fresh(&mut self) -> SimAddr {
        let a = SimAddr(self.next);
        self.next += 1;
        a
    }

    /// Assigns an initial address to `node`, or returns the existing one.
    pub fn assign(&mut self, node: NodeId) -> SimAddr {
        if let Some(&a) = self.by_node.get(&node) {
            return a;
        }
        let a = self.fresh();
        self.by_node.insert(node, a);
        self.by_addr.insert(a, node);
        a
    }

    /// Gives `node` a brand-new address, invalidating the old one.
    ///
    /// This models an IP-layer hand-off: packets addressed to the previous
    /// address no longer route anywhere.
    pub fn reassign(&mut self, node: NodeId) -> SimAddr {
        if let Some(old) = self.by_node.remove(&node) {
            self.by_addr.remove(&old);
        }
        let a = self.fresh();
        self.by_node.insert(node, a);
        self.by_addr.insert(a, node);
        self.reassignments += 1;
        a
    }

    /// Current address of a node, if assigned.
    pub fn addr_of(&self, node: NodeId) -> Option<SimAddr> {
        self.by_node.get(&node).copied()
    }

    /// Node currently reachable at `addr`, if any.
    pub fn node_at(&self, addr: SimAddr) -> Option<NodeId> {
        self.by_addr.get(&addr).copied()
    }

    /// Total number of hand-offs performed.
    pub fn reassignments(&self) -> u64 {
        self.reassignments
    }
}

impl crate::snapshot::Snap for AddressBook {
    fn snap(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_u32(self.next);
        crate::snapshot::snap_hash_map(&self.by_node, w);
        w.put_u64(self.reassignments);
    }
    fn unsnap(r: &mut crate::snapshot::SnapReader<'_>) -> Self {
        let next = r.get_u32();
        let by_node: HashMap<NodeId, SimAddr> = crate::snapshot::unsnap_hash_map(r);
        // The reverse index is derived state: rebuild it.
        let by_addr = by_node.iter().map(|(&n, &a)| (a, n)).collect();
        AddressBook {
            next,
            by_node,
            by_addr,
            reassignments: r.get_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_is_idempotent() {
        let mut book = AddressBook::new();
        let a = book.assign(NodeId(3));
        let b = book.assign(NodeId(3));
        assert_eq!(a, b);
    }

    #[test]
    fn addresses_are_unique() {
        let mut book = AddressBook::new();
        let a = book.assign(NodeId(1));
        let b = book.assign(NodeId(2));
        assert_ne!(a, b);
    }

    #[test]
    fn reassignment_invalidates_old_route() {
        let mut book = AddressBook::new();
        let n = NodeId(9);
        let old = book.assign(n);
        let new = book.reassign(n);
        assert_eq!(book.node_at(old), None);
        assert_eq!(book.node_at(new), Some(n));
        assert_eq!(book.reassignments(), 1);
    }

    #[test]
    fn display_is_dotted_quad() {
        assert_eq!(SimAddr(10 << 24 | 1).to_string(), "10.0.0.1");
        assert_eq!(NodeId(4).to_string(), "node4");
    }
}
