//! Mobility processes: scheduled IP-address changes with outage windows.
//!
//! The paper emulates mobility by "changing the IP addresses of the clients
//! using the `ifup/ifdown` commands" (§5.1): at each hand-off the host loses
//! connectivity for a short outage, then comes back with a new address and
//! every established TCP connection dead. [`MobilityProcess`] produces that
//! schedule; the simulation world applies its effects (readdressing via
//! [`crate::addr::AddressBook::reassign`], connection teardown).

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Generator of hand-off instants for one mobile host.
#[derive(Debug, Clone)]
pub struct MobilityProcess {
    /// Mean interval between hand-offs (the paper sweeps 0.5–6 minutes).
    period: SimDuration,
    /// Multiplicative jitter applied to each interval (0 = strictly periodic).
    jitter: f64,
    /// Connectivity outage at each hand-off (interface down + DHCP).
    outage: SimDuration,
    next_at: SimTime,
}

/// One hand-off: the host is unreachable in `[starts, ends)` and owns a new
/// address from `ends` onwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handoff {
    /// When connectivity is lost.
    pub starts: SimTime,
    /// When the host is reachable again (at its new address).
    pub ends: SimTime,
}

impl MobilityProcess {
    /// A strictly periodic process with the given outage.
    pub fn periodic(period: SimDuration, outage: SimDuration) -> Self {
        Self::with_jitter(period, outage, 0.0)
    }

    /// A process whose intervals are jittered by ±`jitter` (fraction of the
    /// period), desynchronizing multiple mobile hosts.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `jitter` is outside `[0, 1)`.
    pub fn with_jitter(period: SimDuration, outage: SimDuration, jitter: f64) -> Self {
        assert!(!period.is_zero(), "mobility period must be positive");
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        MobilityProcess {
            period,
            jitter,
            outage,
            next_at: SimTime::ZERO + period,
        }
    }

    /// A host that never moves (the control arm of experiments).
    ///
    /// `next_handoff` always returns `None`.
    pub fn stationary() -> Self {
        MobilityProcess {
            period: SimDuration::MAX,
            jitter: 0.0,
            outage: SimDuration::ZERO,
            next_at: SimTime::MAX,
        }
    }

    /// The configured mean hand-off interval.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The configured outage duration.
    pub fn outage(&self) -> SimDuration {
        self.outage
    }

    /// Advances the process and returns the next hand-off, or `None` for a
    /// stationary host.
    pub fn next_handoff(&mut self, rng: &mut SimRng) -> Option<Handoff> {
        if self.next_at == SimTime::MAX {
            return None;
        }
        let starts = self.next_at;
        let ends = starts + self.outage;
        let gap = if self.jitter > 0.0 {
            SimDuration::from_secs_f64(rng.jitter(self.period.as_secs_f64(), self.jitter))
        } else {
            self.period
        };
        // Next interval is measured from recovery, so the *effective*
        // connected time between hand-offs is `gap` regardless of outage.
        self.next_at = ends + gap;
        Some(Handoff { starts, ends })
    }
}

impl crate::snapshot::Snap for MobilityProcess {
    fn snap(&self, w: &mut crate::snapshot::SnapWriter) {
        self.period.snap(w);
        w.put_f64(self.jitter);
        self.outage.snap(w);
        self.next_at.snap(w);
    }
    fn unsnap(r: &mut crate::snapshot::SnapReader<'_>) -> Self {
        MobilityProcess {
            period: crate::snapshot::Snap::unsnap(r),
            jitter: r.get_f64(),
            outage: crate::snapshot::Snap::unsnap(r),
            next_at: crate::snapshot::Snap::unsnap(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_schedule() {
        let mut m = MobilityProcess::periodic(SimDuration::from_mins(2), SimDuration::from_secs(3));
        let mut rng = SimRng::new(0);
        let h1 = m.next_handoff(&mut rng).unwrap();
        let h2 = m.next_handoff(&mut rng).unwrap();
        assert_eq!(h1.starts, SimTime::from_secs(120));
        assert_eq!(h1.ends, SimTime::from_secs(123));
        assert_eq!(h2.starts, SimTime::from_secs(243));
    }

    #[test]
    fn stationary_never_moves() {
        let mut m = MobilityProcess::stationary();
        let mut rng = SimRng::new(0);
        assert_eq!(m.next_handoff(&mut rng), None);
        assert_eq!(m.next_handoff(&mut rng), None);
    }

    #[test]
    fn jitter_bounds_intervals() {
        let mut m =
            MobilityProcess::with_jitter(SimDuration::from_secs(100), SimDuration::ZERO, 0.2);
        let mut rng = SimRng::new(9);
        let mut prev_end = SimTime::ZERO;
        for _ in 0..200 {
            let h = m.next_handoff(&mut rng).unwrap();
            let gap = (h.starts - prev_end).as_secs_f64();
            assert!((80.0..=120.0).contains(&gap), "gap={gap}");
            prev_end = h.ends;
        }
    }

    #[test]
    fn deterministic_across_identical_rngs() {
        let mut m1 = MobilityProcess::with_jitter(
            SimDuration::from_secs(60),
            SimDuration::from_secs(1),
            0.3,
        );
        let mut m2 = m1.clone();
        let mut r1 = SimRng::new(4);
        let mut r2 = SimRng::new(4);
        for _ in 0..50 {
            assert_eq!(m1.next_handoff(&mut r1), m2.next_handoff(&mut r2));
        }
    }
}
