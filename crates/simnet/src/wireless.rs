//! Shared-medium wireless channel model.
//!
//! The property of WLANs that drives most of the paper's findings is that
//! **uplink and downlink traffic contend for the same channel capacity**
//! (§3.3: "the shared channel nature of the wireless link, where the
//! uploads and downloads are contending for the same wireless channel
//! bandwidth"). A [`WirelessChannel`] therefore serializes *all* frames —
//! whichever direction they travel — through one transmitter-time resource,
//! unlike [`crate::link::Link`] where each direction has its own pipe.
//!
//! Frames additionally suffer random bit errors (`PER = 1−(1−BER)^bits`,
//! so longer frames are lossier — the piggybacked-ACK effect of §3.2), a
//! fixed per-frame MAC overhead approximating 802.11 contention/ACK
//! exchanges, and drop-tail queueing.

use crate::link::{packet_error_rate, DropReason, SendOutcome};
use crate::rng::SimRng;
use crate::time::{transmission_delay, SimDuration, SimTime};
use std::collections::VecDeque;

/// Direction of a frame relative to the mobile station.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// From the mobile station towards the network (its transmissions).
    Up,
    /// From the network towards the mobile station.
    Down,
}

/// Static parameters of a wireless channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WirelessConfig {
    /// Effective shared channel capacity in bits per second (goodput-level,
    /// i.e. after rate adaptation but before our explicit MAC overhead).
    pub bandwidth_bps: u64,
    /// One-way propagation delay (includes AP processing).
    pub prop_delay: SimDuration,
    /// Drop-tail queue capacity in frames, shared across directions.
    pub queue_frames: usize,
    /// Random bit-error rate applied per frame.
    pub ber: f64,
    /// Fixed per-frame channel-occupancy overhead (DIFS/SIFS/MAC-ACK).
    pub per_frame_overhead: SimDuration,
}

impl WirelessConfig {
    /// An 802.11g-like WLAN: ~22 Mbit/s effective, 2 ms latency, 100-frame
    /// queue, error-free until an experiment injects a BER.
    pub fn wlan_80211g() -> Self {
        WirelessConfig {
            bandwidth_bps: 22_000_000,
            prop_delay: SimDuration::from_millis(2),
            queue_frames: 100,
            ber: 0.0,
            per_frame_overhead: SimDuration::from_micros(100),
        }
    }

    /// A deliberately slow channel for experiments that sweep capacity in
    /// KB/s (the paper's Fig. 8(c) sweeps 50–200 KB/s).
    pub fn throttled(bytes_per_sec: u64) -> Self {
        WirelessConfig {
            bandwidth_bps: bytes_per_sec * 8,
            prop_delay: SimDuration::from_millis(2),
            queue_frames: 100,
            ber: 0.0,
            per_frame_overhead: SimDuration::from_micros(100),
        }
    }
}

/// Per-direction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirectionStats {
    /// Frames accepted into the queue.
    pub accepted: u64,
    /// Frames delivered.
    pub delivered: u64,
    /// Frames dropped at the full queue.
    pub dropped_buffer: u64,
    /// Frames corrupted in flight.
    pub dropped_error: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
}

/// A half-duplex shared wireless channel. See the module docs.
#[derive(Debug, Clone)]
pub struct WirelessChannel {
    config: WirelessConfig,
    completions: VecDeque<SimTime>,
    busy_until: SimTime,
    up: DirectionStats,
    down: DirectionStats,
    /// Virtual-time log of buffer drops (useful for Fig. 2(b,c) plots).
    drop_log: Vec<SimTime>,
}

impl WirelessChannel {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics on zero bandwidth, zero queue, or BER outside `[0, 1)`.
    pub fn new(config: WirelessConfig) -> Self {
        assert!(
            config.bandwidth_bps > 0,
            "channel bandwidth must be positive"
        );
        assert!(config.queue_frames > 0, "queue must hold at least 1 frame");
        assert!((0.0..1.0).contains(&config.ber), "BER must be in [0, 1)");
        WirelessChannel {
            config,
            completions: VecDeque::new(),
            busy_until: SimTime::ZERO,
            up: DirectionStats::default(),
            down: DirectionStats::default(),
            drop_log: Vec::new(),
        }
    }

    /// The channel's static parameters.
    pub fn config(&self) -> &WirelessConfig {
        &self.config
    }

    /// Updates the bit-error rate mid-run (experiments sweep this).
    pub fn set_ber(&mut self, ber: f64) {
        assert!((0.0..1.0).contains(&ber));
        self.config.ber = ber;
    }

    /// Updates the channel capacity mid-run (fault injection squeezes
    /// and restores it). Frames already on the air keep their old
    /// serialization time.
    ///
    /// # Panics
    ///
    /// Panics on zero bandwidth.
    pub fn set_bandwidth(&mut self, bandwidth_bps: u64) {
        assert!(bandwidth_bps > 0, "channel bandwidth must be positive");
        self.config.bandwidth_bps = bandwidth_bps;
    }

    fn expire(&mut self, now: SimTime) {
        while let Some(&front) = self.completions.front() {
            if front <= now {
                self.completions.pop_front();
            } else {
                break;
            }
        }
    }

    /// Frames currently queued for, or occupying, the channel.
    pub fn queue_len(&mut self, now: SimTime) -> usize {
        self.expire(now);
        self.completions.len()
    }

    fn stats_mut(&mut self, dir: Direction) -> &mut DirectionStats {
        match dir {
            Direction::Up => &mut self.up,
            Direction::Down => &mut self.down,
        }
    }

    /// Offers a frame of `bytes` travelling in `dir` at time `now`.
    ///
    /// Both directions share the transmitter-time resource: a frame must
    /// wait for every earlier frame, regardless of direction. This is what
    /// makes P2P uploads steal capacity from downloads on the same host.
    pub fn send(
        &mut self,
        now: SimTime,
        dir: Direction,
        bytes: u32,
        rng: &mut SimRng,
    ) -> SendOutcome {
        self.expire(now);
        if self.completions.len() >= self.config.queue_frames {
            self.stats_mut(dir).dropped_buffer += 1;
            self.drop_log.push(now);
            return SendOutcome::Dropped {
                reason: DropReason::BufferFull,
            };
        }
        let start = self.busy_until.max(now);
        let air_time = transmission_delay(bytes as u64, self.config.bandwidth_bps)
            + self.config.per_frame_overhead;
        let finish = start + air_time;
        self.busy_until = finish;
        self.completions.push_back(finish);
        self.stats_mut(dir).accepted += 1;

        if rng.chance(packet_error_rate(self.config.ber, bytes)) {
            self.stats_mut(dir).dropped_error += 1;
            return SendOutcome::Dropped {
                reason: DropReason::BitError,
            };
        }
        let s = self.stats_mut(dir);
        s.delivered += 1;
        s.bytes_delivered += bytes as u64;
        SendOutcome::Delivered {
            at: finish + self.config.prop_delay,
        }
    }

    /// Counters for one direction.
    pub fn stats(&self, dir: Direction) -> DirectionStats {
        match dir {
            Direction::Up => self.up,
            Direction::Down => self.down,
        }
    }

    /// Times at which frames were dropped at the full queue.
    pub fn drop_log(&self) -> &[SimTime] {
        &self.drop_log
    }

    /// Fraction of `[0, now]` the channel spent transmitting (an upper
    /// bound: queued-but-unsent air time counts once committed).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        let busy = self.busy_until.min(now);
        busy.as_secs_f64() / now.as_secs_f64()
    }

    /// Resets counters and the drop log (channel state is preserved).
    pub fn reset_stats(&mut self) {
        self.up = DirectionStats::default();
        self.down = DirectionStats::default();
        self.drop_log.clear();
    }
}

use crate::snapshot::{Snap, SnapReader, SnapWriter};

impl Snap for WirelessConfig {
    // Faults mutate `ber` and `bandwidth_bps` in place, so the config is
    // live state, not static structure.
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.bandwidth_bps);
        self.prop_delay.snap(w);
        w.put_usize(self.queue_frames);
        w.put_f64(self.ber);
        self.per_frame_overhead.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        WirelessConfig {
            bandwidth_bps: r.get_u64(),
            prop_delay: Snap::unsnap(r),
            queue_frames: r.get_usize(),
            ber: r.get_f64(),
            per_frame_overhead: Snap::unsnap(r),
        }
    }
}

impl Snap for DirectionStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.accepted);
        w.put_u64(self.delivered);
        w.put_u64(self.dropped_buffer);
        w.put_u64(self.dropped_error);
        w.put_u64(self.bytes_delivered);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        DirectionStats {
            accepted: r.get_u64(),
            delivered: r.get_u64(),
            dropped_buffer: r.get_u64(),
            dropped_error: r.get_u64(),
            bytes_delivered: r.get_u64(),
        }
    }
}

impl Snap for WirelessChannel {
    fn snap(&self, w: &mut SnapWriter) {
        self.config.snap(w);
        self.completions.snap(w);
        self.busy_until.snap(w);
        self.up.snap(w);
        self.down.snap(w);
        self.drop_log.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        WirelessChannel {
            config: Snap::unsnap(r),
            completions: Snap::unsnap(r),
            busy_until: Snap::unsnap(r),
            up: Snap::unsnap(r),
            down: Snap::unsnap(r),
            drop_log: Snap::unsnap(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(bw: u64) -> WirelessChannel {
        WirelessChannel::new(WirelessConfig {
            bandwidth_bps: bw,
            prop_delay: SimDuration::ZERO,
            queue_frames: 50,
            ber: 0.0,
            per_frame_overhead: SimDuration::ZERO,
        })
    }

    #[test]
    fn directions_share_capacity() {
        // 8 kbit/s -> 1 byte per ms. Two 500-byte frames, opposite
        // directions, offered at t=0: the second finishes 500 ms after the
        // first because they serialize on the same medium.
        let mut ch = channel(8_000);
        let mut rng = SimRng::new(0);
        let a = ch
            .send(SimTime::ZERO, Direction::Up, 500, &mut rng)
            .delivered_at()
            .unwrap();
        let b = ch
            .send(SimTime::ZERO, Direction::Down, 500, &mut rng)
            .delivered_at()
            .unwrap();
        assert_eq!(a, SimTime::from_millis(500));
        assert_eq!(b, SimTime::from_secs(1));
    }

    #[test]
    fn shared_queue_drops_either_direction() {
        let mut ch = WirelessChannel::new(WirelessConfig {
            bandwidth_bps: 8_000,
            prop_delay: SimDuration::ZERO,
            queue_frames: 2,
            ber: 0.0,
            per_frame_overhead: SimDuration::ZERO,
        });
        let mut rng = SimRng::new(0);
        assert!(ch
            .send(SimTime::ZERO, Direction::Up, 100, &mut rng)
            .delivered_at()
            .is_some());
        assert!(ch
            .send(SimTime::ZERO, Direction::Up, 100, &mut rng)
            .delivered_at()
            .is_some());
        // Queue full: a *downlink* frame is refused too.
        assert_eq!(
            ch.send(SimTime::ZERO, Direction::Down, 100, &mut rng),
            SendOutcome::Dropped {
                reason: DropReason::BufferFull
            }
        );
        assert_eq!(ch.stats(Direction::Down).dropped_buffer, 1);
        assert_eq!(ch.drop_log().len(), 1);
    }

    #[test]
    fn per_frame_overhead_consumes_air_time() {
        let mut with = WirelessChannel::new(WirelessConfig {
            bandwidth_bps: 8_000_000,
            prop_delay: SimDuration::ZERO,
            queue_frames: 10,
            ber: 0.0,
            per_frame_overhead: SimDuration::from_micros(500),
        });
        let mut without = channel(8_000_000);
        let mut rng = SimRng::new(0);
        let a = with
            .send(SimTime::ZERO, Direction::Up, 1000, &mut rng)
            .delivered_at()
            .unwrap();
        let b = without
            .send(SimTime::ZERO, Direction::Up, 1000, &mut rng)
            .delivered_at()
            .unwrap();
        assert_eq!(a - b, SimDuration::from_micros(500));
    }

    #[test]
    fn utilization_tracks_air_time() {
        let mut ch = channel(8_000); // 1 byte/ms
        let mut rng = SimRng::new(0);
        assert_eq!(ch.utilization(SimTime::ZERO), 0.0);
        // 500 bytes = 500 ms of air time.
        ch.send(SimTime::ZERO, Direction::Up, 500, &mut rng);
        assert!((ch.utilization(SimTime::from_secs(1)) - 0.5).abs() < 1e-9);
        // Long idle: utilization decays toward zero.
        assert!(ch.utilization(SimTime::from_secs(100)) < 0.01);
    }

    #[test]
    fn ber_loses_long_frames_more_often() {
        let mut ch = WirelessChannel::new(WirelessConfig {
            bandwidth_bps: 1_000_000_000,
            prop_delay: SimDuration::ZERO,
            queue_frames: 1_000_000,
            ber: 2e-5,
            per_frame_overhead: SimDuration::ZERO,
        });
        let mut rng = SimRng::new(42);
        let trials = 10_000;
        let mut short_lost = 0u32;
        let mut long_lost = 0u32;
        let mut t = SimTime::ZERO;
        for _ in 0..trials {
            if ch
                .send(t, Direction::Up, 40, &mut rng)
                .delivered_at()
                .is_none()
            {
                short_lost += 1;
            }
            if ch
                .send(t, Direction::Up, 1500, &mut rng)
                .delivered_at()
                .is_none()
            {
                long_lost += 1;
            }
            t += SimDuration::from_millis(1);
        }
        assert!(
            long_lost > short_lost * 5,
            "long={long_lost} short={short_lost}"
        );
    }
}
