//! Age-based Manipulation (AM) — paper §4.1, pseudo-code Fig. 5.
//!
//! A packet-level filter on the **mobile host only**, interposed between
//! its TCP endpoints and the wireless link (the paper realized it with
//! Netfilter). Two manipulations, keyed by the *age* of the connection —
//! the remote sender's congestion window, estimated at the receiver as the
//! bytes that arrived in the last RTT:
//!
//! * **YOUNG** (estimated cwnd < γ ≈ 6 segments ≈ 9 KB): ACK information
//!   piggybacked on outgoing data is *decoupled* — a short pure ACK is
//!   emitted ahead of the data segment. Pure ACKs are ~40 B instead of
//!   ~1500 B, so at a given BER they survive far more often, protecting
//!   exactly the small-window connections that throughput-wise cannot
//!   afford ACK losses.
//! * **MATURE**: during loss recovery the receiver's pure DUPACKs *add*
//!   packets to the wireless leg (they no longer ride on data). AM drops
//!   one of every four DUPACKs so that after fast retransmit the number of
//!   packets in transit actually halves, as congestion control intends.

use metrics::handle::MetricsHandle;
use metrics::registry::Counter;
use sim_tcp::segment::Segment;
use sim_tcp::seq::SeqNum;
use simnet::time::{SimDuration, SimTime};

/// AM tunables.
#[derive(Clone, Copy, Debug)]
pub struct AmConfig {
    /// Age threshold γ in bytes; below it the connection is YOUNG. The
    /// paper uses 9 KB ≈ 6 full segments (citing \[10\]).
    pub gamma_bytes: u32,
    /// Drop every `dupack_drop_modulo`-th DUPACK when MATURE (paper: 4).
    pub dupack_drop_modulo: u64,
    /// RTT estimate used to window the remote-cwnd measurement before a
    /// live sample is available.
    pub rtt_hint: SimDuration,
}

impl Default for AmConfig {
    fn default() -> Self {
        AmConfig {
            gamma_bytes: 9 * 1024,
            dupack_drop_modulo: 4,
            rtt_hint: SimDuration::from_millis(100),
        }
    }
}

/// Connection age as seen by AM.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Age {
    /// Remote congestion window below γ: protect ACKs.
    Young,
    /// Remote congestion window at or above γ: thin DUPACKs.
    Mature,
}

/// What the filter did with one outgoing segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AmOutput {
    /// Forward the segment unchanged.
    Pass(Segment),
    /// Emit a decoupled pure ACK ahead of the (unchanged) data segment.
    Decoupled {
        /// The extra pure ACK (40 B on the wire).
        pure_ack: Segment,
        /// The original data segment.
        data: Segment,
    },
    /// Drop the segment (a sacrificed DUPACK).
    Drop,
}

/// AM counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AmStats {
    /// Piggybacked ACKs that were decoupled.
    pub decoupled: u64,
    /// DUPACKs dropped while MATURE.
    pub dupacks_dropped: u64,
    /// DUPACKs observed in total.
    pub dupacks_seen: u64,
}

/// The per-connection AM filter. Feed incoming segments (from the remote
/// peer) to [`AgeFilter::on_incoming`] so the age estimate tracks the
/// remote congestion window, and pass every outgoing segment through
/// [`AgeFilter::on_outgoing`].
///
/// ```
/// use sim_tcp::segment::{SegFlags, Segment};
/// use sim_tcp::seq::SeqNum;
/// use simnet::time::SimTime;
/// use wp2p::am::{AgeFilter, AmConfig, AmOutput};
///
/// let mut filter = AgeFilter::new(AmConfig::default());
/// // A young connection: a data segment with fresh ACK info is decoupled.
/// let seg = Segment {
///     seq: SeqNum(0),
///     ack: SeqNum(5000),
///     flags: SegFlags { ack: true, ..Default::default() },
///     payload: 1460,
///     window: 65535,
/// };
/// match filter.on_outgoing(seg, SimTime::ZERO) {
///     AmOutput::Decoupled { pure_ack, .. } => assert_eq!(pure_ack.wire_bytes(), 40),
///     other => panic!("expected decoupling, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct AgeFilter {
    config: AmConfig,
    /// Measurement window for the remote cwnd estimate.
    window_started: SimTime,
    bytes_this_window: u32,
    /// Estimate from the previous window (paper: "uses the current value
    /// as an estimate … for the next rtt").
    cwnd_estimate: u32,
    /// Cumulative-ACK value of the last outgoing ACK, to spot duplicates.
    last_ack: Option<SeqNum>,
    dupack_run: u64,
    stats: AmStats,
    m_decoupled: Counter,
    m_dupacks_dropped: Counter,
}

impl AgeFilter {
    /// Creates a filter for one connection.
    pub fn new(config: AmConfig) -> Self {
        AgeFilter {
            config,
            window_started: SimTime::ZERO,
            bytes_this_window: 0,
            cwnd_estimate: 0,
            last_ack: None,
            dupack_run: 0,
            stats: AmStats::default(),
            m_decoupled: Counter::default(),
            m_dupacks_dropped: Counter::default(),
        }
    }

    /// Wires this filter's manipulation counters into `handle` under
    /// `am.<label>.decoupled` and `am.<label>.dupacks_dropped`. Inert
    /// when the handle is disabled.
    pub fn attach_metrics(&mut self, handle: &MetricsHandle, label: &str) {
        self.m_decoupled = handle.counter(&format!("am.{label}.decoupled"));
        self.m_dupacks_dropped = handle.counter(&format!("am.{label}.dupacks_dropped"));
    }

    /// The filter's counters.
    pub fn stats(&self) -> AmStats {
        self.stats
    }

    /// Current age classification (Fig. 5 lines 1–6).
    pub fn age(&self) -> Age {
        if self.cwnd_estimate < self.config.gamma_bytes {
            Age::Young
        } else {
            Age::Mature
        }
    }

    /// The current remote-cwnd estimate in bytes.
    pub fn cwnd_estimate(&self) -> u32 {
        self.cwnd_estimate
    }

    /// Updates the measurement window to the live RTT estimate (the paper's
    /// Netfilter module counts bytes "in every rtt"; the embedder feeds the
    /// connection's smoothed RTT here as it evolves).
    pub fn set_window(&mut self, rtt: SimDuration) {
        if !rtt.is_zero() {
            self.config.rtt_hint = rtt;
        }
    }

    /// Observes a segment arriving from the remote peer; accumulates the
    /// per-RTT byte count that estimates the remote congestion window.
    pub fn on_incoming(&mut self, seg: &Segment, now: SimTime) {
        let window = self.config.rtt_hint;
        if now.saturating_since(self.window_started) >= window {
            self.cwnd_estimate = self.bytes_this_window;
            self.bytes_this_window = 0;
            self.window_started = now;
        }
        self.bytes_this_window = self.bytes_this_window.saturating_add(seg.payload);
    }

    /// Filters one outgoing segment (Fig. 5 lines 7–13).
    pub fn on_outgoing(&mut self, seg: Segment, _now: SimTime) -> AmOutput {
        let age = self.age();

        // DUPACK detection: a pure ACK repeating the previous ACK value.
        if seg.is_pure_ack() && self.last_ack == Some(seg.ack) {
            self.dupack_run += 1;
            self.stats.dupacks_seen += 1;
            if age == Age::Mature
                && self
                    .dupack_run
                    .is_multiple_of(self.config.dupack_drop_modulo)
            {
                self.stats.dupacks_dropped += 1;
                self.m_dupacks_dropped.inc();
                return AmOutput::Drop;
            }
            return AmOutput::Pass(seg);
        }
        let new_ack_value = seg.flags.ack && self.last_ack != Some(seg.ack);
        if seg.flags.ack {
            if new_ack_value {
                self.dupack_run = 0;
            }
            self.last_ack = Some(seg.ack);
        }

        // Decouple piggybacked ACKs while YOUNG — but only when the data
        // segment carries *new* ACK information (Fig. 5 line 9 "conveys
        // any new ACK information … as separate pure ACKs"). Re-emitting
        // an unchanged cumulative ACK as a pure segment would look like a
        // duplicate ACK to the remote sender and trigger spurious fast
        // retransmits.
        if seg.is_piggybacked() && age == Age::Young && new_ack_value {
            self.stats.decoupled += 1;
            self.m_decoupled.inc();
            let pure_ack = Segment {
                seq: seg.seq,
                ack: seg.ack,
                flags: sim_tcp::segment::SegFlags {
                    ack: true,
                    ..Default::default()
                },
                payload: 0,
                window: seg.window,
            };
            return AmOutput::Decoupled {
                pure_ack,
                data: seg,
            };
        }
        AmOutput::Pass(seg)
    }
}

use simnet::snapshot::{Snap, SnapReader, SnapWriter};

impl Snap for AmConfig {
    fn snap(&self, w: &mut SnapWriter) {
        // `rtt_hint` is live state: `set_window` overwrites it with the
        // measured RTT, so the whole config rides in the blob.
        w.put_u32(self.gamma_bytes);
        w.put_u64(self.dupack_drop_modulo);
        self.rtt_hint.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        AmConfig {
            gamma_bytes: r.get_u32(),
            dupack_drop_modulo: r.get_u64(),
            rtt_hint: Snap::unsnap(r),
        }
    }
}

impl Snap for AmStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.decoupled);
        w.put_u64(self.dupacks_dropped);
        w.put_u64(self.dupacks_seen);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        AmStats {
            decoupled: r.get_u64(),
            dupacks_dropped: r.get_u64(),
            dupacks_seen: r.get_u64(),
        }
    }
}

impl Snap for AgeFilter {
    fn snap(&self, w: &mut SnapWriter) {
        self.config.snap(w);
        self.window_started.snap(w);
        w.put_u32(self.bytes_this_window);
        w.put_u32(self.cwnd_estimate);
        self.last_ack.snap(w);
        w.put_u64(self.dupack_run);
        self.stats.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        // Counters are re-wired by the embedder via `attach_metrics`.
        AgeFilter {
            config: Snap::unsnap(r),
            window_started: Snap::unsnap(r),
            bytes_this_window: r.get_u32(),
            cwnd_estimate: r.get_u32(),
            last_ack: Snap::unsnap(r),
            dupack_run: r.get_u64(),
            stats: Snap::unsnap(r),
            m_decoupled: Counter::default(),
            m_dupacks_dropped: Counter::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_tcp::segment::SegFlags;

    fn data_seg(seq: u32, ack: u32, payload: u32) -> Segment {
        Segment {
            seq: SeqNum(seq),
            ack: SeqNum(ack),
            flags: SegFlags {
                ack: true,
                ..Default::default()
            },
            payload,
            window: 65535,
        }
    }

    fn pure_ack(ack: u32) -> Segment {
        data_seg(0, ack, 0)
    }

    fn mature_filter() -> AgeFilter {
        let mut f = AgeFilter::new(AmConfig::default());
        // Feed two RTT windows of heavy incoming data.
        let rtt = AmConfig::default().rtt_hint;
        for w in 0..2u64 {
            let base = SimTime::ZERO + rtt.saturating_mul(w);
            for i in 0..20 {
                f.on_incoming(
                    &data_seg(i * 1460, 0, 1460),
                    base + SimDuration::from_millis(i as u64),
                );
            }
        }
        assert_eq!(f.age(), Age::Mature);
        f
    }

    #[test]
    fn starts_young() {
        let f = AgeFilter::new(AmConfig::default());
        assert_eq!(f.age(), Age::Young);
        assert_eq!(f.cwnd_estimate(), 0);
    }

    #[test]
    fn incoming_volume_matures_the_connection() {
        let f = mature_filter();
        assert!(f.cwnd_estimate() >= 9 * 1024);
    }

    #[test]
    fn young_decouples_piggybacked_acks() {
        let mut f = AgeFilter::new(AmConfig::default());
        let out = f.on_outgoing(data_seg(100, 500, 1460), SimTime::ZERO);
        match out {
            AmOutput::Decoupled { pure_ack, data } => {
                assert!(pure_ack.is_pure_ack());
                assert_eq!(pure_ack.ack, SeqNum(500));
                assert_eq!(pure_ack.wire_bytes(), 40);
                assert_eq!(data.payload, 1460);
            }
            other => panic!("expected decoupling, got {other:?}"),
        }
        assert_eq!(f.stats().decoupled, 1);
    }

    #[test]
    fn mature_passes_piggybacked_acks() {
        let mut f = mature_filter();
        let seg = data_seg(100, 500, 1460);
        assert_eq!(f.on_outgoing(seg, SimTime::ZERO), AmOutput::Pass(seg));
        assert_eq!(f.stats().decoupled, 0);
    }

    #[test]
    fn young_passes_pure_acks_untouched() {
        let mut f = AgeFilter::new(AmConfig::default());
        let seg = pure_ack(500);
        assert_eq!(f.on_outgoing(seg, SimTime::ZERO), AmOutput::Pass(seg));
    }

    #[test]
    fn mature_drops_every_fourth_dupack() {
        let mut f = mature_filter();
        // First a fresh ACK to set the baseline.
        f.on_outgoing(pure_ack(500), SimTime::ZERO);
        let mut dropped = 0;
        let mut passed = 0;
        for _ in 0..12 {
            match f.on_outgoing(pure_ack(500), SimTime::ZERO) {
                AmOutput::Drop => dropped += 1,
                AmOutput::Pass(_) => passed += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(dropped, 3, "every 4th of 12 dupacks dropped");
        assert_eq!(passed, 9);
        assert_eq!(f.stats().dupacks_dropped, 3);
        assert_eq!(f.stats().dupacks_seen, 12);
    }

    #[test]
    fn young_never_drops_dupacks() {
        let mut f = AgeFilter::new(AmConfig::default());
        f.on_outgoing(pure_ack(500), SimTime::ZERO);
        for _ in 0..12 {
            assert!(matches!(
                f.on_outgoing(pure_ack(500), SimTime::ZERO),
                AmOutput::Pass(_)
            ));
        }
        assert_eq!(f.stats().dupacks_dropped, 0);
    }

    #[test]
    fn new_ack_value_resets_dupack_run() {
        let mut f = mature_filter();
        f.on_outgoing(pure_ack(500), SimTime::ZERO);
        for _ in 0..3 {
            f.on_outgoing(pure_ack(500), SimTime::ZERO);
        }
        // ACK advances: run resets.
        f.on_outgoing(pure_ack(600), SimTime::ZERO);
        let mut dropped = 0;
        for _ in 0..3 {
            if matches!(f.on_outgoing(pure_ack(600), SimTime::ZERO), AmOutput::Drop) {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 0, "fewer than 4 dupacks since reset");
    }

    #[test]
    fn idle_incoming_window_reverts_to_young() {
        let mut f = mature_filter();
        // A long quiet period: next window sees zero bytes.
        let later = SimTime::from_secs(100);
        f.on_incoming(&pure_ack(0), later);
        // One more window boundary flushes the (empty) count into the
        // estimate.
        let later2 = later + AmConfig::default().rtt_hint;
        f.on_incoming(&pure_ack(0), later2);
        assert_eq!(f.age(), Age::Young);
    }
}
