//! wP2P feature configuration.
//!
//! Every component is independently switchable so experiments can run the
//! paper's ablations: the default client (all off), single components
//! (Figs. 8(a), 8(b), 8(c), 9), or the full integrated stack (Fig. 7).

use crate::am::AmConfig;
use crate::ia::LihdConfig;
use crate::ma::PrSchedule;

/// Which wP2P components a mobile client runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct WP2pConfig {
    /// Age-based Manipulation of bi-directional TCP (packet filter).
    pub am: Option<AmConfig>,
    /// LIHD upload-rate control.
    pub lihd: Option<LihdConfig>,
    /// Reuse the stored peer-id after task re-initiation within a swarm.
    pub identity_retention: bool,
    /// Mobility-aware fetching schedule; `None` keeps rarest-first.
    pub mobility_fetching: Option<PrSchedule>,
    /// Immediately re-dial stored peers after a hand-off.
    pub role_reversal: bool,
}

impl WP2pConfig {
    /// The unmodified default client (every component off).
    pub fn default_client() -> Self {
        WP2pConfig::default()
    }

    /// The full wP2P client with the paper's parameters; `u_max` is the
    /// wireless capacity in bytes/second (for LIHD).
    pub fn full(u_max: f64) -> Self {
        WP2pConfig {
            am: Some(AmConfig::default()),
            lihd: Some(LihdConfig::paper(u_max)),
            identity_retention: true,
            mobility_fetching: Some(PrSchedule::DownloadedFraction),
            role_reversal: true,
        }
    }

    /// Only AM (the Fig. 8(a) arm).
    pub fn am_only() -> Self {
        WP2pConfig {
            am: Some(AmConfig::default()),
            ..Default::default()
        }
    }

    /// Only identity retention (the Fig. 8(b) arm).
    pub fn identity_only() -> Self {
        WP2pConfig {
            identity_retention: true,
            ..Default::default()
        }
    }

    /// Only LIHD (the Fig. 8(c) arm).
    pub fn lihd_only(u_max: f64) -> Self {
        WP2pConfig {
            lihd: Some(LihdConfig::paper(u_max)),
            ..Default::default()
        }
    }

    /// Only mobility-aware fetching (the Fig. 9(a,b) arm).
    pub fn fetching_only(schedule: PrSchedule) -> Self {
        WP2pConfig {
            mobility_fetching: Some(schedule),
            ..Default::default()
        }
    }

    /// Only role reversal (the Fig. 9(c) arm).
    pub fn role_reversal_only() -> Self {
        WP2pConfig {
            role_reversal: true,
            ..Default::default()
        }
    }

    /// True when every component is disabled (a default client).
    pub fn is_default_client(&self) -> bool {
        self.am.is_none()
            && self.lihd.is_none()
            && !self.identity_retention
            && self.mobility_fetching.is_none()
            && !self.role_reversal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_client_has_everything_off() {
        assert!(WP2pConfig::default_client().is_default_client());
    }

    #[test]
    fn full_stack_has_everything_on() {
        let cfg = WP2pConfig::full(200.0 * 1024.0);
        assert!(cfg.am.is_some());
        assert!(cfg.lihd.is_some());
        assert!(cfg.identity_retention);
        assert!(cfg.mobility_fetching.is_some());
        assert!(cfg.role_reversal);
        assert!(!cfg.is_default_client());
    }

    #[test]
    fn single_component_arms() {
        assert!(WP2pConfig::am_only().am.is_some());
        assert!(WP2pConfig::am_only().lihd.is_none());
        assert!(WP2pConfig::identity_only().identity_retention);
        assert!(WP2pConfig::lihd_only(1000.0).lihd.is_some());
        assert!(WP2pConfig::role_reversal_only().role_reversal);
        let f = WP2pConfig::fetching_only(PrSchedule::DownloadedFraction);
        assert_eq!(f.mobility_fetching, Some(PrSchedule::DownloadedFraction));
    }
}
