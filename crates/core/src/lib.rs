//! # wp2p — the wireless P2P client enhancements
//!
//! The primary contribution of "On the Impact of Mobile Hosts in
//! Peer-to-Peer Data Networks" (ICDCS 2008): a suite of **mobile-host-only,
//! backward-compatible** modifications to a BitTorrent client that repair
//! the mismatches between P2P design and wireless/mobile environments.
//!
//! * [`am`] — **Age-based Manipulation**: decouple piggybacked ACKs while
//!   the connection is young; thin DUPACK bursts while it is mature
//!   (paper §4.1 / Fig. 5).
//! * [`ia`] — **Incentive-Aware operations**: the LIHD upload-rate
//!   controller that finds the download-maximising upload cap on a shared
//!   wireless channel, and per-swarm identity retention so hand-offs keep
//!   tit-for-tat credit (paper §4.2 / Fig. 6).
//! * [`ma`] — **Mobility-Aware operations**: probabilistic
//!   sequential/rarest-first fetching whose altruism grows with stability,
//!   and role reversal for instant reconnection after an address change
//!   (paper §4.3).
//! * [`config`] — component toggles for running the paper's ablations.
//!
//! All components plug into the `bittorrent` crate's sans-IO client: the
//! MF picker implements [`bittorrent::picker::PiecePicker`], LIHD drives
//! [`bittorrent::client::Client::set_upload_limit`], identity retention
//! supplies the peer-id at task (re)initiation, RR seeds
//! [`bittorrent::client::Client::seed_known_addrs`], and the AM filter
//! rewrites the TCP segment stream of the packet-level transport.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod am;
pub mod config;
pub mod ia;
pub mod ma;

/// Commonly used types.
pub mod prelude {
    pub use crate::am::{Age, AgeFilter, AmConfig, AmOutput, AmStats};
    pub use crate::config::WP2pConfig;
    pub use crate::ia::{IdentityStore, Lihd, LihdConfig};
    pub use crate::ma::{MobilityAwarePicker, PrSchedule, RoleReversal};
}
