//! Mobility-Aware operations (MA) — paper §4.3.
//!
//! * **Mobility-aware fetching (MF)**: fetch the next piece *in sequence*
//!   with probability `1 − p_r` and *rarest-first* with probability `p_r`,
//!   where `p_r` grows as the download (and the host's network stability)
//!   grows — "exponentially increasing altruism". Early disconnections
//!   then still leave a playable prefix; a long-stable host converges to
//!   swarm-friendly rarest-first.
//! * **Role reversal (RR)**: the mobile host continuously remembers its
//!   corresponding peers; when its address changes it immediately
//!   re-initiates connections *as a client* instead of waiting minutes for
//!   fixed peers and the tracker to rediscover its new address. (Serving
//!   content is unaffected: peers serve on connections regardless of who
//!   initiated them.)

use bittorrent::picker::{PickContext, PiecePicker, RarestFirst, Sequential};
use simnet::addr::SimAddr;
use simnet::rng::SimRng;
use simnet::time::SimDuration;

/// How `p_r` (the rarest-first probability) evolves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PrSchedule {
    /// `p_r` equals the downloaded fraction — the setting the paper's
    /// evaluation uses (§5.2.3: "we set the value of p_r … to be equal to
    /// the downloaded percentage of file").
    DownloadedFraction,
    /// Exponentially decreasing selfishness in the downloaded fraction:
    /// `p_r(f) = p0^(1−f)` — starts at `p0` (the paper suggests 20%) and
    /// rises exponentially to 1 at completion.
    ExponentialInProgress {
        /// Initial rarest-first probability at 0% downloaded.
        p0: f64,
    },
    /// Stability-driven: `p_r(t) = 1 − (1 − p0)·e^(−t/τ)` where `t` is the
    /// time since the last disconnection — the "network stability" form of
    /// §4.3.
    Stability {
        /// Initial rarest-first probability right after (re)connection.
        p0: f64,
        /// Time constant of the exponential approach to 1.
        tau: SimDuration,
    },
    /// A constant probability (ablation baseline).
    Fixed(
        /// The constant `p_r`.
        f64,
    ),
}

impl PrSchedule {
    /// Evaluates `p_r` for the current download state.
    pub fn p_rarest(&self, ctx: &PickContext<'_>) -> f64 {
        let f = ctx.downloaded_fraction.clamp(0.0, 1.0);
        match *self {
            PrSchedule::DownloadedFraction => f,
            PrSchedule::ExponentialInProgress { p0 } => {
                let p0 = p0.clamp(1e-6, 1.0);
                p0.powf(1.0 - f)
            }
            PrSchedule::Stability { p0, tau } => {
                let p0 = p0.clamp(0.0, 1.0);
                if tau.is_zero() {
                    return 1.0;
                }
                let t = ctx.stable_for.as_secs_f64() / tau.as_secs_f64();
                1.0 - (1.0 - p0) * (-t).exp()
            }
            PrSchedule::Fixed(p) => p.clamp(0.0, 1.0),
        }
    }
}

/// The MF piece picker: a [`PrSchedule`]-weighted blend of sequential and
/// rarest-first selection.
///
/// ```
/// use bittorrent::picker::{PickContext, PiecePicker};
/// use simnet::rng::SimRng;
/// use simnet::time::SimDuration;
/// use wp2p::ma::{MobilityAwarePicker, PrSchedule};
///
/// let mut picker = MobilityAwarePicker::new(PrSchedule::DownloadedFraction);
/// let availability = vec![3, 3, 3, 1]; // piece 3 is rarest
/// let ctx = PickContext {
///     availability: &availability,
///     downloaded_fraction: 0.0, // fresh download -> pure sequential
///     stable_for: SimDuration::ZERO,
/// };
/// let mut rng = SimRng::new(1);
/// assert_eq!(picker.pick(&[0, 1, 2, 3], &ctx, &mut rng), Some(0));
/// ```
#[derive(Debug)]
pub struct MobilityAwarePicker {
    schedule: PrSchedule,
    rarest: RarestFirst,
    sequential: Sequential,
    /// Last probability used (exposed for instrumentation).
    last_pr: f64,
    rarest_picks: u64,
    sequential_picks: u64,
}

impl MobilityAwarePicker {
    /// Creates an MF picker with the given schedule.
    pub fn new(schedule: PrSchedule) -> Self {
        MobilityAwarePicker {
            schedule,
            rarest: RarestFirst,
            sequential: Sequential,
            last_pr: 0.0,
            rarest_picks: 0,
            sequential_picks: 0,
        }
    }

    /// The schedule in use.
    pub fn schedule(&self) -> PrSchedule {
        self.schedule
    }

    /// The `p_r` used by the most recent pick.
    pub fn last_pr(&self) -> f64 {
        self.last_pr
    }

    /// `(rarest, sequential)` decision counts.
    pub fn decision_counts(&self) -> (u64, u64) {
        (self.rarest_picks, self.sequential_picks)
    }
}

impl PiecePicker for MobilityAwarePicker {
    fn pick(&mut self, candidates: &[u32], ctx: &PickContext<'_>, rng: &mut SimRng) -> Option<u32> {
        self.last_pr = self.schedule.p_rarest(ctx);
        if rng.chance(self.last_pr) {
            self.rarest_picks += 1;
            self.rarest.pick(candidates, ctx, rng)
        } else {
            self.sequential_picks += 1;
            self.sequential.pick(candidates, ctx, rng)
        }
    }

    fn name(&self) -> &'static str {
        "mobility-aware"
    }
}

/// Role-reversal state: a continuously refreshed list of corresponding
/// peers, handed to the re-initiated task after a hand-off so it can dial
/// out immediately.
#[derive(Debug, Clone, Default)]
pub struct RoleReversal {
    stored: Vec<SimAddr>,
}

impl RoleReversal {
    /// Creates empty RR state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Refreshes the stored peer list (call periodically; the paper's
    /// client stores "all the corresponding peers with which P2P TCP
    /// connections have been established").
    pub fn note_peers(&mut self, addrs: &[SimAddr]) {
        if !addrs.is_empty() {
            self.stored = addrs.to_vec();
            self.stored.sort_unstable();
            self.stored.dedup();
        }
    }

    /// The peers to re-dial after a hand-off.
    pub fn stored_peers(&self) -> &[SimAddr] {
        &self.stored
    }

    /// Clears the state (torrent finished/removed).
    pub fn clear(&mut self) {
        self.stored.clear();
    }
}

use simnet::snapshot::{Snap, SnapReader, SnapWriter};

impl Snap for PrSchedule {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            PrSchedule::DownloadedFraction => w.put_u8(0),
            PrSchedule::ExponentialInProgress { p0 } => {
                w.put_u8(1);
                w.put_f64(p0);
            }
            PrSchedule::Stability { p0, tau } => {
                w.put_u8(2);
                w.put_f64(p0);
                tau.snap(w);
            }
            PrSchedule::Fixed(p) => {
                w.put_u8(3);
                w.put_f64(p);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        match r.get_u8() {
            0 => PrSchedule::DownloadedFraction,
            1 => PrSchedule::ExponentialInProgress { p0: r.get_f64() },
            2 => PrSchedule::Stability {
                p0: r.get_f64(),
                tau: Snap::unsnap(r),
            },
            3 => PrSchedule::Fixed(r.get_f64()),
            t => panic!("snapshot: bad PrSchedule tag {t}"),
        }
    }
}

impl Snap for MobilityAwarePicker {
    fn snap(&self, w: &mut SnapWriter) {
        self.schedule.snap(w);
        w.put_f64(self.last_pr);
        w.put_u64(self.rarest_picks);
        w.put_u64(self.sequential_picks);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        MobilityAwarePicker {
            schedule: Snap::unsnap(r),
            rarest: RarestFirst,
            sequential: Sequential,
            last_pr: r.get_f64(),
            rarest_picks: r.get_u64(),
            sequential_picks: r.get_u64(),
        }
    }
}

impl Snap for RoleReversal {
    fn snap(&self, w: &mut SnapWriter) {
        self.stored.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        RoleReversal {
            stored: Snap::unsnap(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimDuration;

    fn ctx<'a>(avail: &'a [u32], frac: f64, stable: SimDuration) -> PickContext<'a> {
        PickContext {
            availability: avail,
            downloaded_fraction: frac,
            stable_for: stable,
        }
    }

    #[test]
    fn downloaded_fraction_schedule_is_identity() {
        let s = PrSchedule::DownloadedFraction;
        let avail = [1u32; 4];
        assert_eq!(s.p_rarest(&ctx(&avail, 0.0, SimDuration::ZERO)), 0.0);
        assert_eq!(s.p_rarest(&ctx(&avail, 0.37, SimDuration::ZERO)), 0.37);
        assert_eq!(s.p_rarest(&ctx(&avail, 1.0, SimDuration::ZERO)), 1.0);
    }

    #[test]
    fn exponential_schedule_starts_low_and_reaches_one() {
        let s = PrSchedule::ExponentialInProgress { p0: 0.2 };
        let avail = [1u32; 4];
        let p_start = s.p_rarest(&ctx(&avail, 0.0, SimDuration::ZERO));
        let p_mid = s.p_rarest(&ctx(&avail, 0.5, SimDuration::ZERO));
        let p_end = s.p_rarest(&ctx(&avail, 1.0, SimDuration::ZERO));
        assert!((p_start - 0.2).abs() < 1e-9);
        assert!((p_mid - 0.2f64.sqrt()).abs() < 1e-9);
        assert!((p_end - 1.0).abs() < 1e-9);
        assert!(p_start < p_mid && p_mid < p_end, "monotone increasing");
    }

    #[test]
    fn stability_schedule_grows_with_uptime() {
        let s = PrSchedule::Stability {
            p0: 0.2,
            tau: SimDuration::from_mins(10),
        };
        let avail = [1u32; 4];
        let p0 = s.p_rarest(&ctx(&avail, 0.0, SimDuration::ZERO));
        let p1 = s.p_rarest(&ctx(&avail, 0.0, SimDuration::from_mins(10)));
        let p2 = s.p_rarest(&ctx(&avail, 0.0, SimDuration::from_mins(60)));
        assert!((p0 - 0.2).abs() < 1e-9);
        assert!(p1 > 0.6 && p1 < 0.8, "one tau ≈ 0.71, got {p1}");
        assert!(p2 > 0.99);
    }

    #[test]
    fn mf_picks_sequentially_when_fresh() {
        let mut picker = MobilityAwarePicker::new(PrSchedule::DownloadedFraction);
        let avail = vec![5u32, 5, 5, 1]; // piece 3 rarest
        let mut rng = SimRng::new(1);
        // 0% downloaded -> pure sequential.
        for _ in 0..20 {
            let p = picker
                .pick(
                    &[0, 1, 2, 3],
                    &ctx(&avail, 0.0, SimDuration::ZERO),
                    &mut rng,
                )
                .unwrap();
            assert_eq!(p, 0);
        }
        let (r, s) = picker.decision_counts();
        assert_eq!((r, s), (0, 20));
    }

    #[test]
    fn mf_converges_to_rarest_when_nearly_done() {
        let mut picker = MobilityAwarePicker::new(PrSchedule::DownloadedFraction);
        let avail = vec![5u32, 5, 5, 1];
        let mut rng = SimRng::new(2);
        let mut rare = 0;
        for _ in 0..1000 {
            let p = picker
                .pick(
                    &[0, 1, 2, 3],
                    &ctx(&avail, 0.95, SimDuration::ZERO),
                    &mut rng,
                )
                .unwrap();
            if p == 3 {
                rare += 1;
            }
        }
        assert!(
            rare > 900,
            "95% downloaded -> ~95% rarest picks, got {rare}"
        );
        assert!((picker.last_pr() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn mf_blends_at_intermediate_progress() {
        let mut picker = MobilityAwarePicker::new(PrSchedule::DownloadedFraction);
        let avail = vec![5u32, 5, 5, 1];
        let mut rng = SimRng::new(3);
        let mut seq = 0;
        let mut rare = 0;
        for _ in 0..2000 {
            match picker
                .pick(
                    &[0, 1, 2, 3],
                    &ctx(&avail, 0.4, SimDuration::ZERO),
                    &mut rng,
                )
                .unwrap()
            {
                0 => seq += 1,
                3 => rare += 1,
                other => panic!("unexpected pick {other}"),
            }
        }
        let frac = rare as f64 / 2000.0;
        assert!((0.35..0.45).contains(&frac), "p_r≈0.4, got {frac}");
        assert!(seq > 0);
    }

    #[test]
    fn role_reversal_stores_and_dedups() {
        let mut rr = RoleReversal::new();
        rr.note_peers(&[SimAddr(3), SimAddr(1), SimAddr(3)]);
        assert_eq!(rr.stored_peers(), &[SimAddr(1), SimAddr(3)]);
        // An empty refresh (momentarily zero peers) keeps the last list —
        // that is the whole point during a disconnection.
        rr.note_peers(&[]);
        assert_eq!(rr.stored_peers().len(), 2);
        rr.note_peers(&[SimAddr(9)]);
        assert_eq!(rr.stored_peers(), &[SimAddr(9)]);
        rr.clear();
        assert!(rr.stored_peers().is_empty());
    }
}
