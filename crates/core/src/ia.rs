//! Incentive-Aware operations (IA) — paper §4.2, pseudo-code Fig. 6.
//!
//! Two techniques:
//!
//! * **LIHD** (Linear Increase, History-based Decrease) upload-rate
//!   control. On a shared wireless channel uploads steal capacity from
//!   downloads, but tit-for-tat punishes uploading nothing; LIHD walks the
//!   upload cap towards the peak of the paper's Fig. 3(b): increase the
//!   cap by α while higher uploads correlate with higher downloads,
//!   decrease by `β · consecutive_decrements` when they do not.
//! * **Identity retention**: store the peer-id per swarm and reuse it when
//!   a hand-off forces task re-initiation, so accumulated tit-for-tat
//!   credit at corresponding peers survives the address change.

use bittorrent::metainfo::InfoHash;
use bittorrent::peer_id::PeerId;
use metrics::handle::MetricsHandle;
use metrics::recorder::Series;
use metrics::registry::Counter;
use simnet::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// LIHD tunables (paper defaults: α = β = 10 KB/s, U₀ = U_max/2).
#[derive(Clone, Copy, Debug)]
pub struct LihdConfig {
    /// Maximum upload limit in bytes/second (e.g. the physical capacity).
    pub u_max: f64,
    /// Linear increment in bytes/second.
    pub alpha: f64,
    /// Decrement unit in bytes/second (scaled by the consecutive-decrement
    /// count).
    pub beta: f64,
    /// Lower bound on the upload limit (zero stalls tit-for-tat entirely).
    pub u_min: f64,
    /// Control window: how often the decision runs.
    pub window: SimDuration,
}

impl LihdConfig {
    /// The paper's evaluation setting for a channel of `u_max` bytes/s:
    /// α = β = 10 KB/s.
    pub fn paper(u_max: f64) -> Self {
        LihdConfig {
            u_max,
            alpha: 10.0 * 1024.0,
            beta: 10.0 * 1024.0,
            u_min: 1024.0,
            window: SimDuration::from_secs(10),
        }
    }
}

/// The LIHD controller (Fig. 6).
///
/// ```
/// use wp2p::ia::{Lihd, LihdConfig};
/// use simnet::time::SimTime;
///
/// // A 200 KB/s wireless channel, the paper's controller parameters.
/// let mut lihd = Lihd::new(LihdConfig::paper(200.0 * 1024.0));
/// assert_eq!(lihd.upload_limit(), 100.0 * 1024.0); // starts at U_max/2
///
/// // Feed it window-averaged download rates; it returns the new cap.
/// lihd.update(SimTime::from_secs(0), 50_000.0);
/// let cap = lihd.update(SimTime::from_secs(10), 60_000.0); // improving
/// assert!(cap > 100.0 * 1024.0, "linear increase on improvement");
/// ```
#[derive(Debug, Clone)]
pub struct Lihd {
    config: LihdConfig,
    u_cur: f64,
    d_prev: f64,
    udec_cnt: u32,
    last_update: Option<SimTime>,
    updates: u64,
    m_steps: Counter,
    m_limit: Series,
}

impl Lihd {
    /// Creates a controller; the initial limit is `U_max / 2` (Fig. 6
    /// line 1).
    ///
    /// # Panics
    ///
    /// Panics on non-positive `u_max` or a zero window.
    pub fn new(config: LihdConfig) -> Self {
        assert!(config.u_max > 0.0, "u_max must be positive");
        assert!(!config.window.is_zero(), "window must be positive");
        Lihd {
            u_cur: 0.5 * config.u_max,
            config,
            d_prev: 0.0,
            udec_cnt: 0,
            last_update: None,
            updates: 0,
            m_steps: Counter::default(),
            m_limit: Series::default(),
        }
    }

    /// Wires the controller's observables into `handle`: a
    /// `lihd.<label>.steps` counter and a `lihd.<label>.upload_limit`
    /// series recording the cap after every control decision. Inert
    /// when the handle is disabled.
    pub fn attach_metrics(&mut self, handle: &MetricsHandle, label: &str) {
        self.m_steps = handle.counter(&format!("lihd.{label}.steps"));
        self.m_limit = handle.series(&format!("lihd.{label}.upload_limit"));
    }

    /// The current upload limit in bytes/second.
    pub fn upload_limit(&self) -> f64 {
        self.u_cur
    }

    /// Decisions taken so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// True when a control decision is due at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        match self.last_update {
            None => true,
            Some(t) => now.saturating_since(t) >= self.config.window,
        }
    }

    /// Runs one control step with the window-averaged download rate
    /// `d_cur` (bytes/second); returns the new upload limit.
    ///
    /// Implements Fig. 6 lines 3–8: while downloads keep improving the
    /// upload cap rises linearly (and the decrement streak resets); when a
    /// window fails to improve, the cap drops by `β · streak`, cutting
    /// with increasing aggression.
    pub fn update(&mut self, now: SimTime, d_cur: f64) -> f64 {
        self.last_update = Some(now);
        self.updates += 1;
        if self.d_prev != 0.0 {
            if self.d_prev < d_cur {
                self.u_cur += self.config.alpha;
                self.udec_cnt = 0;
            } else {
                self.udec_cnt += 1;
                self.u_cur -= self.config.beta * self.udec_cnt as f64;
            }
        }
        self.u_cur = self.u_cur.clamp(self.config.u_min, self.config.u_max);
        self.d_prev = d_cur;
        self.m_steps.inc();
        self.m_limit.record(now, self.u_cur);
        self.u_cur
    }
}

/// Identity retention: remembers the peer-id used in each swarm so task
/// re-initiation after a hand-off can present the same identity (paper
/// §4.2: "identity retention within a swarm").
#[derive(Debug, Clone, Default)]
pub struct IdentityStore {
    ids: HashMap<InfoHash, PeerId>,
}

impl IdentityStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the stored peer-id for `swarm`, or stores and returns
    /// `fresh` when this is the first task for that swarm.
    pub fn peer_id_for(&mut self, swarm: InfoHash, fresh: PeerId) -> PeerId {
        *self.ids.entry(swarm).or_insert(fresh)
    }

    /// The stored id for a swarm, if any.
    pub fn stored(&self, swarm: InfoHash) -> Option<PeerId> {
        self.ids.get(&swarm).copied()
    }

    /// Forgets a swarm (torrent removed).
    pub fn forget(&mut self, swarm: InfoHash) {
        self.ids.remove(&swarm);
    }

    /// Number of swarms tracked.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no identities are stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

use simnet::snapshot::{snap_hash_map, unsnap_hash_map, Snap, SnapReader, SnapWriter};

impl Snap for LihdConfig {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(self.u_max);
        w.put_f64(self.alpha);
        w.put_f64(self.beta);
        w.put_f64(self.u_min);
        self.window.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        LihdConfig {
            u_max: r.get_f64(),
            alpha: r.get_f64(),
            beta: r.get_f64(),
            u_min: r.get_f64(),
            window: Snap::unsnap(r),
        }
    }
}

impl Snap for Lihd {
    fn snap(&self, w: &mut SnapWriter) {
        self.config.snap(w);
        w.put_f64(self.u_cur);
        w.put_f64(self.d_prev);
        w.put_u32(self.udec_cnt);
        self.last_update.snap(w);
        w.put_u64(self.updates);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        // Instruments are re-wired by the embedder via `attach_metrics`.
        Lihd {
            config: Snap::unsnap(r),
            u_cur: r.get_f64(),
            d_prev: r.get_f64(),
            udec_cnt: r.get_u32(),
            last_update: Snap::unsnap(r),
            updates: r.get_u64(),
            m_steps: Counter::default(),
            m_limit: Series::default(),
        }
    }
}

impl Snap for IdentityStore {
    fn snap(&self, w: &mut SnapWriter) {
        snap_hash_map(&self.ids, w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        IdentityStore {
            ids: unsnap_hash_map(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(u_max: f64) -> (Lihd, LihdConfig) {
        let cfg = LihdConfig {
            u_max,
            alpha: 10.0,
            beta: 10.0,
            u_min: 1.0,
            window: SimDuration::from_secs(10),
        };
        (Lihd::new(cfg), cfg)
    }

    #[test]
    fn starts_at_half_max() {
        let (l, _) = controller(1000.0);
        assert_eq!(l.upload_limit(), 500.0);
    }

    #[test]
    fn first_update_only_records_history() {
        let (mut l, _) = controller(1000.0);
        // d_prev == 0: no adjustment (Fig. 6 line 4 guard).
        let u = l.update(SimTime::ZERO, 100.0);
        assert_eq!(u, 500.0);
    }

    #[test]
    fn improving_downloads_increase_linearly() {
        let (mut l, _) = controller(1000.0);
        l.update(SimTime::ZERO, 100.0);
        let u1 = l.update(SimTime::from_secs(10), 150.0);
        assert_eq!(u1, 510.0);
        let u2 = l.update(SimTime::from_secs(20), 200.0);
        assert_eq!(u2, 520.0);
    }

    #[test]
    fn stagnant_downloads_decrease_aggressively() {
        let (mut l, _) = controller(1000.0);
        l.update(SimTime::ZERO, 100.0);
        let u1 = l.update(SimTime::from_secs(10), 100.0); // streak 1: -10
        assert_eq!(u1, 490.0);
        let u2 = l.update(SimTime::from_secs(20), 90.0); // streak 2: -20
        assert_eq!(u2, 470.0);
        let u3 = l.update(SimTime::from_secs(30), 80.0); // streak 3: -30
        assert_eq!(u3, 440.0);
    }

    #[test]
    fn improvement_resets_the_streak() {
        let (mut l, _) = controller(1000.0);
        l.update(SimTime::ZERO, 100.0);
        l.update(SimTime::from_secs(10), 90.0); // -10
        l.update(SimTime::from_secs(20), 80.0); // -20
        l.update(SimTime::from_secs(30), 200.0); // +10, streak reset
        let u = l.update(SimTime::from_secs(40), 150.0); // streak 1 again: -10
        assert_eq!(u, 470.0);
    }

    #[test]
    fn clamped_to_bounds() {
        let (mut l, cfg) = controller(520.0);
        l.update(SimTime::ZERO, 100.0);
        // Keep improving: +10 each, capped at u_max.
        for i in 1..=40u64 {
            l.update(SimTime::from_secs(10 * i), 100.0 + i as f64);
        }
        assert_eq!(l.upload_limit(), cfg.u_max);
        // Keep stalling: decrements accelerate, floored at u_min.
        for i in 41..=60u64 {
            l.update(SimTime::from_secs(10 * i), 50.0);
        }
        assert_eq!(l.upload_limit(), cfg.u_min);
    }

    #[test]
    fn beats_uncapped_default_on_a_contended_channel() {
        // Synthetic shared channel (the shape of the paper's Fig. 3(b)):
        // downloads rise gently with uploads up to a peak at 30% of
        // capacity, then collapse from self-contention.
        let capacity = 1000.0;
        let response = |u: f64| {
            let peak = 0.3 * capacity;
            if u <= peak {
                500.0 + u
            } else {
                (800.0 - 2.0 * (u - peak)).max(10.0)
            }
        };
        let cfg = LihdConfig {
            u_max: capacity,
            alpha: 20.0,
            beta: 20.0,
            u_min: 10.0,
            window: SimDuration::from_secs(10),
        };
        let mut l = Lihd::new(cfg);
        let mut t = SimTime::ZERO;
        let mut u = l.upload_limit();
        let mut lihd_download = 0.0;
        let mut max_u = f64::MIN;
        let mut min_u = f64::MAX;
        for _ in 0..200 {
            let d = response(u);
            lihd_download += d;
            u = l.update(t, d);
            max_u = max_u.max(u);
            min_u = min_u.min(u);
            t += SimDuration::from_secs(10);
        }
        let lihd_avg = lihd_download / 200.0;
        let default_avg = response(capacity); // uncapped client pegs the channel
        assert!(
            lihd_avg > 2.0 * default_avg,
            "LIHD avg download {lihd_avg} should beat default {default_avg}"
        );
        // The controller stays in a bounded band (no runaway in either
        // direction) — the stability property the paper relies on.
        assert!(max_u <= 0.5 * capacity + 2.0 * cfg.alpha, "max_u={max_u}");
        assert!(min_u >= cfg.u_min, "min_u={min_u}");
    }

    #[test]
    fn due_respects_window() {
        let (mut l, _) = controller(100.0);
        assert!(l.due(SimTime::ZERO));
        l.update(SimTime::ZERO, 10.0);
        assert!(!l.due(SimTime::from_secs(5)));
        assert!(l.due(SimTime::from_secs(10)));
    }

    #[test]
    fn identity_store_retains_per_swarm() {
        let mut store = IdentityStore::new();
        let swarm_a = InfoHash([1; 20]);
        let swarm_b = InfoHash([2; 20]);
        let id1 = PeerId([1; 20]);
        let id2 = PeerId([2; 20]);
        let id3 = PeerId([3; 20]);
        assert_eq!(store.peer_id_for(swarm_a, id1), id1);
        // Re-initiation with a fresh id: the stored one wins.
        assert_eq!(store.peer_id_for(swarm_a, id2), id1);
        // Different swarm: fresh id is stored (credit stays confined).
        assert_eq!(store.peer_id_for(swarm_b, id3), id3);
        assert_eq!(store.len(), 2);
        store.forget(swarm_a);
        assert_eq!(store.stored(swarm_a), None);
    }
}
