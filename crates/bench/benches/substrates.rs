//! Micro-benchmarks for the hot substrate paths: these are the inner
//! loops of every experiment, so their cost bounds the scale the
//! simulation worlds can reach.
//!
//! Uses a small self-contained timing harness (`harness = false`) so the
//! workspace builds with no external dev-dependencies. Each benchmark is
//! auto-calibrated to a ~200 ms measurement window and reports ns/iter
//! over the best of three rounds. Run with
//! `cargo bench --bench substrates [filter]`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use bittorrent::bencode::Value;
use bittorrent::choker::{Choker, ChokerConfig, PeerSnapshot};
use bittorrent::metainfo::Metainfo;
use bittorrent::picker::{PickContext, PiecePicker, RarestFirst};
use bittorrent::sha1::Sha1;
use p2p_simulation::flow::{Access, FlowConfig, FlowWorld, TaskSpec, TorrentSpec};
use p2p_simulation::rates::{max_min_rates, FlowDemand};
use sim_tcp::reasm::Reassembly;
use sim_tcp::seq::SeqNum;
use simnet::event::EventQueue;
use simnet::link::{Link, LinkConfig};
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

/// Runs `f` long enough for a stable estimate and reports the best
/// per-iteration time of three measurement rounds.
fn bench<R>(filter: Option<&str>, name: &str, mut f: impl FnMut() -> R) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    // Calibrate: find an iteration count filling ~200 ms.
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let el = t0.elapsed();
        if el >= Duration::from_millis(50) || iters >= 1 << 30 {
            let per = el.as_nanos().max(1) / iters as u128;
            iters = ((200_000_000 / per).max(1)) as u64;
            break;
        }
        iters *= 4;
    }
    let mut best = u128::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t0.elapsed().as_nanos() / iters as u128);
    }
    let human = if best >= 1_000_000 {
        format!("{:.3} ms", best as f64 / 1e6)
    } else if best >= 1_000 {
        format!("{:.3} µs", best as f64 / 1e3)
    } else {
        format!("{best} ns")
    };
    println!("{name:<44} {human:>12}/iter   ({iters} iters)");
}

fn bench_bencode(filter: Option<&str>) {
    let meta = Metainfo::synthetic("bench.iso", "tr", 256 * 1024, 688 * 1024 * 1024, 1);
    let bytes = meta.to_bytes();
    bench(filter, "bencode/encode_torrent", || meta.to_bytes());
    bench(filter, "bencode/decode_torrent", || {
        Value::decode(&bytes).unwrap()
    });
}

fn bench_sha1(filter: Option<&str>) {
    let data = vec![0xA5u8; 256 * 1024];
    bench(filter, "sha1/piece_256k", || Sha1::digest(&data));
}

fn bench_event_queue(filter: Option<&str>) {
    bench(filter, "event_queue/schedule_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule_at(SimTime::from_micros((i * 7919) % 10_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum += e;
        }
        sum
    });
    // The flow-world shape at scale: a deep queue (tens of thousands of
    // pending ticks/dials spread over minutes of virtual time), popped in
    // order with each pop rescheduling a tick a few hundred ms ahead.
    for (name, sched) in [
        ("heap", simnet::event::Scheduler::Heap),
        ("wheel", simnet::event::Scheduler::Wheel),
    ] {
        bench(filter, &format!("event_queue/deep_churn_64k_{name}"), || {
            let mut q = EventQueue::with_scheduler(sched);
            let mut t: u64 = 0x9E3779B97F4A7C15;
            for i in 0..65_536u64 {
                t = t
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q.schedule_at(SimTime::from_micros(t % 120_000_000), i);
            }
            let mut sum = 0u64;
            for _ in 0..65_536u64 {
                let (at, e) = q.pop().expect("queue pre-filled");
                sum = sum.wrapping_add(e);
                q.schedule_at(at + SimDuration::from_millis(200), e);
            }
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        });
    }
}

fn bench_reassembly(filter: Option<&str>) {
    let mut rng = SimRng::new(3);
    let mut order: Vec<u32> = (0..1000).collect();
    rng.shuffle(&mut order);
    bench(filter, "tcp_reassembly/1k_segments_shuffled", || {
        let mut r = Reassembly::new(SeqNum(0));
        for &i in &order {
            r.on_data(SeqNum(i * 1460), 1460);
        }
        r.delivered_total()
    });
}

fn bench_picker(filter: Option<&str>) {
    // The Fedora-image scale the paper uses: 2752 pieces.
    let avail: Vec<u32> = (0..2752).map(|i| (i % 37) + 1).collect();
    let candidates: Vec<u32> = (0..2752).collect();
    let ctx = PickContext {
        availability: &avail,
        downloaded_fraction: 0.5,
        stable_for: SimDuration::from_secs(60),
    };
    let mut rng = SimRng::new(1);
    let mut p = RarestFirst;
    bench(filter, "picker/rarest_first_2752_pieces", || {
        p.pick(&candidates, &ctx, &mut rng)
    });
}

fn bench_choker(filter: Option<&str>) {
    let peers: Vec<PeerSnapshot> = (0..50)
        .map(|k| PeerSnapshot {
            key: k,
            interested: k % 3 != 0,
            credit: (k * 977 % 101) as f64,
        })
        .collect();
    let mut ch = Choker::new(ChokerConfig::default());
    let mut rng = SimRng::new(2);
    let mut t = SimTime::ZERO;
    bench(filter, "choker/rechoke_50_peers", || {
        t += SimDuration::from_secs(10);
        ch.rechoke(t, &peers, &mut rng)
    });
}

fn bench_rates(filter: Option<&str>) {
    // A swarm-scale allocation: 500 flows over 200 nodes' resources.
    let flows: Vec<FlowDemand> = (0..500)
        .map(|i| FlowDemand::new((i * 13) % 400, (i * 29 + 1) % 400))
        .collect();
    let caps: Vec<f64> = (0..400)
        .map(|i| 50_000.0 + (i % 7) as f64 * 30_000.0)
        .collect();
    bench(filter, "rates/max_min_500_flows", || {
        max_min_rates(&flows, &caps)
    });

    // Worst case for the freeze loop: every flow shares one resource, so
    // the allocation has a single round freezing all flows at once, but
    // each flow also owns a private second resource — the pre-overhaul
    // solver rescanned all N flows per round.
    let n = 2000usize;
    let shared = 0usize;
    let worst_flows: Vec<FlowDemand> = (0..n).map(|i| FlowDemand::new(shared, i + 1)).collect();
    let mut worst_caps = vec![1e9; n + 1];
    worst_caps[shared] = 1_000_000.0;
    bench(filter, "rates/max_min_2000_flows_one_bottleneck", || {
        max_min_rates(&worst_flows, &worst_caps)
    });
}

fn bench_link(filter: Option<&str>) {
    let mut rng = SimRng::new(4);
    bench(filter, "link/send_1k_packets", || {
        let mut link = Link::new(LinkConfig {
            bandwidth_bps: 10_000_000,
            prop_delay: SimDuration::from_millis(10),
            queue_packets: 64,
            ber: 1e-6,
        });
        let mut t = SimTime::ZERO;
        let mut delivered = 0u32;
        for _ in 0..1000 {
            if link.send(t, 1500, &mut rng).delivered_at().is_some() {
                delivered += 1;
            }
            t += SimDuration::from_micros(1200);
        }
        delivered
    });
}

/// Builds a small saturated swarm: every leecher has demand against the
/// one seed, so flow rates are contended on every tick.
fn saturated_swarm(meta: &Metainfo) -> (FlowWorld, usize) {
    let torrent = TorrentSpec::from_metainfo(meta, 64 * 1024);
    let mut w = FlowWorld::new(FlowConfig::default(), 1);
    let sn = w.add_node(Access::campus());
    w.add_task(TaskSpec::default_client(sn, torrent, true));
    let mut last = 0;
    for _ in 0..9 {
        let n = w.add_node(Access::residential());
        last = w.add_task(TaskSpec::default_client(n, torrent, false));
    }
    w.start();
    (w, last)
}

fn bench_flow_world(filter: Option<&str>) {
    let meta = Metainfo::synthetic("bench.bin", "tr", 256 * 1024, 16 * 1024 * 1024, 1);
    bench(filter, "flow_world/10_peer_swarm_60s", || {
        let (mut w, last) = saturated_swarm(&meta);
        w.run_until(SimTime::from_secs(60), |_| {});
        w.downloaded_bytes(last)
    });

    // End-to-end tick cost: advance a warmed-up saturated swarm by one
    // simulated second (4 ticks at the 250 ms cadence) per iteration.
    // Pins the Layer-2 win: clean ticks must skip the max-min solve.
    let big = Metainfo::synthetic("bench.bin", "tr", 256 * 1024, 2 * 1024 * 1024 * 1024, 1);
    let (mut w, _) = saturated_swarm(&big);
    w.run_until(SimTime::from_secs(30), |_| {});
    let mut deadline = SimTime::from_secs(30);
    bench(filter, "flow_world/tick_1s_saturated", || {
        deadline += SimDuration::from_secs(1);
        w.run_until(deadline, |_| {});
        w.rate_solves()
    });
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Cargo passes --bench (and sometimes harness flags); the first
    // non-flag argument is a substring filter on benchmark names.
    let filter = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .map(|s| s.as_str());
    println!("substrate benchmarks (best of 3 rounds):");
    bench_bencode(filter);
    bench_sha1(filter);
    bench_event_queue(filter);
    bench_reassembly(filter);
    bench_picker(filter);
    bench_choker(filter);
    bench_rates(filter);
    bench_link(filter);
    bench_flow_world(filter);
}
