//! Criterion micro-benchmarks for the hot substrate paths: these are the
//! inner loops of every experiment, so their cost bounds the scale the
//! simulation worlds can reach.

use bittorrent::bencode::Value;
use bittorrent::choker::{Choker, ChokerConfig, PeerSnapshot};
use bittorrent::metainfo::Metainfo;
use bittorrent::picker::{PickContext, PiecePicker, RarestFirst};
use bittorrent::sha1::Sha1;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use p2p_simulation::rates::{max_min_rates, FlowDemand};
use sim_tcp::reasm::Reassembly;
use sim_tcp::seq::SeqNum;
use simnet::event::EventQueue;
use simnet::link::{Link, LinkConfig};
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

fn bench_bencode(c: &mut Criterion) {
    let meta = Metainfo::synthetic("bench.iso", "tr", 256 * 1024, 688 * 1024 * 1024, 1);
    let bytes = meta.to_bytes();
    let mut g = c.benchmark_group("bencode");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_torrent", |b| {
        b.iter(|| black_box(meta.to_bytes()))
    });
    g.bench_function("decode_torrent", |b| {
        b.iter(|| black_box(Value::decode(&bytes).unwrap()))
    });
    g.finish();
}

fn bench_sha1(c: &mut Criterion) {
    let data = vec![0xA5u8; 256 * 1024];
    let mut g = c.benchmark_group("sha1");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("piece_256k", |b| b.iter(|| black_box(Sha1::digest(&data))));
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule_at(SimTime::from_micros((i * 7919) % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });
}

fn bench_reassembly(c: &mut Criterion) {
    c.bench_function("tcp_reassembly/1k_segments_shuffled", |b| {
        let mut rng = SimRng::new(3);
        let mut order: Vec<u32> = (0..1000).collect();
        rng.shuffle(&mut order);
        b.iter(|| {
            let mut r = Reassembly::new(SeqNum(0));
            for &i in &order {
                r.on_data(SeqNum(i * 1460), 1460);
            }
            black_box(r.delivered_total())
        })
    });
}

fn bench_picker(c: &mut Criterion) {
    // The Fedora-image scale the paper uses: 2752 pieces.
    let avail: Vec<u32> = (0..2752).map(|i| (i % 37) + 1).collect();
    let candidates: Vec<u32> = (0..2752).collect();
    let ctx = PickContext {
        availability: &avail,
        downloaded_fraction: 0.5,
        stable_for: SimDuration::from_secs(60),
    };
    c.bench_function("picker/rarest_first_2752_pieces", |b| {
        let mut rng = SimRng::new(1);
        let mut p = RarestFirst;
        b.iter(|| black_box(p.pick(&candidates, &ctx, &mut rng)))
    });
}

fn bench_choker(c: &mut Criterion) {
    let peers: Vec<PeerSnapshot> = (0..50)
        .map(|k| PeerSnapshot {
            key: k,
            interested: k % 3 != 0,
            credit: (k * 977 % 101) as f64,
        })
        .collect();
    c.bench_function("choker/rechoke_50_peers", |b| {
        let mut ch = Choker::new(ChokerConfig::default());
        let mut rng = SimRng::new(2);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_secs(10);
            black_box(ch.rechoke(t, &peers, &mut rng))
        })
    });
}

fn bench_rates(c: &mut Criterion) {
    // A swarm-scale allocation: 500 flows over 200 nodes' resources.
    let flows: Vec<FlowDemand> = (0..500)
        .map(|i| FlowDemand::new((i * 13) % 400, (i * 29 + 1) % 400))
        .collect();
    let caps: Vec<f64> = (0..400).map(|i| 50_000.0 + (i % 7) as f64 * 30_000.0).collect();
    c.bench_function("rates/max_min_500_flows", |b| {
        b.iter(|| black_box(max_min_rates(&flows, &caps)))
    });
}

fn bench_link(c: &mut Criterion) {
    c.bench_function("link/send_1k_packets", |b| {
        let mut rng = SimRng::new(4);
        b.iter(|| {
            let mut link = Link::new(LinkConfig {
                bandwidth_bps: 10_000_000,
                prop_delay: SimDuration::from_millis(10),
                queue_packets: 64,
                ber: 1e-6,
            });
            let mut t = SimTime::ZERO;
            let mut delivered = 0u32;
            for _ in 0..1000 {
                if link.send(t, 1500, &mut rng).delivered_at().is_some() {
                    delivered += 1;
                }
                t += SimDuration::from_micros(1200);
            }
            black_box(delivered)
        })
    });
}

fn bench_flow_world(c: &mut Criterion) {
    use bittorrent::metainfo::Metainfo;
    use p2p_simulation::flow::{Access, FlowConfig, FlowWorld, TaskSpec, TorrentSpec};

    c.bench_function("flow_world/10_peer_swarm_60s", |b| {
        b.iter(|| {
            let meta = Metainfo::synthetic("bench.bin", "tr", 256 * 1024, 16 * 1024 * 1024, 1);
            let torrent = TorrentSpec::from_metainfo(&meta, 64 * 1024);
            let mut w = FlowWorld::new(FlowConfig::default(), 1);
            let sn = w.add_node(Access::campus());
            w.add_task(TaskSpec::default_client(sn, torrent, true));
            let mut last = 0;
            for _ in 0..9 {
                let n = w.add_node(Access::residential());
                last = w.add_task(TaskSpec::default_client(n, torrent, false));
            }
            w.start();
            w.run_until(SimTime::from_secs(60), |_| {});
            black_box(w.downloaded_bytes(last))
        })
    });
}

criterion_group!(
    benches,
    bench_bencode,
    bench_sha1,
    bench_event_queue,
    bench_reassembly,
    bench_picker,
    bench_choker,
    bench_rates,
    bench_link,
    bench_flow_world,
);
criterion_main!(benches);
