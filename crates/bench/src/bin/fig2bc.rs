//! Regenerates paper Figure 2(b, c): packets sent from the client on the
//! wireless leg over time, with buffer-drop events, for uni- and
//! bi-directional TCP.

use p2p_simulation::experiments::fig2::{
    fig2bc_table, run_fig2bc_pair_with, Fig2bcParams, FIG2BC_SEED,
};
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 2(b,c)", preset);
    let params = match preset {
        Preset::Quick => Fig2bcParams::quick(),
        Preset::Paper => Fig2bcParams::paper(),
    };
    let out = metrics_out_from_args();
    let handle = metrics_handle(out.as_deref(), FIG2BC_SEED);
    let (uni, bi) = run_fig2bc_pair_with(&params, &handle, FIG2BC_SEED);
    fig2bc_table(&uni, &bi).print();
    println!(
        "uni: mean packets/bucket before first drop {:.1}, after {:.1}",
        uni.mean_before_first_drop(),
        uni.mean_after_first_drop()
    );
    println!(
        "bi:  mean packets/bucket before first drop {:.1}, after {:.1}",
        bi.mean_before_first_drop(),
        bi.mean_after_first_drop()
    );
    if let Some(dir) = &out {
        dump_metrics(dir, "fig2bc", &handle);
    }
}
