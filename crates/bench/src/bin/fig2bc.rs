//! Regenerates paper Figure 2(b, c): packets sent from the client on the
//! wireless leg over time, with buffer-drop events, for uni- and
//! bi-directional TCP.

use p2p_simulation::experiments::fig2::{fig2bc_table, run_fig2bc_pair, Fig2bcParams};
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 2(b,c)", preset);
    let params = match preset {
        Preset::Quick => Fig2bcParams::quick(),
        Preset::Paper => Fig2bcParams::paper(),
    };
    let (uni, bi) = run_fig2bc_pair(&params, 0x2BC);
    fig2bc_table(&uni, &bi).print();
    println!(
        "uni: mean packets/bucket before first drop {:.1}, after {:.1}",
        uni.mean_before_first_drop(),
        uni.mean_after_first_drop()
    );
    println!(
        "bi:  mean packets/bucket before first drop {:.1}, after {:.1}",
        bi.mean_before_first_drop(),
        bi.mean_after_first_drop()
    );
}
