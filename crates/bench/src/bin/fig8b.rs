//! Regenerates paper Figure 8(b): downloaded size vs time under 1-minute
//! hand-offs, default vs wP2P (identity retention).

use p2p_simulation::experiments::fig8::{fig8b_table, run_fig8b, Fig8bParams};
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 8(b)", preset);
    let params = match preset {
        Preset::Quick => Fig8bParams::quick(),
        Preset::Paper => Fig8bParams::paper(),
    };
    let result = run_fig8b(&params, 0x8B);
    fig8b_table(&result, 10).print();
}
