//! Regenerates paper Figure 8(b): downloaded size vs time under 1-minute
//! hand-offs, default vs wP2P (identity retention).

use p2p_simulation::experiments::fig8::{fig8b_table, run_fig8b_with, Fig8bParams, FIG8B_SEED};
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 8(b)", preset);
    let params = match preset {
        Preset::Quick => Fig8bParams::quick(),
        Preset::Paper => Fig8bParams::paper(),
    };
    let out = metrics_out_from_args();
    let handle = metrics_handle(out.as_deref(), FIG8B_SEED);
    let result = run_fig8b_with(&params, &handle, FIG8B_SEED);
    fig8b_table(&result, 10).print();
    if let Some(dir) = &out {
        dump_metrics(dir, "fig8b", &handle);
    }
}
