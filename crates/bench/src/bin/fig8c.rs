//! Regenerates paper Figure 8(c): download throughput vs wireless
//! capacity, default vs wP2P (LIHD upload-rate control).

use p2p_simulation::experiments::fig8::{fig8c_table, run_fig8c_with, Fig8cParams, FIG8C_SEED};
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 8(c)", preset);
    let params = match preset {
        Preset::Quick => Fig8cParams::quick(),
        Preset::Paper => Fig8cParams::paper(),
    };
    let out = metrics_out_from_args();
    let handle = metrics_handle(out.as_deref(), FIG8C_SEED);
    let points = run_fig8c_with(&params, &handle, FIG8C_SEED);
    fig8c_table(&points).print();
    if let Some(dir) = &out {
        dump_metrics(dir, "fig8c", &handle);
    }
}
