//! Regenerates paper Figure 8(c): download throughput vs wireless
//! capacity, default vs wP2P (LIHD upload-rate control).

use p2p_simulation::experiments::fig8::{fig8c_table, run_fig8c, Fig8cParams};
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 8(c)", preset);
    let params = match preset {
        Preset::Quick => Fig8cParams::quick(),
        Preset::Paper => Fig8cParams::paper(),
    };
    let points = run_fig8c(&params);
    fig8c_table(&points).print();
}
