//! Regenerates paper Figure 3(a): aggregate download rate vs upload limit
//! on wired asymmetric access (monotone increasing).

use p2p_simulation::experiments::fig3::{fig3ab_table, run_fig3a, Fig3abParams};
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 3(a)", preset);
    let params = match preset {
        Preset::Quick => Fig3abParams::quick(),
        Preset::Paper => Fig3abParams::paper(),
    };
    let points = run_fig3a(&params);
    fig3ab_table(
        "Figure 3(a): Aggregate download (KBps) vs upload limit — wired",
        &points,
        "paper: monotonically increasing (tit-for-tat rewards uploads)",
    )
    .print();
}
