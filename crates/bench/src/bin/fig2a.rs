//! Regenerates paper Figure 2(a): downloading throughput vs BER for
//! bi-directional vs uni-directional TCP over a wireless leg.

use p2p_simulation::experiments::fig2::{fig2a_table, run_fig2a, Fig2aParams};
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 2(a)", preset);
    let params = match preset {
        Preset::Quick => Fig2aParams::quick(),
        Preset::Paper => Fig2aParams::paper(),
    };
    let points = run_fig2a(&params);
    fig2a_table(&points).print();
}
