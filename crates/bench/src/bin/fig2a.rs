//! Regenerates paper Figure 2(a): downloading throughput vs BER for
//! bi-directional vs uni-directional TCP over a wireless leg.

use p2p_simulation::experiments::fig2::{fig2a_table, run_fig2a_with, Fig2aParams, FIG2A_SEED};
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 2(a)", preset);
    let params = match preset {
        Preset::Quick => Fig2aParams::quick(),
        Preset::Paper => Fig2aParams::paper(),
    };
    let out = metrics_out_from_args();
    let handle = metrics_handle(out.as_deref(), FIG2A_SEED);
    let points = run_fig2a_with(&params, &handle, FIG2A_SEED);
    fig2a_table(&points).print();
    if let Some(dir) = &out {
        dump_metrics(dir, "fig2a", &handle);
    }
}
