//! Regenerates paper Figure 9(c): mobile-seed upload throughput vs
//! mobility rate, default vs wP2P (role reversal).

use p2p_simulation::experiments::fig9::{fig9c_table, run_fig9c, Fig9cParams};
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 9(c)", preset);
    let params = match preset {
        Preset::Quick => Fig9cParams::quick(),
        Preset::Paper => Fig9cParams::paper(),
    };
    let points = run_fig9c(&params);
    fig9c_table(&points).print();
}
