//! Regenerates paper Figure 9(c): mobile-seed upload throughput vs
//! mobility rate, default vs wP2P (role reversal).

use p2p_simulation::experiments::fig9::{fig9c_table, run_fig9c_with, Fig9cParams, FIG9C_SEED};
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 9(c)", preset);
    let params = match preset {
        Preset::Quick => Fig9cParams::quick(),
        Preset::Paper => Fig9cParams::paper(),
    };
    let out = metrics_out_from_args();
    let handle = metrics_handle(out.as_deref(), FIG9C_SEED);
    let points = run_fig9c_with(&params, &handle, FIG9C_SEED);
    fig9c_table(&points).print();
    if let Some(dir) = &out {
        dump_metrics(dir, "fig9c", &handle);
    }
}
