//! Runs the ablation studies: mobility-aware fetching schedules, AM
//! component decomposition, LIHD sensitivity, and the paper's §4.2
//! future-work experiment (seed-mode LIHD protecting foreground traffic).

use p2p_simulation::experiments::ablations::{
    ablate_am, ablate_delack, ablate_lihd, ablate_mf_schedules, ablate_seed_lihd, am_table,
    delack_table, lihd_table, mf_table, seed_lihd_table,
};
use p2p_simulation::experiments::fig2::Fig2aParams;
use p2p_simulation::experiments::fig8::Fig8aParams;
use p2p_simulation::experiments::playability::PlayabilityParams;
use simnet::time::SimDuration;
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Ablations", preset);

    let mf_params = match preset {
        Preset::Quick => PlayabilityParams::quick_5mb(),
        Preset::Paper => PlayabilityParams::paper_5mb(),
    };
    mf_table(&ablate_mf_schedules(&mf_params, 0xAB1)).print();
    println!();

    let am_params = match preset {
        Preset::Quick => Fig8aParams::quick(),
        Preset::Paper => Fig8aParams::paper(),
    };
    am_table(&am_params, &ablate_am(&am_params)).print();
    println!();

    let f2 = match preset {
        Preset::Quick => Fig2aParams::quick(),
        Preset::Paper => Fig2aParams::paper(),
    };
    delack_table(&ablate_delack(&f2)).print();
    println!();

    let (dur, seed) = match preset {
        Preset::Quick => (SimDuration::from_mins(5), 0x11D),
        Preset::Paper => (SimDuration::from_mins(12), 0x11D),
    };
    lihd_table(&ablate_lihd(60_000.0, dur, seed)).print();
    println!();

    let dur = match preset {
        Preset::Quick => SimDuration::from_mins(6),
        Preset::Paper => SimDuration::from_mins(15),
    };
    seed_lihd_table(&ablate_seed_lihd(100_000.0, dur, 0x5EED)).print();
}
