//! Runs every figure-regeneration experiment in sequence and prints all
//! tables — a one-command reproduction of the paper's evaluation section.
//!
//! ```sh
//! cargo run --release -p wp2p-bench --bin all_figures            # quick
//! cargo run --release -p wp2p-bench --bin all_figures -- --paper # full
//! ```

use p2p_simulation::experiments::{fig2, fig3, fig4, fig8, fig9, playability};
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("All figures", preset);
    let quick = preset == Preset::Quick;

    let p = if quick {
        fig2::Fig2aParams::quick()
    } else {
        fig2::Fig2aParams::paper()
    };
    fig2::fig2a_table(&fig2::run_fig2a(&p)).print();
    println!();

    let p = fig2::Fig2bcParams::paper();
    let uni = fig2::run_fig2bc(&p, false, 0x2BC);
    let bi = fig2::run_fig2bc(&p, true, 0x2BC);
    fig2::fig2bc_table(&uni, &bi).print();
    println!();

    let p = if quick {
        fig3::Fig3abParams::quick()
    } else {
        fig3::Fig3abParams::paper()
    };
    fig3::fig3ab_table(
        "Figure 3(a): Aggregate download (KBps) vs upload limit — wired",
        &fig3::run_fig3a(&p),
        "paper: monotonically increasing",
    )
    .print();
    println!();
    fig3::fig3ab_table(
        "Figure 3(b): Aggregate download (KBps) vs upload limit — wireless",
        &fig3::run_fig3b(&p),
        "paper: rises, peaks early, falls",
    )
    .print();
    println!();

    let p = if quick {
        fig3::Fig3cParams::quick()
    } else {
        fig3::Fig3cParams::paper()
    };
    fig3::fig3c_table(&fig3::run_fig3c(&p, 0x3C), 10).print();
    println!();

    let p = if quick {
        fig4::Fig4aParams::quick()
    } else {
        fig4::Fig4aParams::paper()
    };
    fig4::fig4a_table(&fig4::run_fig4a(&p)).print();
    println!();

    let (small, large) = if quick {
        (
            playability::PlayabilityParams::quick_5mb(),
            playability::PlayabilityParams::quick_large(),
        )
    } else {
        (
            playability::PlayabilityParams::paper_5mb(),
            playability::PlayabilityParams::paper_large(),
        )
    };
    playability::playability_table(
        "Figure 4(b): Playable % vs downloaded % — 5 MB, rarest-first",
        &playability::run_playability(&small, None, 0x4B),
        None,
    )
    .print();
    println!();
    playability::playability_table(
        "Figure 4(c): Playable % vs downloaded % — large file, rarest-first",
        &playability::run_playability(&large, None, 0x4C),
        None,
    )
    .print();
    println!();

    let p = if quick {
        fig8::Fig8aParams::quick()
    } else {
        fig8::Fig8aParams::paper()
    };
    fig8::fig8a_table(&fig8::run_fig8a(&p)).print();
    println!();

    let p = if quick {
        fig8::Fig8bParams::quick()
    } else {
        fig8::Fig8bParams::paper()
    };
    fig8::fig8b_table(&fig8::run_fig8b(&p, 0x8B), 10).print();
    println!();

    let p = if quick {
        fig8::Fig8cParams::quick()
    } else {
        fig8::Fig8cParams::paper()
    };
    fig8::fig8c_table(&fig8::run_fig8c(&p)).print();
    println!();

    fig9::fig9ab_table(
        "Figure 9(a): Playable % vs downloaded % — 5 MB",
        &fig9::run_fig9ab(&small, 0x9A),
    )
    .print();
    println!();
    fig9::fig9ab_table(
        "Figure 9(b): Playable % vs downloaded % — large file",
        &fig9::run_fig9ab(&large, 0x9B),
    )
    .print();
    println!();

    let p = if quick {
        fig9::Fig9cParams::quick()
    } else {
        fig9::Fig9cParams::paper()
    };
    fig9::fig9c_table(&fig9::run_fig9c(&p)).print();
}
