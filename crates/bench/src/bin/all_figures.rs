//! Runs every figure-regeneration experiment in sequence and prints all
//! tables — a one-command reproduction of the paper's evaluation section.
//!
//! ```sh
//! cargo run --release -p wp2p-bench --bin all_figures            # quick
//! cargo run --release -p wp2p-bench --bin all_figures -- --paper # full
//! cargo run --release -p wp2p-bench --bin all_figures -- --only fig8
//! ```
//!
//! `--only <name>` runs just the figures whose name contains `<name>`.
//! `--faults <seed>` skips the figures and instead replays the seed's
//! deterministic fault plan into both worlds with the swarm-wide
//! invariant checker live — the harness for reproducing a failing seed
//! from CI (same seed, byte-identical schedule and trace).
//! Sweeps fan out across worker threads (`WP2P_THREADS` overrides the
//! count; `WP2P_THREADS=1` is byte-identical to the parallel output).
//! Per-figure cell counts and timings land in `BENCH_sweeps.json`.
//! A figure driver that panics is reported and the process exits
//! nonzero after the remaining figures have run.

use p2p_simulation::experiments::{faults, fig2, fig3, fig4, fig8, fig9, playability};
use simnet::time::SimDuration;
use p2p_simulation::harness::{self, SweepStats};
use std::time::Instant;
use wp2p_bench::{preamble, preset_from_args, Preset};

struct FigureReport {
    name: &'static str,
    wall_secs: f64,
    sweeps: Vec<SweepStats>,
    panicked: bool,
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

fn sweeps_json(reports: &[FigureReport], total_wall: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"threads\": {},\n  \"total_wall_secs\": {},\n  \"figures\": [\n",
        harness::worker_threads(),
        json_f(total_wall)
    ));
    for (i, r) in reports.iter().enumerate() {
        let cells: usize = r.sweeps.iter().map(|s| s.cells).sum();
        let cell_wall: f64 = r.sweeps.iter().map(|s| s.cell_wall.as_secs_f64()).sum();
        let virtual_secs: f64 = r.sweeps.iter().map(|s| s.virtual_secs).sum();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"panicked\": {}, \"wall_secs\": {}, \
\"cells\": {}, \"cell_wall_secs\": {}, \"speedup\": {}, \"virtual_secs\": {}, \"sweeps\": [",
            r.name,
            r.panicked,
            json_f(r.wall_secs),
            cells,
            json_f(cell_wall),
            json_f(cell_wall / r.wall_secs.max(1e-9)),
            json_f(virtual_secs),
        ));
        for (j, s) in r.sweeps.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"name\": \"{}\", \"points\": {}, \"runs\": {}, \"cells\": {}, \
\"threads\": {}, \"wall_secs\": {}, \"cell_wall_secs\": {}, \"virtual_secs\": {}}}",
                if j == 0 { "" } else { ", " },
                s.name,
                s.points,
                s.runs,
                s.cells,
                s.threads,
                json_f(s.wall.as_secs_f64()),
                json_f(s.cell_wall.as_secs_f64()),
                json_f(s.virtual_secs),
            ));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 == reports.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let preset = preset_from_args();
    preamble("All figures", preset);
    let quick = preset == Preset::Quick;

    let args: Vec<String> = std::env::args().collect();
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();

    if let Some(seed) = args
        .iter()
        .position(|a| a == "--faults")
        .and_then(|i| args.get(i + 1))
    {
        let seed: u64 = seed.parse().expect("--faults takes a u64 seed");
        let horizon = if quick { 120 } else { 600 };
        let flow = faults::replay_flow(seed, SimDuration::from_secs(horizon));
        let pkt = faults::replay_packet(seed, SimDuration::from_secs(horizon.min(60)));
        print!("{}", flow.schedule);
        println!();
        faults::fault_table(seed, &flow, &pkt).print();
        return;
    }

    let (small, large) = if quick {
        (
            playability::PlayabilityParams::quick_5mb(),
            playability::PlayabilityParams::quick_large(),
        )
    } else {
        (
            playability::PlayabilityParams::paper_5mb(),
            playability::PlayabilityParams::paper_large(),
        )
    };
    let small2 = small.clone();
    let large2 = large.clone();

    // Each figure is a named, independently runnable (and independently
    // failable) section.
    type Figure = (&'static str, Box<dyn FnOnce()>);
    let figures: Vec<Figure> = vec![
        (
            "fig2a",
            Box::new(move || {
                let p = if quick {
                    fig2::Fig2aParams::quick()
                } else {
                    fig2::Fig2aParams::paper()
                };
                fig2::fig2a_table(&fig2::run_fig2a(&p)).print();
            }),
        ),
        (
            "fig2bc",
            Box::new(|| {
                let p = fig2::Fig2bcParams::paper();
                let (uni, bi) = fig2::run_fig2bc_pair(&p, 0x2BC);
                fig2::fig2bc_table(&uni, &bi).print();
            }),
        ),
        (
            "fig3ab",
            Box::new(move || {
                let p = if quick {
                    fig3::Fig3abParams::quick()
                } else {
                    fig3::Fig3abParams::paper()
                };
                fig3::fig3ab_table(
                    "Figure 3(a): Aggregate download (KBps) vs upload limit — wired",
                    &fig3::run_fig3a(&p),
                    "paper: monotonically increasing",
                )
                .print();
                println!();
                fig3::fig3ab_table(
                    "Figure 3(b): Aggregate download (KBps) vs upload limit — wireless",
                    &fig3::run_fig3b(&p),
                    "paper: rises, peaks early, falls",
                )
                .print();
            }),
        ),
        (
            "fig3c",
            Box::new(move || {
                let p = if quick {
                    fig3::Fig3cParams::quick()
                } else {
                    fig3::Fig3cParams::paper()
                };
                fig3::fig3c_table(&fig3::run_fig3c(&p, 0x3C), 10).print();
            }),
        ),
        (
            "fig4a",
            Box::new(move || {
                let p = if quick {
                    fig4::Fig4aParams::quick()
                } else {
                    fig4::Fig4aParams::paper()
                };
                fig4::fig4a_table(&fig4::run_fig4a(&p)).print();
            }),
        ),
        (
            "fig4bc",
            Box::new(move || {
                playability::playability_table(
                    "Figure 4(b): Playable % vs downloaded % — 5 MB, rarest-first",
                    &playability::run_playability(&small, None, 0x4B),
                    None,
                )
                .print();
                println!();
                playability::playability_table(
                    "Figure 4(c): Playable % vs downloaded % — large file, rarest-first",
                    &playability::run_playability(&large, None, 0x4C),
                    None,
                )
                .print();
            }),
        ),
        (
            "fig8a",
            Box::new(move || {
                let p = if quick {
                    fig8::Fig8aParams::quick()
                } else {
                    fig8::Fig8aParams::paper()
                };
                fig8::fig8a_table(&fig8::run_fig8a(&p)).print();
            }),
        ),
        (
            "fig8b",
            Box::new(move || {
                let p = if quick {
                    fig8::Fig8bParams::quick()
                } else {
                    fig8::Fig8bParams::paper()
                };
                fig8::fig8b_table(&fig8::run_fig8b(&p, 0x8B), 10).print();
            }),
        ),
        (
            "fig8c",
            Box::new(move || {
                let p = if quick {
                    fig8::Fig8cParams::quick()
                } else {
                    fig8::Fig8cParams::paper()
                };
                fig8::fig8c_table(&fig8::run_fig8c(&p)).print();
            }),
        ),
        (
            "fig9ab",
            Box::new(move || {
                fig9::fig9ab_table(
                    "Figure 9(a): Playable % vs downloaded % — 5 MB",
                    &fig9::run_fig9ab(&small2, 0x9A),
                )
                .print();
                println!();
                fig9::fig9ab_table(
                    "Figure 9(b): Playable % vs downloaded % — large file",
                    &fig9::run_fig9ab(&large2, 0x9B),
                )
                .print();
            }),
        ),
        (
            "fig9c",
            Box::new(move || {
                let p = if quick {
                    fig9::Fig9cParams::quick()
                } else {
                    fig9::Fig9cParams::paper()
                };
                fig9::fig9c_table(&fig9::run_fig9c(&p)).print();
            }),
        ),
    ];

    let total_start = Instant::now();
    let mut reports = Vec::new();
    let mut failed = Vec::new();
    harness::take_stats(); // drop anything recorded before the run
    for (name, f) in figures {
        if let Some(pat) = &only {
            if !name.contains(pat.as_str()) {
                continue;
            }
        }
        let t0 = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        let wall_secs = t0.elapsed().as_secs_f64();
        let panicked = outcome.is_err();
        if panicked {
            eprintln!("FIGURE FAILED: {name} panicked");
            failed.push(name);
        }
        println!();
        reports.push(FigureReport {
            name,
            wall_secs,
            sweeps: harness::take_stats(),
            panicked,
        });
    }
    let total_wall = total_start.elapsed().as_secs_f64();

    let json = sweeps_json(&reports, total_wall);
    match std::fs::write("BENCH_sweeps.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_sweeps.json ({} figures)", reports.len()),
        Err(e) => eprintln!("could not write BENCH_sweeps.json: {e}"),
    }
    let cells: usize = reports.iter().flat_map(|r| &r.sweeps).map(|s| s.cells).sum();
    let cell_wall: f64 = reports
        .iter()
        .flat_map(|r| &r.sweeps)
        .map(|s| s.cell_wall.as_secs_f64())
        .sum();
    eprintln!(
        "ran {} sweep cells on {} threads: {:.1}s wall, {:.1}s serial-equivalent ({:.2}x)",
        cells,
        harness::worker_threads(),
        total_wall,
        cell_wall,
        cell_wall / total_wall.max(1e-9),
    );
    if !failed.is_empty() {
        eprintln!("{} figure(s) failed: {}", failed.len(), failed.join(", "));
        std::process::exit(1);
    }
}
